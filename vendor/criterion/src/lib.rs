//! Offline drop-in shim for the subset of `criterion` 0.5 this workspace
//! uses: `Criterion`, `benchmark_group` (+ `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this minimal harness. It runs each benchmark briefly,
//! prints a mean ns/iter line per benchmark, and performs no statistical
//! analysis — enough for `cargo bench` to build, run, and emit comparable
//! numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark. Kept short: the shim reports a
/// coarse mean, not a distribution.
const MEASURE_TARGET: Duration = Duration::from_millis(200);

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing each batch, until the measurement target
    /// is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        std::hint::black_box(f());
        let mut batch = 1u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.iters += batch;
            self.total = start.elapsed();
            if self.total >= MEASURE_TARGET {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench: {name:<50} (no measurement)");
            return;
        }
        let ns = self.total.as_nanos() / u128::from(self.iters);
        println!("bench: {name:<50} {ns:>12} ns/iter ({} iters)", self.iters);
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's measurement loop is
    /// time-bounded rather than sample-counted.
    pub fn sample_size(&mut self, _samples: usize) -> &mut BenchmarkGroup {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.iters > 0);
        assert!(b.total >= MEASURE_TARGET);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("dmb").to_string(), "dmb");
    }

    criterion_group!(smoke_group, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("one", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn group_macro_produces_runnable_fn() {
        smoke_group();
    }
}
