//! Offline drop-in shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors a minimal implementation of the APIs it actually calls:
//! [`rngs::SmallRng`] (a xoshiro256++ generator seeded via splitmix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. Streams are deterministic for a given
//! seed, which is all the repo's workload generators require; the exact
//! sequences differ from upstream `rand`, but no test encodes upstream
//! sequences.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small integer seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (inclusive). `lo <= hi` must hold.
    fn uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Largest representable value, used to widen half-open ranges.
    fn prev(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()))
                    % span;
                ((lo as u128).wrapping_add(draw)) as $t
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::uniform_inclusive(self.start, self.end.prev(), rng)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::uniform_inclusive(lo, hi, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform integer from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&y));
            let z: usize = rng.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
