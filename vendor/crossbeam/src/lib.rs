//! Offline drop-in shim for the subset of `crossbeam` 0.8 this workspace
//! uses: `utils::{Backoff, CachePadded}` and `deque::{Worker, Stealer,
//! Injector, Steal}`.
//!
//! The build environment has no network access to a crates registry, so
//! these are safe-code reimplementations with the same API shape. The deque
//! types are lock-based rather than lock-free; the workloads that use them
//! (coarse-grained simulator runs, each many milliseconds long) are far from
//! the regime where deque contention matters.

#![forbid(unsafe_code)]

/// Spin-loop helpers and false-sharing padding.
pub mod utils {
    use std::cell::Cell;

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops, mirroring
    /// `crossbeam_utils::Backoff`.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Backoff {
        /// A fresh backoff in the spinning state.
        #[must_use]
        pub fn new() -> Backoff {
            Backoff { step: Cell::new(0) }
        }

        /// Reset to the initial (cheap spin) state.
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Busy-wait briefly, escalating the pause length each call.
        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Back off, yielding the thread once spinning has run its course.
        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                self.spin();
            } else {
                std::thread::yield_now();
                if self.step.get() <= YIELD_LIMIT {
                    self.step.set(self.step.get() + 1);
                }
            }
        }

        /// Whether backoff has escalated past the point where blocking
        /// would be more efficient.
        #[must_use]
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    /// Pads and aligns a value to 128 bytes to avoid false sharing.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in its own cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwrap the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

/// Work-stealing deques (lock-based reimplementation).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race occurred; the caller should retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the queue was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// Owner side of a work-stealing deque.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new FIFO deque.
        #[must_use]
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A new LIFO deque.
        #[must_use]
        pub fn new_lifo() -> Worker<T> {
            // The shim's owner side always pops from the front; task order
            // never affects results in this workspace (rows are reassembled
            // by index), so FIFO behaviour is an acceptable stand-in.
            Worker::new_fifo()
        }

        /// Push a task onto the owner side.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Pop a task from the owner side.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_front()
        }

        /// Whether the deque is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// A handle other threads can steal from.
        #[must_use]
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Worker::new_fifo()
        }
    }

    /// Thief side of a work-stealing deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempt to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// Shared FIFO injector queue.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// A new empty injector.
        #[must_use]
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task into the shared queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Attempt to take the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use super::utils::{Backoff, CachePadded};

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn backoff_escalates_to_completed() {
        let b = Backoff::new();
        for _ in 0..64 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn worker_steal_order_is_fifo() {
        let w: Worker<u32> = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_feeds_many_threads_exactly_once() {
        let inj = Injector::new();
        for i in 0..1_000u32 {
            inj.push(i);
        }
        let sum = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Steal::Success(v) = inj.steal() {
                        sum.fetch_add(u64::from(v), std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), 499_500);
        assert!(inj.is_empty());
    }
}
