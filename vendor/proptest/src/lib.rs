//! Offline drop-in shim for the subset of `proptest` 1.x this workspace
//! uses: the `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros, `Strategy` with `prop_map`/`boxed`, `any::<T>()`, `Just`,
//! `prop::collection::vec`, integer-range and tuple strategies, and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this minimal implementation. It generates values from a
//! deterministic per-case RNG and runs each property for the configured
//! number of cases. It does not shrink failures — a failing case reports the
//! case index so it can be replayed deterministically.

#![forbid(unsafe_code)]

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, UniformInt};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among several strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`; each generation picks one uniformly.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let ix = rng.inner().gen_range(0..self.arms.len());
            self.arms[ix].generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: UniformInt> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.inner().gen_range(self.start..self.end)
        }
    }

    impl<T: UniformInt> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.inner().gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $ix:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_std {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner().gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.inner().gen_bool(0.75) {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for an arbitrary `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Test-execution plumbing used by the `proptest!` macro.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-property configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: SmallRng,
    }

    impl TestRng {
        /// The RNG for case number `case` (stable across runs).
        #[must_use]
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                rng: SmallRng::seed_from_u64(
                    0xA5B3_5705_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }

        /// Access the underlying generator.
        pub fn inner(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }
}

/// Namespace mirror of `proptest::prop` (currently `collection` only).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy for `Vec`s with element strategy `S` and a length drawn
        /// from a half-open range.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    rng.inner().gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec` strategy with length in `len` (half-open).
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(u64::from(case));
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failures abort only the current case's
/// closure with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!($($fmt)+));
                }
            }
        }
    };
}

/// Uniform choice among several strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        let s = (0u8..4, 10u64..20).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn union_only_yields_arm_values() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        for _ in 0..100 {
            assert!((1..=3).contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::test_runner::TestRng::for_case(2);
        let s = prop::collection::vec(any::<u16>(), 1..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = prop::collection::vec(any::<u64>(), 0..32);
        let a = s.generate(&mut crate::test_runner::TestRng::for_case(7));
        let b = s.generate(&mut crate::test_runner::TestRng::for_case(7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts pass, trailing commas parse.
        #[test]
        fn macro_smoke(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 0..8),) {
            prop_assert!(x < 10, "x out of range: {}", x);
            prop_assert_eq!(v.len() <= 8, true);
        }
    }
}
