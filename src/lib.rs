//! `armbar` — reproduction of *"No Barrier in the Road: A Comprehensive
//! Study and Optimization of ARM Barriers"* (PPoPP 2020).
//!
//! This is the top-level facade; it re-exports the workspace through
//! [`armbar_core`]. See `README.md` for the tour and `DESIGN.md` for the
//! system inventory.

pub use armbar_core::*;
