// Rejected at lift time: `node` is declared private to T0, but T1
// dereferences it.
// armbar: thread t0
// armbar: thread t1
// armbar: private node @ 7 for T0
t0:
    ldr x0, =node
    mov x1, #1
    str x1, [x0]
    ret
t1:
    ldr x0, =node
    ldr x1, [x0]
    ret
