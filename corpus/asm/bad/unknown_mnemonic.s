// Rejected at parse time: `casal` is outside the lifted subset.
// armbar: thread t0
// armbar: shared lock @ 0
t0:
    ldr x0, =lock
    mov x1, #1
    casal x2, x1, [x0]
    ret
