// Rejected at lift time: the counted loop is bounded but unrolls to far
// more than the per-thread emitted-instruction budget.
// armbar: thread t0
// armbar: shared word @ 0
t0:
    ldr x0, =word
    mov x1, #0
    mov x9, #4096
Lround:
    str x1, [x0]
    add x1, x1, #1
    sub x9, x9, #1
    cbnz x9, Lround
    ret
