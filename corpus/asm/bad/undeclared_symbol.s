// Rejected at lift time: `ghost` has no `// armbar: shared`/`private`
// declaration, so the write cannot be mapped to a model location.
// armbar: thread t0
// armbar: shared word @ 0
t0:
    ldr x0, =ghost
    mov x1, #1
    str x1, [x0]
    ret
