// Rejected at lift time: an unconditional backward branch never
// terminates, so no bounded unrolling can make the thread finite.
// armbar: thread t0
// armbar: shared word @ 0
t0:
    ldr x0, =word
Lforever:
    ldr x1, [x0]
    b Lforever
