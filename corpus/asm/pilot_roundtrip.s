// Bounded-unrolled Pilot channel round-trip. The idiom rides entirely on
// single-copy atomicity and same-location coherence; the one `dmb ishst`
// in T0's claim phase is seeded *redundant* -- finding it is the corpus
// case's purpose. T1 answers through the paper's bogus-data-dependency
// idiom (`eor`/`add` on the last request read), then overwrites the
// response. All loops are counted and unroll by constant propagation.
//
// armbar: thread requester
// armbar: thread responder
// armbar: shared req @ 70
// armbar: shared resp @ 71

requester:
    ldr x0, =req
    ldr x1, =resp
    mov x2, #1                   // phase 1: claim
    mov x9, #10
L1a:
    str x2, [x0]
    sub x9, x9, #1
    cbnz x9, L1a
    dmb ishst                    // seeded redundant fence (same-word chain)
    mov x9, #9
L1b:
    str x2, [x0]
    sub x9, x9, #1
    cbnz x9, L1b
    mov x2, #2                   // phase 2: partial
    mov x9, #19
L2:
    str x2, [x0]
    sub x9, x9, #1
    cbnz x9, L2
    mov x2, #3                   // phase 3: commit
    mov x9, #19
L3:
    str x2, [x0]
    sub x9, x9, #1
    cbnz x9, L3
    mov x9, #5                   // poll the response
Lr:
    ldr x3, [x1]
    sub x9, x9, #1
    cbnz x9, Lr
    ret

responder:
    ldr x0, =req
    ldr x1, =resp
    mov x9, #5                   // poll the request
Lq:
    ldr x2, [x0]
    sub x9, x9, #1
    cbnz x9, Lq
    eor x3, x2, x2               // bogus data dependency on the last read
    add x3, x3, #1
    str x3, [x1]
    mov x4, #2
    str x4, [x1]
    ret
