// Bounded-unrolled MCS lock handoff between an owner (T0) and its queue
// successor (T1), as seeded in the lint corpus: the prologue publish
// fence is deliberately over-strong (`dsb ish` where `dmb ish` suffices)
// and T1 carries a stray trailing `dmb ishst` -- both are findings the
// lint is expected to produce. Spin loops are genuine back-edges,
// bounded by the unroll pragma (default 1: each spin lifts to one load).
//
// armbar: thread owner
// armbar: thread successor
// armbar: shared data0 @ 1
// armbar: shared data1 @ 2
// armbar: shared data2 @ 3
// armbar: shared data3 @ 4
// armbar: shared flag_a0 @ 100
// armbar: shared flag_a1 @ 101
// armbar: shared flag_a2 @ 102
// armbar: shared flag_a3 @ 103
// armbar: shared flag_a4 @ 104
// armbar: shared flag_a5 @ 105
// armbar: shared flag_b0 @ 150
// armbar: shared flag_b1 @ 151
// armbar: shared flag_b2 @ 152
// armbar: shared flag_b3 @ 153
// armbar: shared flag_b4 @ 154
// armbar: private work_a @ 60 for T0
// armbar: private work_b @ 61 for T1

owner:
    ldr x10, =data0
    mov x11, #20
    str x11, [x10]
    ldr x10, =data1
    mov x11, #21
    str x11, [x10]
    ldr x10, =data2
    mov x11, #22
    str x11, [x10]
    ldr x10, =data3
    mov x11, #23
    str x11, [x10]
    dsb ish                      // seeded over-strong publish fence
    ldr x10, =flag_a0
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_b0
Lspin_a1:
    ldr x12, [x10]
    cbz x12, Lspin_a1
    dmb ish
    ldr x10, =work_a
    mov x11, #16
    str x11, [x10]
    mov x11, #17
    str x11, [x10]
    mov x11, #18
    str x11, [x10]
    mov x11, #19
    str x11, [x10]
    mov x11, #20
    str x11, [x10]
    mov x11, #21
    str x11, [x10]
    dmb ish
    ldr x10, =flag_a1
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_b1
Lspin_a2:
    ldr x12, [x10]
    cbz x12, Lspin_a2
    dmb ish
    ldr x10, =work_a
    mov x11, #32
    str x11, [x10]
    mov x11, #33
    str x11, [x10]
    mov x11, #34
    str x11, [x10]
    mov x11, #35
    str x11, [x10]
    mov x11, #36
    str x11, [x10]
    mov x11, #37
    str x11, [x10]
    dmb ish
    ldr x10, =flag_a2
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_b2
Lspin_a3:
    ldr x12, [x10]
    cbz x12, Lspin_a3
    dmb ish
    ldr x10, =work_a
    mov x11, #48
    str x11, [x10]
    mov x11, #49
    str x11, [x10]
    mov x11, #50
    str x11, [x10]
    mov x11, #51
    str x11, [x10]
    mov x11, #52
    str x11, [x10]
    mov x11, #53
    str x11, [x10]
    dmb ish
    ldr x10, =flag_a3
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_b3
Lspin_a4:
    ldr x12, [x10]
    cbz x12, Lspin_a4
    dmb ish
    ldr x10, =work_a
    mov x11, #64
    str x11, [x10]
    mov x11, #65
    str x11, [x10]
    mov x11, #66
    str x11, [x10]
    mov x11, #67
    str x11, [x10]
    mov x11, #68
    str x11, [x10]
    mov x11, #69
    str x11, [x10]
    dmb ish
    ldr x10, =flag_a4
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_b4
Lspin_a5:
    ldr x12, [x10]
    cbz x12, Lspin_a5
    dmb ish
    ldr x10, =work_a
    mov x11, #80
    str x11, [x10]
    mov x11, #81
    str x11, [x10]
    mov x11, #82
    str x11, [x10]
    mov x11, #83
    str x11, [x10]
    mov x11, #84
    str x11, [x10]
    mov x11, #85
    str x11, [x10]
    dmb ish
    ldr x10, =flag_a5
    mov x11, #1
    str x11, [x10]
    ret

successor:
    ldr x10, =flag_a0
Lspin_b0:
    ldr x12, [x10]
    cbz x12, Lspin_b0
    dmb ish
    ldr x10, =work_b
    mov x11, #0
    str x11, [x10]
    mov x11, #1
    str x11, [x10]
    mov x11, #2
    str x11, [x10]
    mov x11, #3
    str x11, [x10]
    mov x11, #4
    str x11, [x10]
    mov x11, #5
    str x11, [x10]
    dmb ish
    ldr x10, =flag_b0
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_a1
Lspin_b1:
    ldr x12, [x10]
    cbz x12, Lspin_b1
    dmb ish
    ldr x10, =work_b
    mov x11, #16
    str x11, [x10]
    mov x11, #17
    str x11, [x10]
    mov x11, #18
    str x11, [x10]
    mov x11, #19
    str x11, [x10]
    mov x11, #20
    str x11, [x10]
    mov x11, #21
    str x11, [x10]
    dmb ish
    ldr x10, =flag_b1
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_a2
Lspin_b2:
    ldr x12, [x10]
    cbz x12, Lspin_b2
    dmb ish
    ldr x10, =work_b
    mov x11, #32
    str x11, [x10]
    mov x11, #33
    str x11, [x10]
    mov x11, #34
    str x11, [x10]
    mov x11, #35
    str x11, [x10]
    mov x11, #36
    str x11, [x10]
    mov x11, #37
    str x11, [x10]
    dmb ish
    ldr x10, =flag_b2
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_a3
Lspin_b3:
    ldr x12, [x10]
    cbz x12, Lspin_b3
    dmb ish
    ldr x10, =work_b
    mov x11, #48
    str x11, [x10]
    mov x11, #49
    str x11, [x10]
    mov x11, #50
    str x11, [x10]
    mov x11, #51
    str x11, [x10]
    mov x11, #52
    str x11, [x10]
    mov x11, #53
    str x11, [x10]
    dmb ish
    ldr x10, =flag_b3
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_a4
Lspin_b4:
    ldr x12, [x10]
    cbz x12, Lspin_b4
    dmb ish
    ldr x10, =work_b
    mov x11, #64
    str x11, [x10]
    mov x11, #65
    str x11, [x10]
    mov x11, #66
    str x11, [x10]
    mov x11, #67
    str x11, [x10]
    mov x11, #68
    str x11, [x10]
    mov x11, #69
    str x11, [x10]
    dmb ish
    ldr x10, =flag_b4
    mov x11, #1
    str x11, [x10]
    ldr x10, =flag_a5
Lspin_b5:
    ldr x12, [x10]
    cbz x12, Lspin_b5
    dmb ish
    ldr x10, =data0
    ldr x2, [x10]
    ldr x10, =data1
    ldr x3, [x10]
    ldr x10, =data2
    ldr x4, [x10]
    ldr x10, =data3
    ldr x5, [x10]
    dmb ishst                    // seeded stray trailing fence
    ret
