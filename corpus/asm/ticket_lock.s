// Bounded-unrolled ticket-lock handoff over one incrementing grant word
// (`now_serving`). T0 publishes a write-once payload behind a seeded
// over-strong `dsb ishst`, then per round runs two scratch stores and bumps
// the grant; T1 polls the grant once per round, then `dmb ishld` and reads
// the payload. The round loops are *counted* (`sub`/`cbnz` on a constant),
// so the lifter unrolls them exactly by constant propagation -- no unroll
// pragma involved.
//
// armbar: thread owner
// armbar: thread taker
// armbar: shared data0 @ 1
// armbar: shared data1 @ 2
// armbar: shared grant @ 62
// armbar: private work_a @ 60 for T0

owner:
    ldr x0, =data0
    mov x1, #20
    str x1, [x0]
    ldr x0, =data1
    mov x1, #21
    str x1, [x0]
    dsb ishst                    // seeded over-strong publish fence
    ldr x13, =work_a
    ldr x14, =grant
    mov x9, #3                   // rounds
    mov x10, #0                  // scratch value: round * 16 + k
    mov x11, #0                  // grant value: round + 1
Lround:
    str x10, [x13]
    add x12, x10, #1
    str x12, [x13]
    add x11, x11, #1
    str x11, [x14]
    add x10, x10, #16
    sub x9, x9, #1
    cbnz x9, Lround
    ret

taker:
    ldr x14, =grant
    mov x9, #3                   // one poll per round
Lpoll:
    ldr x1, [x14]
    sub x9, x9, #1
    cbnz x9, Lpoll
    dmb ishld
    ldr x0, =data0
    ldr x2, [x0]
    ldr x0, =data1
    ldr x3, [x0]
    ret
