//! Run the classic litmus tests under every approach the paper studies and
//! print an allowed/forbidden matrix — the semantic side of Table 3.
//!
//! ```sh
//! cargo run --release --example litmus_explorer
//! ```

use armbar::prelude::*;
use armbar::wmm::litmus::{load_buffering, message_passing, store_buffering};

fn verdict(allowed: bool) -> &'static str {
    if allowed {
        "allowed"
    } else {
        "forbidden"
    }
}

fn main() {
    println!("Exhaustive exploration under the ARM WMM operational model\n");

    println!("MP (message passing): can the consumer see the flag but stale data?");
    for (p, c) in [
        (Barrier::None, Barrier::None),
        (Barrier::DmbSt, Barrier::None),
        (Barrier::None, Barrier::DmbLd),
        (Barrier::DmbSt, Barrier::DmbLd),
        (Barrier::Stlr, Barrier::Ldar),
        (Barrier::DmbSt, Barrier::AddrDep),
        (Barrier::DmbSt, Barrier::CtrlIsb),
        (Barrier::DmbSt, Barrier::Isb),
    ] {
        let t = message_passing(p, c);
        println!(
            "  producer {p:<10} consumer {c:<10} -> {}",
            verdict(t.allowed(MemoryModel::ArmWmm))
        );
    }

    println!("\nSB (store buffering): can both threads read 0?");
    for b in [
        Barrier::None,
        Barrier::DmbSt,
        Barrier::DmbLd,
        Barrier::DmbFull,
        Barrier::DsbFull,
    ] {
        let t = store_buffering(b);
        println!("  {b:<10} -> {}", verdict(t.allowed(MemoryModel::ArmWmm)));
    }

    println!("\nLB (load buffering): can both threads read 1?");
    for b in [
        Barrier::None,
        Barrier::DataDep,
        Barrier::Ctrl,
        Barrier::Ldar,
        Barrier::DmbLd,
    ] {
        let t = load_buffering(b);
        println!("  {b:<10} -> {}", verdict(t.allowed(MemoryModel::ArmWmm)));
    }

    println!("\nWitness for the MP relaxation (a concrete reordered execution):");
    let mp_free = message_passing(Barrier::None, Barrier::None);
    if let Some(w) = armbar::wmm::witness::witness_for(&mp_free, MemoryModel::ArmWmm) {
        print!("{}", w.render(&mp_free.program));
        for tid in 0..2 {
            if w.reordered(tid) {
                println!("  -> thread {tid} performed out of program order");
            }
        }
    }

    println!("\nThe same tests under x86-TSO:");
    let mp = message_passing(Barrier::None, Barrier::None);
    let sb = store_buffering(Barrier::None);
    let lb = load_buffering(Barrier::None);
    println!("  MP -> {}", verdict(mp.allowed(MemoryModel::X86Tso)));
    println!(
        "  SB -> {}  (the one reordering TSO permits)",
        verdict(sb.allowed(MemoryModel::X86Tso))
    );
    println!("  LB -> {}", verdict(lb.allowed(MemoryModel::X86Tso)));
}
