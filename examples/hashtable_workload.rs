//! The Figure 8(c) workload on host threads: a hash table of per-bucket
//! sorted lists, each bucket behind its own lock, driven by the paper's
//! 10-query / 1-insert / 1-remove mix across a bucket-count sweep.
//!
//! ```sh
//! cargo run --release --example hashtable_workload
//! ```

use std::time::Instant;

use armbar::collections::workload::{MixedWorkload, Step};
use armbar::collections::{LockedHashTable, SortedList};
use armbar::locks::{CombiningLock, TicketLock};

const THREADS: usize = 4;
const ROUNDS: u64 = 400;
const PRELOAD: usize = 512;

fn drive<E: armbar::locks::Executor<SortedList>>(table: &LockedHashTable<E>) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for h in 0..THREADS {
            let table = &table;
            s.spawn(move || {
                let mut w = MixedWorkload::new(h, THREADS, PRELOAD as u64, 42);
                while w.rounds() < ROUNDS {
                    match w.next_step() {
                        Step::Query(k) => {
                            table.contains(h, k);
                        }
                        Step::Insert(k) => assert!(table.insert(h, k), "private key"),
                        Step::Remove(k) => assert!(table.remove(h, k), "private key"),
                    }
                }
            });
        }
    });
    let ops = THREADS as f64 * ROUNDS as f64 * 12.0;
    ops / start.elapsed().as_secs_f64()
}

fn main() {
    println!(
        "hash table, {PRELOAD} preloaded members, {THREADS} threads x {ROUNDS} rounds of 10q+1i+1r"
    );
    println!("(host wall-clock; the calibrated sweep is `exp-fig8c`)\n");
    for buckets in [2usize, 8, 32, 128] {
        // Ticket-per-bucket.
        let ticket: LockedHashTable<TicketLock<SortedList>> =
            LockedHashTable::new(buckets, PRELOAD, |_b, list, ops| TicketLock::new(list, ops));
        let t_rate = drive(&ticket);
        assert_eq!(ticket.len(0), PRELOAD as u64, "size preserved");
        // Combining-with-Pilot per bucket.
        let pilot: LockedHashTable<CombiningLock<SortedList>> =
            LockedHashTable::new(buckets, PRELOAD, |_b, list, ops| {
                CombiningLock::new_pilot(THREADS, list, ops)
            });
        let p_rate = drive(&pilot);
        assert_eq!(pilot.len(0), PRELOAD as u64, "size preserved");
        println!(
            "  {buckets:>4} buckets:  ticket {t_rate:>10.0} ops/s   dsynch-pilot {p_rate:>10.0} ops/s"
        );
    }
}
