//! The PARSEC-dedup-like pipeline with each queue variant, verified
//! end-to-end (the archive decompresses back to the original input).
//!
//! ```sh
//! cargo run --release --example dedup_pipeline
//! ```

use armbar::dedup::{generate_input, run_pipeline, QueueKind, WorkloadSize};

fn main() {
    let input = generate_input(WorkloadSize::Small, 40, 0xD00D);
    println!("input: {} MiB, ~40% redundant blocks\n", input.len() >> 20);
    for kind in QueueKind::ALL {
        let (archive, stats) = run_pipeline(&input, kind);
        let restored = archive.unpack().expect("archive must decompress");
        assert_eq!(restored, input, "lossless end to end");
        println!(
            "  {:<5} {:>7.1} MB/s   {:>6} chunks, {:>5} duplicates, {:>5.1}% of input size",
            kind.label(),
            stats.mb_per_s,
            stats.chunks,
            stats.duplicates,
            100.0 * stats.compressed_bytes as f64 / stats.input_bytes as f64,
        );
    }
    println!("\nAll three pipelines produced identical, verified archives;");
    println!("only the inter-stage queue differs (Figure 6d compares them).");
}
