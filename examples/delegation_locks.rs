//! Delegation locks on host threads: a shared counter and a sorted list
//! served by FFWD (dedicated server) and the combining lock (migratory
//! server), with and without Pilot responses.
//!
//! ```sh
//! cargo run --release --example delegation_locks
//! ```

use std::time::Instant;

use armbar::collections::{ListOps, SortedList};
use armbar::locks::{CombiningLock, Executor, Ffwd, OpTable};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 20_000;

fn bench_combining(pilot: bool) -> f64 {
    let mut table = OpTable::new();
    let inc = table.register(|s: &mut u64, by| {
        *s += by;
        *s
    });
    let lock = if pilot {
        CombiningLock::new_pilot(THREADS, 0u64, table)
    } else {
        CombiningLock::new(THREADS, 0u64, table)
    };
    let start = Instant::now();
    std::thread::scope(|s| {
        for h in 0..THREADS {
            let lock = &lock;
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    lock.execute(h, inc, 1);
                }
            });
        }
    });
    let dt = start.elapsed().as_secs_f64();
    assert_eq!(lock.execute(0, inc, 0), THREADS as u64 * OPS_PER_THREAD);
    THREADS as u64 as f64 * OPS_PER_THREAD as f64 / dt
}

fn bench_ffwd(pilot: bool) -> f64 {
    let mut table = OpTable::new();
    let inc = table.register(|s: &mut u64, by| {
        *s += by;
        *s
    });
    let lock = if pilot {
        Ffwd::new_pilot(THREADS, 0u64, table)
    } else {
        Ffwd::new(THREADS, 0u64, table)
    };
    let server = lock.start_server();
    let start = Instant::now();
    std::thread::scope(|s| {
        for h in 0..THREADS {
            let mut client = lock.client(h);
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    client.execute(inc, 1);
                }
            });
        }
    });
    let dt = start.elapsed().as_secs_f64();
    lock.shutdown();
    server.join().unwrap();
    THREADS as f64 * OPS_PER_THREAD as f64 / dt
}

fn list_demo() {
    // A sorted list behind a combining lock — the Figure 8(b) workload in
    // miniature: 10 queries, one insert, one remove, repeated.
    let mut table = OpTable::new();
    let ops = ListOps::register(&mut table);
    let lock = CombiningLock::new_pilot(THREADS, SortedList::preloaded(50, 2), table);
    std::thread::scope(|s| {
        for h in 0..THREADS {
            let lock = &lock;
            s.spawn(move || {
                let my_key = |i: u64| 1 + 2 * h as u64 + 1000 * i;
                for i in 0..500u64 {
                    for q in 0..10 {
                        lock.execute(h, ops.contains, (q * 7) % 100);
                    }
                    assert_eq!(lock.execute(h, ops.insert, my_key(i)), 1);
                    assert_eq!(lock.execute(h, ops.remove, my_key(i)), 1);
                }
            });
        }
    });
    let len = lock.execute(0, ops.len, 0);
    println!("  sorted list after {THREADS} threads x 500 rounds: {len} members (preloaded 50)");
    assert_eq!(len, 50);
}

fn main() {
    println!("Delegation locks, {THREADS} threads x {OPS_PER_THREAD} counter increments");
    println!("(wall-clock on this host; the calibrated comparison is `exp-fig7c`)\n");
    println!(
        "  DSynch (combining)      {:>8.2}M ops/s",
        bench_combining(false) / 1e6
    );
    println!(
        "  DSynch-P (Pilot)        {:>8.2}M ops/s",
        bench_combining(true) / 1e6
    );
    println!(
        "  FFWD (dedicated server) {:>8.2}M ops/s",
        bench_ffwd(false) / 1e6
    );
    println!(
        "  FFWD-P (Pilot)          {:>8.2}M ops/s",
        bench_ffwd(true) / 1e6
    );
    println!();
    list_demo();
}
