//! The Table 3 advisor as a small CLI, with every recommendation proved
//! against the exhaustive weak-memory explorer before it is printed.
//!
//! ```sh
//! cargo run --release --example barrier_advisor            # the full table
//! cargo run --release --example barrier_advisor store load # one cell
//! ```

use armbar::prelude::*;
use armbar::wmm::litmus::table3_cell;

fn parse(s: &str) -> Option<AccessType> {
    match s.to_ascii_lowercase().as_str() {
        "load" | "ld" | "l" => Some(AccessType::Load),
        "store" | "st" | "s" => Some(AccessType::Store),
        _ => None,
    }
}

fn show_cell(from: AccessType, to: AccessType) {
    let rec = recommend(OrderReq::pair(from, to));
    println!("order {from} -> {to}:");
    println!("  rationale: {}", rec.rationale);
    for a in &rec.preferred {
        let b = match a {
            Approach::Use(b) => *b,
            Approach::MeasureAgainst { candidate, .. } => *candidate,
        };
        // Approaches that cannot weave into this litmus shape are
        // recommendation-level alternatives only (e.g. DATA DEP for
        // load->load).
        let weavable = !((matches!(b, Barrier::Ctrl | Barrier::DataDep)
            && !(from == AccessType::Load && to == AccessType::Store))
            || (b == Barrier::Ldar && from != AccessType::Load)
            || (b == Barrier::Stlr && to != AccessType::Store));
        if weavable {
            let proved = !table3_cell(from, to, b).allowed(MemoryModel::ArmWmm);
            println!(
                "  preferred: {a}  [explorer: {}]",
                if proved { "proved" } else { "REFUTED" }
            );
            assert!(
                proved,
                "the advisor must never recommend an insufficient approach"
            );
        } else {
            println!("  preferred: {a}");
        }
    }
    for a in &rec.alternatives {
        println!("  alternative: {a}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [from, to] => match (parse(from), parse(to)) {
            (Some(f), Some(t)) => show_cell(f, t),
            _ => eprintln!("usage: barrier_advisor [load|store] [load|store]"),
        },
        _ => {
            for from in [AccessType::Load, AccessType::Store] {
                for to in [AccessType::Load, AccessType::Store] {
                    show_cell(from, to);
                }
            }
        }
    }
}
