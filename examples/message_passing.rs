//! Memory-based communication end to end: the baseline barrier-configured
//! SPSC ring (Algorithm 2) against the Pilot ring (§4.4), with real
//! host threads.
//!
//! ```sh
//! cargo run --release --example message_passing
//! ```
//!
//! On an aarch64 host the configured barriers compile to the actual
//! instructions; on x86 the portable mapping keeps behaviour identical
//! (TSO is stronger). Throughput numbers on a non-ARM or oversubscribed
//! host are illustrative only — the simulator experiments (`exp-fig6a` …)
//! are the measured reproduction.

use std::time::Instant;

use armbar::prelude::*;

const MESSAGES: u64 = 200_000;
const CAPACITY: usize = 64;

fn run_baseline(name: &str, pair: BarrierPair) {
    let (mut tx, mut rx) = spsc_ring(CAPACITY, pair);
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            for v in 0..MESSAGES {
                tx.send(v.wrapping_mul(0x9E37_79B9).wrapping_add(1));
            }
        });
        let h = s.spawn(move || {
            for v in 0..MESSAGES {
                let got = rx.recv();
                assert_eq!(got, v.wrapping_mul(0x9E37_79B9).wrapping_add(1));
            }
        });
        h.join().unwrap();
    });
    let dt = start.elapsed().as_secs_f64();
    println!("  {name:<22} {:>8.2}M msgs/s", MESSAGES as f64 / dt / 1e6);
}

fn run_pilot() {
    let pool = HashPool::default_pool();
    let (mut tx, mut rx) = pilot_ring(CAPACITY, &pool, Barrier::DmbLd);
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            for v in 0..MESSAGES {
                tx.send(v.wrapping_mul(0x9E37_79B9).wrapping_add(1));
            }
        });
        let h = s.spawn(move || {
            for v in 0..MESSAGES {
                let got = rx.recv();
                assert_eq!(got, v.wrapping_mul(0x9E37_79B9).wrapping_add(1));
            }
        });
        h.join().unwrap();
    });
    let dt = start.elapsed().as_secs_f64();
    println!(
        "  {:<22} {:>8.2}M msgs/s",
        "Pilot ring",
        MESSAGES as f64 / dt / 1e6
    );
}

fn main() {
    println!(
        "SPSC ring, {MESSAGES} messages, capacity {CAPACITY} (native barriers: {})",
        armbar::barriers::native::is_native()
    );
    run_baseline("DMB full - DMB full", BarrierPair::FULL_FULL);
    run_baseline("DMB ld - DMB st", BarrierPair::LD_ST);
    run_pilot();
    println!("\nEvery message was checked — the Pilot ring needs no publish barrier");
    println!("because the payload word itself is the notification (single-copy");
    println!("atomicity of aligned 64-bit stores).");
}
