//! Quickstart: the three faces of the library in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use armbar::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Semantics — Table 1 on the exhaustive weak-memory explorer.
    // ------------------------------------------------------------------
    println!("Table 1: message passing, no barriers");
    let mp = armbar::wmm::litmus::message_passing(Barrier::None, Barrier::None);
    println!(
        "  ARM WMM allows `local != 23`: {}",
        mp.allowed(MemoryModel::ArmWmm)
    );
    println!(
        "  x86 TSO allows it:            {}",
        mp.allowed(MemoryModel::X86Tso)
    );

    let fixed = armbar::wmm::litmus::message_passing(Barrier::DmbSt, Barrier::DmbLd);
    println!(
        "  …with DMB st + DMB ld:        {}",
        fixed.allowed(MemoryModel::ArmWmm)
    );

    // ------------------------------------------------------------------
    // 2. Performance — the paper's abstracted model on the simulated
    //    Kunpeng916 server, threads in different NUMA nodes.
    // ------------------------------------------------------------------
    println!("\nAbstracted model (store->store, 700 nops, cross-node):");
    for (label, barrier, loc) in [
        ("No Barrier ", Barrier::None, BarrierLoc::BeforeOp2),
        ("DMB full-1 ", Barrier::DmbFull, BarrierLoc::AfterOp1),
        ("DMB full-2 ", Barrier::DmbFull, BarrierLoc::BeforeOp2),
        ("DMB st     ", Barrier::DmbSt, BarrierLoc::BeforeOp2),
        ("DSB full   ", Barrier::DsbFull, BarrierLoc::BeforeOp2),
        ("STLR       ", Barrier::Stlr, BarrierLoc::BeforeOp2),
    ] {
        let r = run_model(
            BindConfig::KunpengCrossNodes,
            ModelSpec::store_store(barrier, loc, 700),
            400,
        );
        println!("  {label} {:>8.2}M loops/s", r.loops_per_sec / 1e6);
    }
    println!("  (note DMB full-1 ≈ half of DMB full-2: the barrier strictly");
    println!("   after the remote memory reference is the expensive one)");

    // ------------------------------------------------------------------
    // 3. Advice — Table 3 as an executable decision procedure.
    // ------------------------------------------------------------------
    println!("\nTable 3 advisor:");
    for (from, to) in [
        (AccessType::Load, AccessType::Load),
        (AccessType::Load, AccessType::Store),
        (AccessType::Store, AccessType::Store),
        (AccessType::Store, AccessType::Load),
    ] {
        let rec = recommend(OrderReq::pair(from, to));
        println!("  {from:>5} -> {to:<5}: {}", rec.best());
    }
}
