//! The Chrome-trace exporter must emit JSON that round-trips through a
//! `serde`-free parser: structurally valid, Perfetto-shaped (`traceEvents`
//! array of objects with `ph`/`ts`/`pid`/`tid`), and with monotone
//! timestamps per track.

use armbar_barriers::Barrier;
use armbar_sim::{Machine, Op, Platform, SimThread, ThreadCtx};

/// A minimal JSON value for validation.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Hand-rolled recursive-descent JSON parser (no serde in the workspace —
/// that is the point of the test: the emitted text must be plain valid
/// JSON, not something only our own writer understands).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) {
        assert_eq!(
            self.peek(),
            Some(b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek().expect("unexpected end of input") {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(lit.as_bytes()),
            "bad literal at byte {}",
            self.pos
        );
        self.pos += lit.len();
        v
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.expect(b':');
            fields.push((key, self.value()));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("bad object separator {other:?} at byte {}", self.pos),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("bad array separator {other:?} at byte {}", self.pos),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let c = self.bytes[self.pos];
                    self.pos += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            self.pos += 4;
                            out.push(char::from_u32(code).expect("bad code point"));
                        }
                        other => panic!("bad escape \\{}", other as char),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    assert!(
                        (c as u32) >= 0x20,
                        "unescaped control character in string at byte {}",
                        self.pos
                    );
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }

    fn parse_document(mut self) -> Json {
        let v = self.value();
        self.skip_ws();
        assert_eq!(self.pos, self.bytes.len(), "trailing garbage after JSON");
        v
    }
}

/// Runs a fixed script of ops, then halts.
struct Script {
    ops: Vec<Op>,
    pos: usize,
}

impl SimThread for Script {
    fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
        let op = self.ops.get(self.pos).copied().unwrap_or(Op::Halt);
        self.pos += 1;
        op
    }
}

fn traced_run() -> String {
    let mut m = Machine::new(Platform::kunpeng916());
    m.enable_trace(8192);
    m.set_region_home(0x100, 0x200, 32);
    let producer = vec![
        Op::store(0x100, 1),
        Op::Fence(Barrier::DmbSt),
        Op::store(0x140, 1),
        Op::Fence(Barrier::DmbFull),
        Op::Fence(Barrier::DsbFull),
        Op::IterationMark,
        Op::store(0x180, 2),
        Op::Fence(Barrier::Isb),
        Op::load_use(0x140),
    ];
    let consumer = vec![
        Op::load_use(0x100),
        Op::Fence(Barrier::DmbLd),
        Op::load_use(0x140),
        Op::IterationMark,
    ];
    m.add_thread_on(
        0,
        Box::new(Script {
            ops: producer,
            pos: 0,
        }),
    );
    m.add_thread_on(
        32,
        Box::new(Script {
            ops: consumer,
            pos: 0,
        }),
    );
    assert!(m.run(1_000_000).halted);
    m.take_trace().to_chrome_json()
}

#[test]
fn chrome_trace_json_round_trips_without_serde() {
    let json = traced_run();
    let doc = Parser::new(&json).parse_document();
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "a barrier-heavy run must emit events");
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(
            ph == "X" || ph == "i",
            "only complete and instant events are emitted, got {ph:?}"
        );
        assert!(e.get("name").and_then(Json::as_str).is_some(), "name");
        assert!(e.get("ts").and_then(Json::as_num).is_some(), "ts");
        assert_eq!(e.get("pid").and_then(Json::as_num), Some(0.0), "pid");
        assert!(e.get("tid").and_then(Json::as_num).is_some(), "tid");
        if ph == "X" {
            let dur = e.get("dur").and_then(Json::as_num).expect("X needs dur");
            assert!(dur >= 0.0);
        }
    }
}

#[test]
fn chrome_trace_timestamps_are_monotone_per_track() {
    let json = traced_run();
    let doc = Parser::new(&json).parse_document();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing");
    };
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut tracks = std::collections::HashSet::new();
    for e in events {
        let tid = e.get("tid").and_then(Json::as_num).unwrap() as u64;
        let ts = e.get("ts").and_then(Json::as_num).unwrap();
        tracks.insert(tid);
        if let Some(&prev) = last_ts.get(&tid) {
            assert!(ts >= prev, "track {tid} went backwards: {ts} after {prev}");
        }
        last_ts.insert(tid, ts);
    }
    assert_eq!(tracks.len(), 2, "both cores must appear as tracks");
}

#[test]
fn stall_slices_cover_the_breakdown_causes() {
    // Stall slices carry the cause labels exported by StallBreakdown.
    let json = traced_run();
    assert!(
        json.contains("stall:"),
        "a barrier-heavy traced run must contain stall slices"
    );
    let known = armbar_sim::StallBreakdown::CAUSE_LABELS;
    for part in json.split("stall:").skip(1) {
        let label: String = part.chars().take_while(|c| *c != '"').collect();
        assert!(
            known.contains(&label.as_str()),
            "unknown stall cause label {label:?}"
        );
    }
}
