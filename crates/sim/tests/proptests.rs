//! Property-based tests on the simulator's core invariants: arbitrary
//! op streams must never deadlock, lose stores, tear values, or break
//! determinism; coherence must serialize RMWs exactly.

use proptest::prelude::*;

use armbar_sim::{Machine, Op, Platform, PlatformKind, RmwKind, SimThread, ThreadCtx};

/// A generated op for the random-program property tests (kept closed so
/// programs are always well formed: no dangling dependencies, addresses in
/// a small aligned pool).
#[derive(Debug, Clone, Copy)]
enum GenOp {
    Nops(u8),
    Load(u8),
    LoadUse(u8),
    Store(u8, u16),
    StoreRelease(u8, u16),
    FetchAdd(u8),
    Fence(u8),
}

fn addr_of(slot: u8) -> u64 {
    0x4000 + u64::from(slot % 16) * 64
}

fn to_op(g: GenOp) -> Op {
    use armbar_barriers::Barrier;
    match g {
        GenOp::Nops(n) => Op::Nops(u32::from(n % 32) + 1),
        GenOp::Load(s) => Op::load(addr_of(s)),
        GenOp::LoadUse(s) => Op::load_use(addr_of(s)),
        GenOp::Store(s, v) => Op::store(addr_of(s), u64::from(v) + 1),
        GenOp::StoreRelease(s, v) => Op::store_release(addr_of(s), u64::from(v) + 1),
        GenOp::FetchAdd(s) => Op::fetch_add_acq_rel(addr_of(s), 1),
        GenOp::Fence(k) => Op::Fence(
            [
                Barrier::DmbFull,
                Barrier::DmbSt,
                Barrier::DmbLd,
                Barrier::DsbFull,
                Barrier::DsbSt,
                Barrier::DsbLd,
                Barrier::Isb,
                Barrier::None,
            ][usize::from(k) % 8],
        ),
    }
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        any::<u8>().prop_map(GenOp::Nops),
        any::<u8>().prop_map(GenOp::Load),
        any::<u8>().prop_map(GenOp::LoadUse),
        (any::<u8>(), any::<u16>()).prop_map(|(s, v)| GenOp::Store(s, v)),
        (any::<u8>(), any::<u16>()).prop_map(|(s, v)| GenOp::StoreRelease(s, v)),
        any::<u8>().prop_map(GenOp::FetchAdd),
        any::<u8>().prop_map(GenOp::Fence),
    ]
}

struct Script {
    ops: Vec<Op>,
    pos: usize,
}

impl SimThread for Script {
    fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
        let op = self.ops.get(self.pos).copied().unwrap_or(Op::Halt);
        self.pos += 1;
        op
    }
}

fn run_program(platform: &Platform, programs: &[Vec<GenOp>]) -> (Machine, u64) {
    let mut m = Machine::new(platform.clone());
    let step = platform.topology.core_count() / programs.len().max(1);
    for (i, p) in programs.iter().enumerate() {
        let ops: Vec<Op> = p.iter().copied().map(to_op).collect();
        m.add_thread_on(i * step.max(1), Box::new(Script { ops, pos: 0 }));
    }
    let stats = m.run(80_000_000);
    assert!(
        stats.halted,
        "random programs must always terminate (no deadlock)"
    );
    (m, stats.cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No op stream can deadlock or stall the machine forever.
    #[test]
    fn arbitrary_single_core_programs_terminate(
        ops in prop::collection::vec(gen_op(), 0..120),
    ) {
        run_program(&Platform::kunpeng916(), &[ops]);
    }

    /// Multi-core random programs terminate and never lose the final store
    /// to any cell one thread wrote alone.
    #[test]
    fn arbitrary_multi_core_programs_terminate(
        a in prop::collection::vec(gen_op(), 0..60),
        b in prop::collection::vec(gen_op(), 0..60),
        c in prop::collection::vec(gen_op(), 0..60),
    ) {
        run_program(&Platform::kunpeng916(), &[a, b, c]);
    }

    /// The machine is deterministic: identical programs give identical
    /// cycle counts and memory images.
    #[test]
    fn simulation_is_deterministic(
        a in prop::collection::vec(gen_op(), 0..80),
        b in prop::collection::vec(gen_op(), 0..80),
    ) {
        let progs = [a, b];
        let (m1, c1) = run_program(&Platform::kirin960(), &progs);
        let (m2, c2) = run_program(&Platform::kirin960(), &progs);
        prop_assert_eq!(c1, c2);
        for slot in 0..16u8 {
            prop_assert_eq!(m1.read_memory(addr_of(slot)), m2.read_memory(addr_of(slot)));
        }
    }

    /// A single writer's last store to a cell always wins (per-location
    /// coherence): after quiescence the memory image holds the program-order
    /// last value.
    #[test]
    fn single_writer_last_store_wins(
        values in prop::collection::vec(any::<u16>(), 1..40),
        fences in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let mut ops = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            ops.push(GenOp::Store(3, v));
            ops.push(GenOp::Fence(fences[i % fences.len()]));
        }
        let (m, _) = run_program(&Platform::raspberry_pi4(), &[ops]);
        let expect = u64::from(*values.last().unwrap()) + 1;
        prop_assert_eq!(m.read_memory(addr_of(3)), expect);
    }

    /// Stall attribution invariants on random programs: the per-cause and
    /// per-kind counters are non-negative by type, sum exactly to the total
    /// on every core, never exceed the core's lifetime, and the whole
    /// breakdown is deterministic across repeated runs. (`ARMBAR_JOBS`
    /// invariance follows from this: the sweep engine replays identical
    /// single-machine runs regardless of worker count, so a deterministic
    /// breakdown is a worker-count-independent one — see the experiment
    /// crate's determinism tests for the end-to-end CSV check.)
    #[test]
    fn stall_breakdown_is_consistent_and_deterministic(
        a in prop::collection::vec(gen_op(), 0..80),
        b in prop::collection::vec(gen_op(), 0..80),
    ) {
        let progs = [a, b];
        let platform = Platform::kunpeng916();
        let step = platform.topology.core_count() / 2;
        let (m1, _) = run_program(&platform, &progs);
        let (m2, _) = run_program(&platform, &progs);
        for core in [0, step] {
            let s = m1.core_stats(core);
            prop_assert_eq!(s.stall.cause_total(), s.stall.total);
            prop_assert_eq!(s.stall.kind_total(), s.stall.total);
            prop_assert!(s.stall.total <= s.cycles);
            prop_assert_eq!(s.barrier_stall_cycles(), s.stall.total);
            prop_assert_eq!(&s.stall, &m2.core_stats(core).stall);
        }
    }

    /// RMWs never lose updates regardless of interleaving, fences, or
    /// platform.
    #[test]
    fn fetch_adds_are_exact(
        counts in prop::collection::vec(1u8..20, 2..4),
        kind_ix in 0usize..4,
    ) {
        let platform = Platform::of(PlatformKind::ALL[kind_ix]);
        let mut total = 0u64;
        let progs: Vec<Vec<GenOp>> = counts
            .iter()
            .map(|&n| {
                total += u64::from(n);
                (0..n).map(|_| GenOp::FetchAdd(7)).collect()
            })
            .collect();
        let (m, _) = run_program(&platform, &progs);
        prop_assert_eq!(m.read_memory(addr_of(7)), total);
    }
}

/// CAS success is exclusive: of N cores racing one CAS(0 -> id), exactly
/// one observes the old value 0.
#[test]
fn cas_winner_is_unique() {
    struct CasOnce {
        id: u64,
        done: bool,
        won_addr: u64,
    }
    impl SimThread for CasOnce {
        fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
            if !self.done {
                self.done = true;
                return Op::Rmw {
                    addr: 0x9000,
                    kind: RmwKind::Cas { expected: 0 },
                    operand: self.id,
                    acquire: true,
                    release: false,
                };
            }
            if self.won_addr == 0 {
                self.won_addr = 1;
                if ctx.last_value == 0 {
                    // We won: record it.
                    return Op::store(0xA000 + self.id * 64, 1);
                }
            }
            Op::Halt
        }
    }
    let platform = Platform::kunpeng916();
    let mut m = Machine::new(platform);
    for i in 0..6u64 {
        m.add_thread_on(
            i as usize * 8,
            Box::new(CasOnce {
                id: i + 1,
                done: false,
                won_addr: 0,
            }),
        );
    }
    let stats = m.run(10_000_000);
    assert!(stats.halted);
    let winners: u64 = (0..6u64)
        .map(|i| m.read_memory(0xA000 + (i + 1) * 64))
        .sum();
    assert_eq!(winners, 1, "exactly one CAS may observe 0");
    assert_ne!(m.read_memory(0x9000), 0);
}
