//! The timing simulator is also a *behavioural* weak-memory machine: load
//! values come from the committed memory image, so reorderings produced by
//! the non-FIFO store buffer are observable as wrong values — and barriers
//! must make them vanish.
//!
//! The witness: a producer whose DATA store carries a (bogus) dependency on
//! a slow remote load, followed by an independent FLAG store. The flag's
//! drain is eligible immediately while the data's waits for the load — so
//! without a barrier the flag becomes visible first and the consumer reads
//! stale data. A `DMB st` gate (or STLR on the flag) restores order.

use armbar_barriers::Barrier;
use armbar_sim::{Machine, Op, Platform, SimThread, ThreadCtx};

const SLOW: u64 = 0x100; // lines the producer's load chain walks (remote)
const SLOW2: u64 = 0x140;
const DATA: u64 = 0x8000;
const FLAG: u64 = 0x8040;
const SEEN: u64 = 0x8080; // consumer's observation, written back for asserts

struct Producer {
    barrier: Barrier,
    state: u8,
}

impl SimThread for Producer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        let state = self.state;
        self.state += 1;
        match state {
            // A slow remote load chain the data store will depend on: two
            // *fire-and-forget* dependent loads (the thread keeps running,
            // so the flag store issues immediately) push the data's drain
            // start past the flag drain's completion.
            0 => {
                let _ = ctx.last_value();
                Op::load(SLOW)
            }
            1 => Op::load_dep(SLOW2, false),
            // DATA = f(loaded): drain gated on the chain's completion.
            2 => Op::store_dep(DATA, 23),
            3 => match self.barrier {
                Barrier::None => {
                    self.state = 5; // skip the separate flag state
                    Op::store(FLAG, 1)
                }
                Barrier::Stlr => {
                    self.state = 5;
                    Op::store_release(FLAG, 1)
                }
                f => Op::Fence(f),
            },
            4 => Op::store(FLAG, 1),
            _ => Op::Halt,
        }
    }
}

struct Consumer {
    phase: u8,
}

impl SimThread for Consumer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        match self.phase {
            0 => {
                self.phase = 1;
                Op::load_use(FLAG)
            }
            1 => {
                if ctx.last_value() == 0 {
                    self.phase = 0;
                    return Op::Nops(1);
                }
                self.phase = 2;
                // Read the data immediately (address dependency only,
                // which cannot save us from the *producer's* reorder).
                Op::load_dep(DATA, true)
            }
            2 => {
                self.phase = 3;
                Op::store(SEEN, ctx.last_value())
            }
            _ => Op::Halt,
        }
    }
}

fn observed_data(barrier: Barrier) -> u64 {
    let mut m = Machine::new(Platform::kunpeng916());
    // The slow line lives on the far node, the mailbox lines start at the
    // consumer (it polled them last round).
    m.set_region_home(SLOW, SLOW2 + 64, 40);
    m.set_region_home(DATA, FLAG + 64, 32);
    m.add_thread_on(0, Box::new(Producer { barrier, state: 0 }));
    m.add_thread_on(32, Box::new(Consumer { phase: 0 }));
    let stats = m.run(5_000_000);
    assert!(stats.halted, "{barrier}: run must finish");
    m.read_memory(SEEN)
}

#[test]
fn unbarriered_producer_exposes_the_store_store_reordering() {
    assert_eq!(
        observed_data(Barrier::None),
        0,
        "flag drains ahead of the dependent data store: consumer reads stale data"
    );
}

#[test]
fn dmb_st_gate_restores_order() {
    assert_eq!(observed_data(Barrier::DmbSt), 23);
}

#[test]
fn dmb_full_restores_order() {
    assert_eq!(observed_data(Barrier::DmbFull), 23);
}

#[test]
fn dsb_restores_order() {
    assert_eq!(observed_data(Barrier::DsbSt), 23);
}

#[test]
fn stlr_flag_restores_order() {
    assert_eq!(observed_data(Barrier::Stlr), 23);
}

#[test]
fn the_fix_costs_cycles() {
    // The repaired runs must be slower than the racy one — order is not
    // free, which is the entire subject of the paper.
    let cycles = |barrier| {
        let mut m = Machine::new(Platform::kunpeng916());
        m.set_region_home(SLOW, SLOW2 + 64, 40);
        m.set_region_home(DATA, FLAG + 64, 32);
        m.add_thread_on(0, Box::new(Producer { barrier, state: 0 }));
        m.add_thread_on(32, Box::new(Consumer { phase: 0 }));
        let stats = m.run(5_000_000);
        assert!(stats.halted);
        stats.cycles
    };
    assert!(cycles(Barrier::DmbSt) > cycles(Barrier::None));
    assert!(cycles(Barrier::DsbSt) >= cycles(Barrier::DmbSt));
}
