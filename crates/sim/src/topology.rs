//! Cluster/NUMA topology and the ACE boundary structure.
//!
//! An ARM system groups *masters* (cores) into clusters behind interconnects;
//! subsets of masters sit behind **inner bi-section boundaries**, and the
//! whole inner-shareable domain behind the **inner domain boundary**
//! (paper Figure 1). Here, each NUMA node is one bi-section: a memory-barrier
//! transaction whose snooping stays inside a node is answered at that node's
//! boundary, while one involving another node — and every synchronization
//! barrier transaction — must reach the domain boundary.

use crate::types::{CoreId, DistanceClass};

/// A physical core-cluster: a contiguous range of core ids inside one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// First core id in the cluster.
    pub first_core: CoreId,
    /// Number of cores in the cluster.
    pub cores: usize,
}

/// A NUMA node: one or more clusters behind a shared bi-section boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Clusters in this node.
    pub clusters: Vec<Cluster>,
}

/// Where a core sits: `(node index, cluster index within node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// NUMA node index.
    pub node: usize,
    /// Cluster index within the node.
    pub cluster: usize,
}

/// The full system topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: Vec<Node>,
    /// Flattened `core id -> placement` map, computed at construction.
    placements: Vec<Placement>,
}

impl Topology {
    /// Build a topology from a nested description:
    /// `nodes[i][j]` = core count of cluster `j` in node `i`.
    ///
    /// Core ids are assigned densely in description order.
    ///
    /// # Panics
    ///
    /// Panics if any node or cluster is empty.
    #[must_use]
    pub fn new(desc: &[&[usize]]) -> Topology {
        assert!(!desc.is_empty(), "topology needs at least one node");
        let mut nodes = Vec::with_capacity(desc.len());
        let mut placements = Vec::new();
        let mut next_core = 0usize;
        for (ni, clusters) in desc.iter().enumerate() {
            assert!(!clusters.is_empty(), "node {ni} has no clusters");
            let mut node = Node {
                clusters: Vec::with_capacity(clusters.len()),
            };
            for (ci, &count) in clusters.iter().enumerate() {
                assert!(count > 0, "cluster {ci} of node {ni} is empty");
                node.clusters.push(Cluster {
                    first_core: next_core,
                    cores: count,
                });
                for _ in 0..count {
                    placements.push(Placement {
                        node: ni,
                        cluster: ci,
                    });
                }
                next_core += count;
            }
            nodes.push(node);
        }
        Topology { nodes, placements }
    }

    /// A uniform cluster-of-clusters topology: `nodes` NUMA nodes, each of
    /// `clusters_per_node` clusters of `cores_per_cluster` cores — the shape
    /// of the 256/512/1024-core many-core descriptors, where spelling the
    /// nested slice literal out is impossible for run-time sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn uniform(nodes: usize, clusters_per_node: usize, cores_per_cluster: usize) -> Topology {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(clusters_per_node > 0, "nodes need at least one cluster");
        assert!(cores_per_cluster > 0, "clusters need at least one core");
        let counts = vec![cores_per_cluster; clusters_per_node];
        let desc: Vec<&[usize]> = (0..nodes).map(|_| counts.as_slice()).collect();
        Topology::new(&desc)
    }

    /// Total number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.placements.len()
    }

    /// Number of NUMA nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Placement of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn placement(&self, core: CoreId) -> Placement {
        self.placements[core]
    }

    /// Topological distance between two cores (never `Local` or `Memory` —
    /// those describe line locations, not core pairs — unless `a == b`).
    #[must_use]
    pub fn distance(&self, a: CoreId, b: CoreId) -> DistanceClass {
        if a == b {
            return DistanceClass::Local;
        }
        let pa = self.placement(a);
        let pb = self.placement(b);
        if pa.node != pb.node {
            DistanceClass::CrossNode
        } else if pa.cluster != pb.cluster {
            DistanceClass::CrossCluster
        } else {
            DistanceClass::SameCluster
        }
    }

    /// Core ids of every core in `node`, in id order.
    #[must_use]
    pub fn cores_in_node(&self, node: usize) -> Vec<CoreId> {
        (0..self.core_count())
            .filter(|&c| self.placements[c].node == node)
            .collect()
    }

    /// Core ids of cluster `cluster` of node `node`.
    #[must_use]
    pub fn cores_in_cluster(&self, node: usize, cluster: usize) -> Vec<CoreId> {
        let c = &self.nodes[node].clusters[cluster];
        (c.first_core..c.first_core + c.cores).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Topology {
        // Two nodes of two 4-core clusters each (a mini kunpeng).
        Topology::new(&[&[4, 4], &[4, 4]])
    }

    #[test]
    fn core_ids_are_dense_and_ordered() {
        let t = two_node();
        assert_eq!(t.core_count(), 16);
        assert_eq!(
            t.placement(0),
            Placement {
                node: 0,
                cluster: 0
            }
        );
        assert_eq!(
            t.placement(4),
            Placement {
                node: 0,
                cluster: 1
            }
        );
        assert_eq!(
            t.placement(8),
            Placement {
                node: 1,
                cluster: 0
            }
        );
        assert_eq!(
            t.placement(15),
            Placement {
                node: 1,
                cluster: 1
            }
        );
    }

    #[test]
    fn distances() {
        let t = two_node();
        assert_eq!(t.distance(0, 0), DistanceClass::Local);
        assert_eq!(t.distance(0, 1), DistanceClass::SameCluster);
        assert_eq!(t.distance(0, 5), DistanceClass::CrossCluster);
        assert_eq!(t.distance(0, 9), DistanceClass::CrossNode);
        // Symmetry.
        assert_eq!(t.distance(9, 0), DistanceClass::CrossNode);
    }

    #[test]
    fn node_and_cluster_listing() {
        let t = two_node();
        assert_eq!(t.cores_in_node(0), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(t.cores_in_cluster(1, 0), vec![8, 9, 10, 11]);
    }

    #[test]
    fn big_little_topology() {
        // Kirin-style: one node, big cluster + little cluster.
        let t = Topology::new(&[&[4, 4]]);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.distance(0, 4), DistanceClass::CrossCluster);
        assert_eq!(t.distance(0, 3), DistanceClass::SameCluster);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_cluster_rejected() {
        let _ = Topology::new(&[&[4, 0]]);
    }

    #[test]
    fn uniform_matches_the_explicit_descriptor() {
        let u = Topology::uniform(2, 8, 4);
        let e = Topology::new(&[&[4, 4, 4, 4, 4, 4, 4, 4], &[4, 4, 4, 4, 4, 4, 4, 4]]);
        assert_eq!(u, e);
        assert_eq!(u.core_count(), 64);
        // Many-core shapes come out dense and correctly placed.
        let big = Topology::uniform(16, 8, 8);
        assert_eq!(big.core_count(), 1024);
        assert_eq!(big.node_count(), 16);
        assert_eq!(big.placement(0).node, 0);
        assert_eq!(big.placement(1023).node, 15);
        assert_eq!(big.distance(0, 63), DistanceClass::CrossCluster);
        assert_eq!(big.distance(0, 64), DistanceClass::CrossNode);
        assert_eq!(
            big.cores_in_cluster(15, 7),
            (1016..1024).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn uniform_rejects_zero_dimensions() {
        let _ = Topology::uniform(2, 0, 4);
    }
}
