//! Optional execution tracing: a bounded ring of recent machine events for
//! debugging workloads and calibrations.
//!
//! Tracing is off by default (zero overhead beyond a branch); switch it on
//! with [`Trace::enabled`]. Events are deliberately coarse — one per
//! architectural happening, not per cycle — so a trace of a few thousand
//! entries typically covers the window a bug lives in.
//!
//! The ring is a building block for workloads: a [`SimThread`]
//! (crate::op::SimThread) that owns a `Trace` can stamp its own protocol
//! steps (`ctx.now` supplies the clock) and render the window when an
//! assertion trips — see `armbar-simapps`' debugging pattern.

use std::collections::VecDeque;
use std::fmt;

use crate::types::{Addr, CoreId, Cycle};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An instruction class was issued.
    Issue {
        /// Issuing core.
        core: CoreId,
        /// Mnemonic ("load", "store", "fence:DMB full", …).
        what: &'static str,
        /// Address, when the event concerns memory.
        addr: Option<Addr>,
    },
    /// A load completed and delivered a value.
    LoadDone {
        /// Core.
        core: CoreId,
        /// Address.
        addr: Addr,
        /// Value observed.
        value: u64,
    },
    /// A store drain landed in the global memory image.
    StoreVisible {
        /// Core.
        core: CoreId,
        /// Address.
        addr: Addr,
        /// Value committed.
        value: u64,
    },
    /// A barrier's response arrived (it no longer blocks anything).
    BarrierDone {
        /// Core.
        core: CoreId,
        /// Mnemonic.
        what: &'static str,
    },
    /// A workload marked an iteration.
    Iteration {
        /// Core.
        core: CoreId,
        /// Iterations so far.
        count: u64,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped {
    /// Cycle the event happened.
    pub at: Cycle,
    /// What happened.
    pub event: Event,
}

impl fmt::Display for Stamped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.event {
            Event::Issue {
                core,
                what,
                addr: Some(a),
            } => {
                write!(f, "[{:>8}] c{core} issue {what} @{a:#x}", self.at)
            }
            Event::Issue {
                core,
                what,
                addr: None,
            } => {
                write!(f, "[{:>8}] c{core} issue {what}", self.at)
            }
            Event::LoadDone { core, addr, value } => {
                write!(f, "[{:>8}] c{core} load @{addr:#x} -> {value}", self.at)
            }
            Event::StoreVisible { core, addr, value } => {
                write!(
                    f,
                    "[{:>8}] c{core} store @{addr:#x} = {value} visible",
                    self.at
                )
            }
            Event::BarrierDone { core, what } => {
                write!(f, "[{:>8}] c{core} {what} response", self.at)
            }
            Event::Iteration { core, count } => {
                write!(f, "[{:>8}] c{core} iteration {count}", self.at)
            }
        }
    }
}

/// A bounded event ring.
#[derive(Debug, Default)]
pub struct Trace {
    /// Whether events are recorded.
    pub enabled: bool,
    ring: VecDeque<Stamped>,
    capacity: usize,
}

impl Trace {
    /// A disabled trace holding up to `capacity` events once enabled.
    #[must_use]
    pub fn new(capacity: usize) -> Trace {
        Trace {
            enabled: false,
            ring: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Record an event (no-op while disabled).
    pub fn record(&mut self, at: Cycle, event: Event) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(Stamped { at, event });
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Stamped> {
        self.ring.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the retained window as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(8);
        t.record(1, Event::Iteration { core: 0, count: 1 });
        assert!(t.is_empty());
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let mut t = Trace::new(3);
        t.enabled = true;
        for i in 0..5 {
            t.record(i, Event::Iteration { core: 0, count: i });
        }
        assert_eq!(t.len(), 3);
        let firsts: Vec<Cycle> = t.events().map(|e| e.at).collect();
        assert_eq!(firsts, vec![2, 3, 4]);
    }

    #[test]
    fn rendering_is_line_per_event() {
        let mut t = Trace::new(8);
        t.enabled = true;
        t.record(
            10,
            Event::Issue {
                core: 1,
                what: "store",
                addr: Some(0x40),
            },
        );
        t.record(
            15,
            Event::StoreVisible {
                core: 1,
                addr: 0x40,
                value: 7,
            },
        );
        t.record(
            20,
            Event::BarrierDone {
                core: 1,
                what: "DMB full",
            },
        );
        let text = t.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("c1 issue store @0x40"));
        assert!(text.contains("store @0x40 = 7 visible"));
        assert!(text.contains("DMB full response"));
    }

    #[test]
    fn load_event_formatting() {
        let s = Stamped {
            at: 5,
            event: Event::LoadDone {
                core: 2,
                addr: 0x80,
                value: 23,
            },
        };
        assert_eq!(s.to_string(), "[       5] c2 load @0x80 -> 23");
    }
}
