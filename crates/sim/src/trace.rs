//! Optional execution tracing: a bounded ring of recent machine events for
//! debugging workloads and calibrations.
//!
//! Tracing is off by default (zero overhead beyond a branch); switch it on
//! with [`Trace::enabled`]. Events are deliberately coarse — one per
//! architectural happening, not per cycle — so a trace of a few thousand
//! entries typically covers the window a bug lives in.
//!
//! The ring is a building block for workloads: a [`SimThread`]
//! (crate::op::SimThread) that owns a `Trace` can stamp its own protocol
//! steps (`ctx.now` supplies the clock) and render the window when an
//! assertion trips — see `armbar-simapps`' debugging pattern.

use std::collections::VecDeque;
use std::fmt;

use crate::types::{Addr, CoreId, Cycle};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An instruction class was issued.
    Issue {
        /// Issuing core.
        core: CoreId,
        /// Mnemonic ("load", "store", "fence:DMB full", …).
        what: &'static str,
        /// Address, when the event concerns memory.
        addr: Option<Addr>,
    },
    /// A load completed and delivered a value.
    LoadDone {
        /// Core.
        core: CoreId,
        /// Address.
        addr: Addr,
        /// Value observed.
        value: u64,
    },
    /// A store drain landed in the global memory image.
    StoreVisible {
        /// Core.
        core: CoreId,
        /// Address.
        addr: Addr,
        /// Value committed.
        value: u64,
    },
    /// A barrier's response arrived (it no longer blocks anything).
    BarrierDone {
        /// Core.
        core: CoreId,
        /// Mnemonic.
        what: &'static str,
    },
    /// A workload marked an iteration.
    Iteration {
        /// Core.
        core: CoreId,
        /// Iterations so far.
        count: u64,
    },
    /// Issue became fully blocked on a barrier condition (the stall cause
    /// just started being charged).
    StallBegin {
        /// Stalled core.
        core: CoreId,
        /// Cause label ([`crate::stats::StallCause::label`]).
        cause: &'static str,
        /// Mnemonic of the responsible barrier.
        what: &'static str,
    },
    /// A barrier-stall run ended (cause changed or issue made progress).
    StallEnd {
        /// Core.
        core: CoreId,
        /// Cause label of the run that ended.
        cause: &'static str,
        /// Mnemonic of the responsible barrier.
        what: &'static str,
        /// Cycle the run began (the matching [`Event::StallBegin`]).
        since: Cycle,
    },
}

impl Event {
    /// The core the event belongs to (every event has exactly one track).
    #[must_use]
    pub fn core(&self) -> CoreId {
        match self {
            Event::Issue { core, .. }
            | Event::LoadDone { core, .. }
            | Event::StoreVisible { core, .. }
            | Event::BarrierDone { core, .. }
            | Event::Iteration { core, .. }
            | Event::StallBegin { core, .. }
            | Event::StallEnd { core, .. } => *core,
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamped {
    /// Cycle the event happened.
    pub at: Cycle,
    /// What happened.
    pub event: Event,
}

impl fmt::Display for Stamped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.event {
            Event::Issue {
                core,
                what,
                addr: Some(a),
            } => {
                write!(f, "[{:>8}] c{core} issue {what} @{a:#x}", self.at)
            }
            Event::Issue {
                core,
                what,
                addr: None,
            } => {
                write!(f, "[{:>8}] c{core} issue {what}", self.at)
            }
            Event::LoadDone { core, addr, value } => {
                write!(f, "[{:>8}] c{core} load @{addr:#x} -> {value}", self.at)
            }
            Event::StoreVisible { core, addr, value } => {
                write!(
                    f,
                    "[{:>8}] c{core} store @{addr:#x} = {value} visible",
                    self.at
                )
            }
            Event::BarrierDone { core, what } => {
                write!(f, "[{:>8}] c{core} {what} response", self.at)
            }
            Event::Iteration { core, count } => {
                write!(f, "[{:>8}] c{core} iteration {count}", self.at)
            }
            Event::StallBegin { core, cause, what } => {
                write!(f, "[{:>8}] c{core} stall begin {cause} ({what})", self.at)
            }
            Event::StallEnd {
                core,
                cause,
                what,
                since,
            } => {
                write!(
                    f,
                    "[{:>8}] c{core} stall end {cause} ({what}) after {}",
                    self.at,
                    self.at - since
                )
            }
        }
    }
}

/// Ring capacity of a [`Default`]-constructed trace.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded event ring.
#[derive(Debug)]
pub struct Trace {
    /// Whether events are recorded.
    pub enabled: bool,
    ring: VecDeque<Stamped>,
    capacity: usize,
    /// When set, only events of these cores are retained. Tracks are
    /// allocated lazily either way (a core with no events has no track in
    /// the export); the filter is what keeps a many-core trace small when
    /// only a few cores are interesting.
    core_filter: Option<Vec<CoreId>>,
}

impl Default for Trace {
    /// A disabled trace with [`DEFAULT_TRACE_CAPACITY`]. (A derived default
    /// would have capacity 0 and, enabled, grow without bound.)
    fn default() -> Trace {
        Trace::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Trace {
    /// A disabled trace holding up to `capacity` events once enabled.
    #[must_use]
    pub fn new(capacity: usize) -> Trace {
        Trace {
            enabled: false,
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            core_filter: None,
        }
    }

    /// Restrict recording to `cores` (`None` lifts the restriction).
    /// The filter list is kept sorted for the binary-search membership test.
    pub fn set_core_filter(&mut self, cores: Option<Vec<CoreId>>) {
        self.core_filter = cores.map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        });
    }

    /// Parse an `ARMBAR_TRACE_CORES`-style selector: a single number `n`
    /// means "the first `n` cores" (ids `0..n`), a comma-separated list
    /// names specific core ids. `None`, an empty string, or anything
    /// unparsable means no filter.
    #[must_use]
    pub fn parse_core_filter(var: Option<&str>) -> Option<Vec<CoreId>> {
        let s = var?.trim();
        if s.is_empty() {
            return None;
        }
        if s.contains(',') {
            let ids: Option<Vec<CoreId>> = s
                .split(',')
                .map(|p| p.trim().parse::<CoreId>().ok())
                .collect();
            ids.filter(|v| !v.is_empty())
        } else {
            s.parse::<CoreId>().ok().map(|n| (0..n).collect())
        }
    }

    /// Drop already-recorded events from cores outside `cores` (`None` is
    /// a no-op). The post-hoc counterpart of [`Trace::set_core_filter`] for
    /// callers that only see a finished trace — e.g. the experiment
    /// harness applying `ARMBAR_TRACE_CORES` to an exported run.
    pub fn retain_cores(&mut self, cores: Option<&[CoreId]>) {
        if let Some(cores) = cores {
            self.ring.retain(|s| cores.contains(&s.event.core()));
        }
    }

    /// Record an event (no-op while disabled or filtered out).
    pub fn record(&mut self, at: Cycle, event: Event) {
        if !self.enabled {
            return;
        }
        if let Some(f) = &self.core_filter {
            if f.binary_search(&event.core()).is_err() {
                return;
            }
        }
        while self.ring.len() >= self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(Stamped { at, event });
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Stamped> {
        self.ring.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Render the retained window as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Export the retained window as Chrome-trace JSON (the "JSON Array
    /// Format" both `chrome://tracing` and Perfetto accept).
    ///
    /// Each core becomes one track (`tid`); stall runs become complete
    /// (`"ph":"X"`) slices spanning begin→end, everything else becomes
    /// instant (`"ph":"i"`) events. Cycles map 1:1 onto microsecond
    /// timestamps — relative widths are what matter. Events are emitted in
    /// ascending-timestamp order, so per-track timestamps are monotone.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut items: Vec<(Cycle, String)> = Vec::with_capacity(self.ring.len());
        for s in &self.ring {
            match &s.event {
                Event::StallEnd {
                    core,
                    cause,
                    what,
                    since,
                } => {
                    items.push((
                        *since,
                        format!(
                            "{{\"name\":{},\"cat\":\"stall\",\"ph\":\"X\",\"ts\":{},\
                             \"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"barrier\":{}}}}}",
                            json_string(&format!("stall:{cause}")),
                            since,
                            s.at - since,
                            core,
                            json_string(what),
                        ),
                    ));
                }
                Event::StallBegin { .. } => {
                    // The matching StallEnd carries the whole slice; an
                    // extra instant would only clutter the track. Runs still
                    // open when the trace stopped simply have no slice.
                }
                other => {
                    let (core, name, args) = match other {
                        Event::Issue { core, what, addr } => (
                            *core,
                            format!("issue:{what}"),
                            addr.map(|a| format!("{{\"addr\":\"{a:#x}\"}}")),
                        ),
                        Event::LoadDone { core, addr, value } => (
                            *core,
                            "load-done".to_string(),
                            Some(format!("{{\"addr\":\"{addr:#x}\",\"value\":{value}}}")),
                        ),
                        Event::StoreVisible { core, addr, value } => (
                            *core,
                            "store-visible".to_string(),
                            Some(format!("{{\"addr\":\"{addr:#x}\",\"value\":{value}}}")),
                        ),
                        Event::BarrierDone { core, what } => {
                            (*core, format!("barrier-done:{what}"), None)
                        }
                        Event::Iteration { core, count } => (
                            *core,
                            "iteration".to_string(),
                            Some(format!("{{\"count\":{count}}}")),
                        ),
                        Event::StallBegin { .. } | Event::StallEnd { .. } => unreachable!(),
                    };
                    let args = args.unwrap_or_else(|| "{}".to_string());
                    items.push((
                        s.at,
                        format!(
                            "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\
                             \"s\":\"t\",\"pid\":0,\"tid\":{},\"args\":{args}}}",
                            json_string(&name),
                            s.at,
                            core,
                        ),
                    ));
                }
            }
        }
        items.sort_by_key(|(ts, _)| *ts);
        let mut out = String::from("{\"traceEvents\":[");
        for (i, (_, item)) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(item);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Quote a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(8);
        t.record(1, Event::Iteration { core: 0, count: 1 });
        assert!(t.is_empty());
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let mut t = Trace::new(3);
        t.enabled = true;
        for i in 0..5 {
            t.record(i, Event::Iteration { core: 0, count: i });
        }
        assert_eq!(t.len(), 3);
        let firsts: Vec<Cycle> = t.events().map(|e| e.at).collect();
        assert_eq!(firsts, vec![2, 3, 4]);
    }

    #[test]
    fn rendering_is_line_per_event() {
        let mut t = Trace::new(8);
        t.enabled = true;
        t.record(
            10,
            Event::Issue {
                core: 1,
                what: "store",
                addr: Some(0x40),
            },
        );
        t.record(
            15,
            Event::StoreVisible {
                core: 1,
                addr: 0x40,
                value: 7,
            },
        );
        t.record(
            20,
            Event::BarrierDone {
                core: 1,
                what: "DMB full",
            },
        );
        let text = t.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("c1 issue store @0x40"));
        assert!(text.contains("store @0x40 = 7 visible"));
        assert!(text.contains("DMB full response"));
    }

    #[test]
    fn default_trace_is_bounded_once_enabled() {
        // Regression: the derived Default used to have capacity 0, and the
        // `==` eviction check could never fire, so the ring grew forever.
        let mut t = Trace {
            enabled: true,
            ..Trace::default()
        };
        let n = DEFAULT_TRACE_CAPACITY as u64 + 100;
        for i in 0..n {
            t.record(i, Event::Iteration { core: 0, count: i });
        }
        assert_eq!(t.len(), DEFAULT_TRACE_CAPACITY);
        assert_eq!(t.events().next().unwrap().at, 100);
    }

    #[test]
    fn enabled_trace_never_exceeds_capacity() {
        for cap in [1usize, 2, 7] {
            let mut t = Trace::new(cap);
            t.enabled = true;
            for i in 0..50u64 {
                t.record(i, Event::Iteration { core: 0, count: i });
                assert!(t.len() <= cap, "capacity {cap} exceeded at push {i}");
            }
            assert_eq!(t.len(), cap);
        }
    }

    #[test]
    fn chrome_export_turns_stall_runs_into_slices() {
        let mut t = Trace::new(16);
        t.enabled = true;
        t.record(
            5,
            Event::StallBegin {
                core: 1,
                cause: "memory-block",
                what: "DMB full",
            },
        );
        t.record(
            12,
            Event::StallEnd {
                core: 1,
                cause: "memory-block",
                what: "DMB full",
                since: 5,
            },
        );
        t.record(
            20,
            Event::BarrierDone {
                core: 1,
                what: "DMB full",
            },
        );
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":5"));
        assert!(json.contains("\"dur\":7"));
        assert!(json.contains("barrier-done:DMB full"));
        // The begin instant is folded into the slice, not emitted twice.
        assert!(!json.contains("stall-begin"));
    }

    #[test]
    fn core_filter_drops_other_cores_events() {
        let mut t = Trace::new(16);
        t.enabled = true;
        t.set_core_filter(Some(vec![2, 0]));
        for core in 0..4 {
            t.record(core as Cycle, Event::Iteration { core, count: 1 });
        }
        let cores: Vec<CoreId> = t.events().map(|e| e.event.core()).collect();
        assert_eq!(cores, vec![0, 2]);
        t.set_core_filter(None);
        t.record(9, Event::Iteration { core: 3, count: 2 });
        assert_eq!(t.len(), 3, "lifting the filter records everything again");
    }

    #[test]
    fn retain_cores_filters_a_finished_trace() {
        let mut t = Trace::new(16);
        t.enabled = true;
        for core in 0..4 {
            t.record(core as Cycle, Event::Iteration { core, count: 1 });
        }
        t.retain_cores(None);
        assert_eq!(t.len(), 4, "no filter retains everything");
        t.retain_cores(Some(&[1, 3]));
        let cores: Vec<CoreId> = t.events().map(|e| e.event.core()).collect();
        assert_eq!(cores, vec![1, 3]);
    }

    #[test]
    fn core_filter_parsing() {
        assert_eq!(Trace::parse_core_filter(None), None);
        assert_eq!(Trace::parse_core_filter(Some("")), None);
        assert_eq!(Trace::parse_core_filter(Some("  ")), None);
        assert_eq!(Trace::parse_core_filter(Some("bogus")), None);
        assert_eq!(Trace::parse_core_filter(Some("3")), Some(vec![0, 1, 2]));
        assert_eq!(Trace::parse_core_filter(Some("0")), Some(vec![]));
        assert_eq!(
            Trace::parse_core_filter(Some("0, 4,40")),
            Some(vec![0, 4, 40])
        );
        assert_eq!(Trace::parse_core_filter(Some("1,x")), None);
    }

    #[test]
    fn events_know_their_core() {
        assert_eq!(Event::Iteration { core: 7, count: 1 }.core(), 7);
        assert_eq!(
            Event::StallEnd {
                core: 3,
                cause: "c",
                what: "w",
                since: 0
            }
            .core(),
            3
        );
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }

    #[test]
    fn load_event_formatting() {
        let s = Stamped {
            at: 5,
            event: Event::LoadDone {
                core: 2,
                addr: 0x80,
                value: 23,
            },
        };
        assert_eq!(s.to_string(), "[       5] c2 load @0x80 -> 23");
    }
}
