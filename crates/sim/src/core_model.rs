//! The per-core pipeline model.
//!
//! Each core is an in-order-issue, out-of-order-completion machine:
//!
//! * up to `issue_width` instructions issue per cycle into a bounded
//!   [`Rob`]; retirement is in order at `retire_width`;
//! * stores are fire-and-forget into the non-FIFO [`StoreBuffer`];
//! * loads take their latency from the coherence [`Directory`] and complete
//!   asynchronously (with store-to-load forwarding from the own buffer);
//! * barrier instructions install the blocking conditions described by
//!   [`Barrier`]'s implementation predicates — §2.3's "typical
//!   implementation": block subsequent instruction classes, wait for prior
//!   accesses, then wait for the ACE transaction response whose scope
//!   depends on how far the prior snooping travelled.
//!
//! Load *values* are real: loads read the globally committed memory image at
//! completion time (plus own-store forwarding), so racy workloads observe
//! genuine weak-memory behaviour — e.g. a consumer polling a flag really can
//! see the flag before the data if the producer omitted its barrier, because
//! the store buffer drains out of order.

use armbar_fxhash::FxHashMap;

use armbar_barriers::{Acquire, Barrier};

use crate::directory::Directory;
use crate::op::{Op, RmwKind, SimThread, ThreadCtx};
use crate::platform::LatencyParams;
use crate::rob::{Rob, SlotId};
use crate::stats::{CoreStats, StallCause};
use crate::storebuf::{SbEntry, SbState, Seq, StoreBuffer};
use crate::topology::Topology;
use crate::trace::{Event, Trace};
use crate::types::{Addr, CoreId, Cycle, DistanceClass, Line};

/// State shared by all cores: the coherence directory and the committed
/// memory image (8-byte cells; absent cells read as zero).
#[derive(Debug, Default)]
pub struct SharedState {
    /// Coherence directory.
    pub directory: Directory,
    /// Globally visible memory (committed store values). FxHash-keyed:
    /// addresses are workload-chosen constants, never adversarial.
    pub memory: FxHashMap<Addr, u64>,
    /// Cores whose watched line just received a committed store; the
    /// machine drains this after each step batch and wakes them one cycle
    /// after the commit (uniform in both engines, so wake order never
    /// depends on writer/waiter id order within a cycle).
    pub pending_wakes: Vec<CoreId>,
}

impl SharedState {
    /// Read a committed cell (zero if never written).
    #[must_use]
    pub fn read(&self, addr: Addr) -> u64 {
        *self.memory.get(&addr).unwrap_or(&0)
    }

    /// Commit a value to a cell, collecting any cores parked on its line.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.memory.insert(addr, value);
        self.directory
            .take_waiters_into(Line::containing(addr), &mut self.pending_wakes);
    }
}

/// An RMW riding on an in-flight "load" record.
#[derive(Debug, Clone, Copy)]
struct RmwInfo {
    kind: RmwKind,
    operand: u64,
}

/// An in-flight load (or RMW).
#[derive(Debug, Clone)]
struct LoadInFlight {
    id: u64,
    seq: Seq,
    rob_slot: SlotId,
    addr: Addr,
    done_at: Cycle,
    distance: DistanceClass,
    /// Value fixed at issue by store-to-load forwarding, if any.
    forwarded: Option<u64>,
    /// Deliver the value to the (suspended) thread on completion.
    wants_value: bool,
    /// Acquire annotation; any acquiring load clears the gate on
    /// completion, and the flavour decides which kind a gate stall is
    /// charged to (`LDAR` vs `LDAPR`).
    acquire: Acquire,
    rmw: Option<RmwInfo>,
}

/// A pending barrier instruction (fence) and its wait conditions.
#[derive(Debug, Clone)]
struct PendingBarrier {
    kind: Barrier,
    rob_slot: Option<SlotId>,
    /// Program-order point of the barrier: prior accesses have `seq <` this.
    seq: Seq,
    /// Response time, known once prior accesses complete.
    resp_at: Option<Cycle>,
    /// Whether any prior access the barrier waited on crossed a node.
    crossed_node: bool,
    /// Whether any prior access was outstanding when the barrier issued
    /// (idle barriers get the cheap response).
    had_priors: bool,
}

impl PendingBarrier {
    fn waits_loads(&self) -> bool {
        matches!(
            self.kind,
            Barrier::DmbFull
                | Barrier::DmbLd
                | Barrier::DsbFull
                | Barrier::DsbLd
                | Barrier::CtrlIsb
        )
    }

    fn waits_stores(&self) -> bool {
        matches!(
            self.kind,
            Barrier::DmbFull | Barrier::DsbFull | Barrier::DsbSt
        )
    }

    /// Does this pending barrier forbid issuing memory operations?
    fn blocks_memory(&self) -> bool {
        // Every modelled fence except DMB st (which lives in the store
        // buffer as a gate, not here) orders *something* later; subsequent
        // memory ops wait for the response.
        true
    }

    /// Does it forbid issuing anything at all?
    fn blocks_all(&self) -> bool {
        self.kind.blocks_issue_of_non_memory()
    }
}

/// Why issue made no progress this cycle (for stall accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stall {
    None,
    /// Barrier-caused: charged to exactly one cause and one barrier kind.
    Barrier(StallCause, Barrier),
    /// Plain resource limit with no barrier behind it (uncharged).
    Resource,
    Suspended,
    /// Parked on a [`Op::WaitChange`] line: idle workload wait, uncharged.
    Parked,
}

/// An open run of consecutive fully stalled cycles with one (cause, kind).
/// Because the machine's event-accelerated loop only steps cores at wake
/// cycles, the run charges *elapsed* cycles between observations rather
/// than one per step — otherwise skipped cycles would go unaccounted.
#[derive(Debug, Clone, Copy)]
struct StallRun {
    cause: StallCause,
    kind: Barrier,
    /// Cycle the run began (for the trace slice).
    since: Cycle,
    /// Last cycle already charged; the next observation charges the gap.
    charged_to: Cycle,
}

/// One simulated core.
pub struct Core {
    id: CoreId,
    thread: Option<Box<dyn SimThread>>,
    halted: bool,
    rob: Rob,
    sb: StoreBuffer,
    pending_op: Option<Op>,
    nops_remaining: u32,
    /// Suspended waiting for the value of this load id.
    suspended_on: Option<u64>,
    issue_blocked_until: Cycle,
    /// The barrier kind responsible for `issue_blocked_until` (ISB, or a
    /// DSB/CTRL+ISB whose response window blocks all issue).
    issue_block_kind: Barrier,
    /// Open stall run, if the previous observed cycle was fully stalled.
    stall_run: Option<StallRun>,
    loads: Vec<LoadInFlight>,
    next_seq: Seq,
    next_load_id: u64,
    pending_barrier: Option<PendingBarrier>,
    /// LDAR in flight: memory ops may not issue until this load completes.
    acquire_gate: Option<u64>,
    /// Parked on a [`Op::WaitChange`] whose condition still held: the core
    /// issues nothing until the machine delivers a line-change wake (the op
    /// itself sits in `pending_op` and re-checks on wake-up).
    parked: bool,
    /// Most recent load: `(id, done_at)` for dependency modelling.
    last_load: Option<(u64, Cycle)>,
    /// Cycle of the previous `Op::IterationMark` (response-time baseline).
    last_iteration_at: Cycle,
    /// Completion times of loads, by seq, still needed by release stores.
    load_seq_done: Vec<(Seq, Cycle)>,
    ctx: ThreadCtx,
    stats: CoreStats,
    /// Per-gate cross-node tracking parallel to `sb` gates is folded into
    /// the gate structs; barrier window distance is tracked on drains/loads.
    params_cache: CoreParams,
}

/// Per-core copies of the latency parameters the hot path needs.
#[derive(Debug, Clone, Copy)]
struct CoreParams {
    issue_width: u32,
    retire_width: u32,
    max_outstanding_loads: u32,
    t_l1_hit: Cycle,
    t_membar_idle: Cycle,
    t_membar_bisection: Cycle,
    t_membar_domain: Cycle,
    t_syncbar: Cycle,
    t_stlr: Cycle,
    t_isb_flush: Cycle,
    dmb_holds_rob: bool,
}

impl Core {
    /// A core with no thread (inert until one is attached).
    #[must_use]
    pub fn new(id: CoreId, lat: &LatencyParams) -> Core {
        Core {
            id,
            thread: None,
            halted: false,
            rob: Rob::new(lat.rob_size),
            sb: StoreBuffer::with_order(lat.sb_size, lat.sb_drain_ports, lat.fifo_store_buffer),
            pending_op: None,
            nops_remaining: 0,
            suspended_on: None,
            issue_blocked_until: 0,
            issue_block_kind: Barrier::Isb,
            stall_run: None,
            loads: Vec::new(),
            next_seq: 0,
            next_load_id: 0,
            pending_barrier: None,
            acquire_gate: None,
            parked: false,
            last_load: None,
            last_iteration_at: 0,
            load_seq_done: Vec::new(),
            ctx: ThreadCtx {
                now: 0,
                last_value: 0,
                iterations: 0,
            },
            stats: CoreStats::default(),
            params_cache: CoreParams {
                issue_width: lat.issue_width,
                retire_width: lat.retire_width,
                max_outstanding_loads: lat.max_outstanding_loads,
                t_l1_hit: lat.t_l1_hit,
                t_membar_idle: lat.t_membar_idle,
                t_membar_bisection: lat.t_membar_bisection,
                t_membar_domain: lat.t_membar_domain,
                t_syncbar: lat.t_syncbar,
                t_stlr: lat.t_stlr,
                t_isb_flush: lat.t_isb_flush,
                dmb_holds_rob: lat.dmb_holds_rob,
            },
        }
    }

    /// Attach a workload thread.
    pub fn attach(&mut self, thread: Box<dyn SimThread>) {
        self.thread = Some(thread);
        self.halted = false;
    }

    /// Whether the workload halted *and* all its effects are globally
    /// visible (pipeline and store buffer empty).
    #[must_use]
    pub fn quiesced(&self) -> bool {
        (self.halted || self.thread.is_none())
            && self.rob.is_empty()
            && self.sb.is_empty()
            && self.loads.is_empty()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Earliest cycle at which this core can make progress on its own,
    /// `None` if it never will without outside help.
    ///
    /// The contract the event-driven engine is built on: between `now` and
    /// the returned cycle, stepping this core is a no-op — nothing
    /// completes, drains, retires, or issues, and its stall classification
    /// is constant. `None` means the core has no self-scheduled transition
    /// at all: it is quiesced, or parked on a [`Op::WaitChange`] line (in
    /// which case the machine wakes it through the directory waiter list
    /// when the line changes).
    #[must_use]
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        if self.quiesced() {
            return None;
        }
        // If anything is issuable or retirable right now, act next cycle.
        let mut wake: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            let t = t.max(now + 1);
            wake = Some(wake.map_or(t, |w| w.min(t)));
        };
        // Retirement pending?
        if !self.rob.is_empty() && !self.rob.head_stalled() {
            consider(now + 1);
        }
        // Issue possible?
        let blocked_all = self.issue_blocked_until > now
            || self
                .pending_barrier
                .as_ref()
                .is_some_and(|b| b.blocks_all());
        if !blocked_all && !self.parked && !self.halted && self.suspended_on.is_none() {
            consider(now + 1);
        }
        if self.issue_blocked_until > now {
            consider(self.issue_blocked_until);
        }
        for l in &self.loads {
            consider(l.done_at);
        }
        if let Some(t) = self.sb.next_event(now) {
            consider(t);
        }
        if let Some(b) = &self.pending_barrier {
            if let Some(t) = b.resp_at {
                consider(t);
            }
        }
        if self.parked {
            // A parked core only self-schedules for the in-flight work it
            // still has (drains, outstanding loads, barrier responses);
            // once that runs dry it sleeps until a line-change wake. This
            // is the whole scaling win: a thousand parked spinners cost
            // nothing per cycle.
            return wake;
        }
        // A non-parked, non-quiesced core with no scheduled event can still
        // make progress on the very next step (e.g. a just-issued barrier
        // whose wait conditions are checked per step, or a ready store
        // starting its drain). Report a one-cycle heartbeat rather than
        // dormancy: the machine's run loops treat `None` as "this core
        // never runs again by itself".
        Some(wake.unwrap_or(now + 1))
    }

    /// Whether the core is parked on a [`Op::WaitChange`] line.
    #[must_use]
    pub fn parked(&self) -> bool {
        self.parked
    }

    /// Deliver a line-change wake: the core re-checks its parked
    /// [`Op::WaitChange`] condition at its next step.
    pub(crate) fn unpark(&mut self) {
        self.parked = false;
    }

    fn loads_done_before(&self, seq: Seq, now: Cycle) -> bool {
        self.loads.iter().all(|l| l.seq >= seq || l.done_at <= now)
    }

    fn outstanding_loads(&self, now: Cycle) -> usize {
        self.loads.iter().filter(|l| l.done_at > now).count()
    }

    /// Whether memory operations may issue at `now`.
    fn memory_blocked(&self, now: Cycle) -> bool {
        if let Some(b) = &self.pending_barrier {
            if b.blocks_memory() && b.resp_at.is_none_or(|t| t > now) {
                return true;
            }
        }
        if let Some(id) = self.acquire_gate {
            if self.loads.iter().any(|l| l.id == id && l.done_at > now) {
                return true;
            }
        }
        false
    }

    /// Farthest distance among the outstanding accesses a pending barrier
    /// is still waiting on (pending, response not yet scheduled).
    fn worst_wait_distance(&self, b: &PendingBarrier, now: Cycle) -> DistanceClass {
        let mut worst = DistanceClass::Local;
        if b.waits_loads() {
            for l in &self.loads {
                if l.seq < b.seq && l.done_at > now {
                    worst = worst.max(l.distance);
                }
            }
        }
        if b.waits_stores() {
            for e in self.sb.entries() {
                if e.seq < b.seq {
                    if let Some(d) = e.drain_distance {
                        worst = worst.max(d);
                    }
                }
            }
        }
        worst
    }

    /// Farthest distance among *all* outstanding accesses (release-RMW
    /// wait: every older store drained and every older load complete).
    fn worst_outstanding_distance(&self, now: Cycle) -> DistanceClass {
        let mut worst = DistanceClass::Local;
        for l in &self.loads {
            if l.done_at > now {
                worst = worst.max(l.distance);
            }
        }
        for e in self.sb.entries() {
            if let Some(d) = e.drain_distance {
                worst = worst.max(d);
            }
        }
        worst
    }

    /// Classify a [`Core::memory_blocked`] condition into the one cause
    /// that is charged this cycle. Precondition: `memory_blocked(now)`.
    fn classify_memory_block(&self, now: Cycle) -> (StallCause, Barrier) {
        if let Some(b) = &self.pending_barrier {
            if b.blocks_memory() && b.resp_at.is_none_or(|t| t > now) {
                return match b.resp_at {
                    // Response scheduled: waiting out the window. DSB-class
                    // barriers that block all issue count as the DSB/ISB
                    // window; DMB-class ones as the memory-block interval.
                    Some(_) if b.blocks_all() => (StallCause::ResponseWindow, b.kind),
                    Some(_) => (StallCause::MemoryBlock, b.kind),
                    // Still waiting for prior accesses to complete.
                    None => (
                        StallCause::DrainWait(self.worst_wait_distance(b, now)),
                        b.kind,
                    ),
                };
            }
        }
        // Otherwise an acquire gate (LDAR/LDAPR) holds memory issue;
        // charge the flavour of the gating load.
        let mut worst = DistanceClass::Local;
        let mut kind = Barrier::Ldar;
        if let Some(id) = self.acquire_gate {
            if let Some(l) = self.loads.iter().find(|l| l.id == id && l.done_at > now) {
                worst = l.distance;
                kind = l.acquire.barrier().unwrap_or(Barrier::Ldar);
            }
        }
        (StallCause::DrainWait(worst), kind)
    }

    /// Whether an RCsc acquire (`LDAR`) must hold issue at `now`: an
    /// earlier store-release still sits in the store buffer, and RCsc
    /// forbids the acquiring load from performing before that release is
    /// globally visible. The RCpc `LDAPR` never waits here.
    fn rcsc_release_wait(&self) -> bool {
        self.sb.entries().iter().any(|e| e.release)
    }

    /// Farthest drain distance among buffered store-releases (for charging
    /// the RCsc wait).
    fn worst_release_distance(&self) -> DistanceClass {
        let mut worst = DistanceClass::Local;
        for e in self.sb.entries() {
            if e.release {
                if let Some(d) = e.drain_distance {
                    worst = worst.max(d);
                }
            }
        }
        worst
    }

    /// A full ROB counts as a barrier stall only when a pending barrier is
    /// what keeps the head from retiring (Figure 4's nop throttling);
    /// otherwise it is an uncharged resource limit.
    fn classify_rob_full(&self) -> Stall {
        match &self.pending_barrier {
            Some(b) => Stall::Barrier(StallCause::RobFull, b.kind),
            None => Stall::Resource,
        }
    }

    /// Phase 1: completions — loads/RMWs finishing, drains landing,
    /// barrier/gate conditions resolving.
    fn complete_phase(
        &mut self,
        now: Cycle,
        topo: &Topology,
        lat: &LatencyParams,
        shared: &mut SharedState,
        trace: &mut Trace,
    ) {
        let _ = topo;
        let _ = lat;
        // Finish loads and RMWs.
        let mut finished: Vec<LoadInFlight> = Vec::new();
        let mut i = 0;
        while i < self.loads.len() {
            if self.loads[i].done_at <= now {
                finished.push(self.loads.remove(i));
            } else {
                i += 1;
            }
        }
        finished.sort_by_key(|l| l.done_at);
        for l in finished {
            let value = match (l.forwarded, &l.rmw) {
                (Some(v), _) => v,
                (None, None) => shared.read(l.addr),
                (None, Some(rmw)) => {
                    // Atomic read-modify-write commits at completion.
                    let old = shared.read(l.addr);
                    let new = match rmw.kind {
                        RmwKind::FetchAdd => old.wrapping_add(rmw.operand),
                        RmwKind::Swap => rmw.operand,
                        RmwKind::Cas { expected } => {
                            if old == expected {
                                rmw.operand
                            } else {
                                old
                            }
                        }
                    };
                    shared.write(l.addr, new);
                    old
                }
            };
            self.rob.complete(l.rob_slot);
            self.load_seq_done.push((l.seq, l.done_at));
            if l.distance.crosses_node() {
                if let Some(b) = &mut self.pending_barrier {
                    if b.waits_loads() && l.seq < b.seq {
                        b.crossed_node = true;
                    }
                }
            }
            if l.acquire.is_acquire() && self.acquire_gate == Some(l.id) {
                self.acquire_gate = None;
            }
            if l.wants_value && self.suspended_on == Some(l.id) {
                self.ctx.last_value = value;
                self.suspended_on = None;
            }
        }
        // Trim the load completion log: only entries that could still gate a
        // release store matter (anything older than the oldest SB entry and
        // the pending barrier is irrelevant).
        let keep_from = self
            .sb
            .oldest_pending_seq()
            .into_iter()
            .chain(self.pending_barrier.as_ref().map(|b| b.seq))
            .min()
            .unwrap_or(self.next_seq);
        self.load_seq_done.retain(|&(s, _)| s >= keep_from);

        // Land store drains in the memory image.
        for e in self.sb.complete_drains(now) {
            shared.write(e.addr, e.value);
            // Distance scope for gates/barriers waiting on this drain.
            let crossed = e.drain_crossed_node();
            if crossed {
                for g in self.sb.gates_mut() {
                    if e.seq < g.seq {
                        g.crossed_node = true;
                    }
                }
                if let Some(b) = &mut self.pending_barrier {
                    if b.waits_stores() && e.seq < b.seq {
                        b.crossed_node = true;
                    }
                }
            }
            if e.drain_was_rmr() {
                self.stats.store_rmrs += 1;
            }
        }

        // Open DMB st gates whose pre-gate stores have all drained. Gates
        // are barrier transactions and collect their responses in program
        // order: only the oldest still-closed gate may request one — a
        // younger gate must not sneak an idle-scope response past it.
        let pc = self.params_cache;
        let mut open: Option<(Seq, Cycle)> = None;
        {
            let sb = &self.sb;
            for g in sb.gates_iter() {
                if g.open_at.is_some() {
                    continue;
                }
                if sb.drained_before(g.seq) {
                    let lat_resp = if g.crossed_node {
                        pc.t_membar_domain
                    } else if g.had_priors {
                        pc.t_membar_bisection
                    } else {
                        pc.t_membar_idle
                    };
                    open = Some((g.seq, now + lat_resp));
                }
                // Younger closed gates wait for this one either way.
                break;
            }
        }
        if let Some((seq, t)) = open {
            for g in self.sb.gates_mut() {
                if g.seq == seq {
                    g.open_at = Some(t);
                }
            }
        }
        self.sb.expire_gates(now);

        // Resolve the pending barrier.
        let mut barrier_done = false;
        if let Some(b) = &mut self.pending_barrier {
            if b.resp_at.is_none() {
                let loads_ok = !b.waits_loads() || {
                    let seq = b.seq;
                    self.loads.iter().all(|l| l.seq >= seq || l.done_at <= now)
                };
                let stores_ok = !b.waits_stores() || self.sb.drained_before(b.seq);
                if loads_ok && stores_ok {
                    let resp = match b.kind {
                        Barrier::DmbFull => {
                            now + if !b.had_priors {
                                pc.t_membar_idle
                            } else if b.crossed_node {
                                pc.t_membar_domain
                            } else {
                                pc.t_membar_bisection
                            }
                        }
                        Barrier::DmbLd => now + 1,
                        Barrier::DsbFull | Barrier::DsbSt | Barrier::DsbLd => now + pc.t_syncbar,
                        Barrier::CtrlIsb => now + pc.t_isb_flush,
                        other => unreachable!("{other} never becomes a pending barrier"),
                    };
                    b.resp_at = Some(resp);
                    if b.blocks_all() {
                        self.issue_blocked_until = resp;
                        self.issue_block_kind = b.kind;
                    }
                }
            }
            if let Some(t) = b.resp_at {
                if t <= now {
                    if let Some(slot) = b.rob_slot {
                        self.rob.complete(slot);
                    }
                    barrier_done = true;
                }
            }
        }
        if barrier_done {
            let kind = self.pending_barrier.take().expect("checked above").kind;
            if trace.enabled {
                trace.record(
                    now,
                    Event::BarrierDone {
                        core: self.id,
                        what: kind.mnemonic(),
                    },
                );
            }
        }
    }

    /// Phase 2: start store-buffer drains while coherence ports are free.
    fn drain_phase(
        &mut self,
        now: Cycle,
        topo: &Topology,
        lat: &LatencyParams,
        shared: &mut SharedState,
    ) {
        loop {
            let done_log = &self.load_seq_done;
            let loads = &self.loads;
            let loads_done = |seq: Seq| {
                loads.iter().all(|l| l.seq >= seq || l.done_at <= now) && {
                    // Every already-finished load is fine by construction.
                    let _ = done_log;
                    true
                }
            };
            let Some(i) = self.sb.pick_drain_candidate(now, loads_done) else {
                break;
            };
            let (addr, release) = {
                let e = &self.sb.entries()[i];
                (e.addr, e.release)
            };
            let out =
                shared
                    .directory
                    .access(topo, lat, self.id, Line::containing(addr), true, now);
            let extra = if release { self.params_cache.t_stlr } else { 0 };
            self.sb
                .start_drain_with_meta(i, now + out.latency + extra, out.distance);
        }
    }

    /// Phase 3: retire.
    fn retire_phase(&mut self, _now: Cycle) {
        let n = self.rob.retire(self.params_cache.retire_width);
        self.stats.retired += u64::from(n);
    }

    /// Phase 4: issue up to `issue_width` instructions.
    #[allow(clippy::too_many_lines)]
    fn issue_phase(
        &mut self,
        now: Cycle,
        topo: &Topology,
        lat: &LatencyParams,
        shared: &mut SharedState,
        trace: &mut Trace,
    ) {
        let pc = self.params_cache;
        let mut budget = pc.issue_width;
        let mut stall = Stall::None;
        self.ctx.now = now;
        self.ctx.iterations = self.stats.iterations;
        while budget > 0 {
            if self.parked {
                // Parked on a WaitChange line: issues nothing until the
                // machine delivers a line-change wake. Uncharged idle.
                stall = Stall::Parked;
                break;
            }
            if self.issue_blocked_until > now {
                stall = Stall::Barrier(StallCause::ResponseWindow, self.issue_block_kind);
                break;
            }
            if let Some(b) = &self.pending_barrier {
                if b.blocks_all() && b.resp_at.is_none_or(|t| t > now) {
                    stall = Stall::Barrier(self.classify_memory_block(now).0, b.kind);
                    break;
                }
            }
            // Finish a partially issued nop batch first.
            if self.nops_remaining > 0 {
                let pushed = self.rob.push_nops(self.nops_remaining.min(budget));
                if pushed == 0 {
                    // push_nops refuses only when the ROB is full.
                    stall = self.classify_rob_full();
                    break;
                }
                self.nops_remaining -= pushed;
                self.stats.issued += u64::from(pushed);
                budget -= pushed;
                continue;
            }
            if self.suspended_on.is_some() {
                stall = Stall::Suspended;
                break;
            }
            if self.halted {
                break;
            }
            // Fetch the next operation.
            let op = match self.pending_op.take() {
                Some(op) => op,
                None => match &mut self.thread {
                    Some(t) => t.next(&mut self.ctx),
                    None => break,
                },
            };
            match op {
                Op::Nops(n) => {
                    if n > 0 {
                        self.nops_remaining = n;
                    }
                }
                Op::IterationMark => {
                    // The mark stands in for the loop-closing branch: one
                    // issued instruction. Charging it also guarantees
                    // forward progress for mark-only threads.
                    if self.rob.push_nops(1) == 0 {
                        self.pending_op = Some(op);
                        stall = self.classify_rob_full();
                        break;
                    }
                    self.stats.iterations += 1;
                    self.ctx.iterations = self.stats.iterations;
                    // Response time of this iteration: the gap since the
                    // previous mark (or since cycle 0 for the first). Both
                    // engines issue the mark at the same cycle, so the
                    // histogram is engine-identical by the same argument as
                    // the iteration counter itself.
                    self.stats.latency.record(now - self.last_iteration_at);
                    self.last_iteration_at = now;
                    self.stats.issued += 1;
                    budget -= 1;
                    if trace.enabled {
                        trace.record(
                            now,
                            Event::Iteration {
                                core: self.id,
                                count: self.stats.iterations,
                            },
                        );
                    }
                }
                Op::Halt => {
                    self.halted = true;
                    self.stats.halted_at = Some(now);
                }
                Op::Load {
                    addr,
                    use_value,
                    acquire,
                    dep_on_last_load,
                } => {
                    // RCsc response-window wait: an LDAR may not perform
                    // while an earlier STLR is still draining. The RCpc
                    // LDAPR (and plain loads) skip this entirely — that is
                    // the whole performance case for the downgrade.
                    let rcsc_wait = acquire == Acquire::Sc && self.rcsc_release_wait();
                    if self.memory_blocked(now)
                        || rcsc_wait
                        || self.rob.is_full()
                        || self.outstanding_loads(now) as u32 >= pc.max_outstanding_loads
                    {
                        self.pending_op = Some(op);
                        stall = if self.memory_blocked(now) {
                            let (cause, kind) = self.classify_memory_block(now);
                            Stall::Barrier(cause, kind)
                        } else if rcsc_wait {
                            Stall::Barrier(
                                StallCause::DrainWait(self.worst_release_distance()),
                                Barrier::Ldar,
                            )
                        } else if self.rob.is_full() {
                            self.classify_rob_full()
                        } else {
                            // MSHR limit: a plain resource, no barrier.
                            Stall::Resource
                        };
                        break;
                    }
                    let start = if dep_on_last_load {
                        self.last_load.map_or(now, |(_, t)| t.max(now))
                    } else {
                        now
                    };
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let (done_at, distance, forwarded) = if let Some(v) = self.sb.forward(addr) {
                        (start + pc.t_l1_hit, DistanceClass::Local, Some(v))
                    } else {
                        let out = shared.directory.access(
                            topo,
                            lat,
                            self.id,
                            Line::containing(addr),
                            false,
                            now,
                        );
                        if out.is_rmr {
                            self.stats.load_rmrs += 1;
                        }
                        (start + out.latency, out.distance, None)
                    };
                    let slot = self.rob.push_instr(false).expect("checked free()");
                    let id = self.next_load_id;
                    self.next_load_id += 1;
                    self.loads.push(LoadInFlight {
                        id,
                        seq,
                        rob_slot: slot,
                        addr,
                        done_at,
                        distance,
                        forwarded,
                        wants_value: use_value,
                        acquire,
                        rmw: None,
                    });
                    self.last_load = Some((id, done_at));
                    self.stats.loads += 1;
                    self.stats.issued += 1;
                    budget -= 1;
                    if acquire.is_acquire() {
                        self.acquire_gate = Some(id);
                    }
                    if use_value {
                        self.suspended_on = Some(id);
                    }
                }
                Op::Store {
                    addr,
                    value,
                    release,
                    dep_on_last_load,
                } => {
                    if self.memory_blocked(now) || self.rob.is_full() || !self.sb.has_space() {
                        self.pending_op = Some(op);
                        stall = if self.memory_blocked(now) {
                            let (cause, kind) = self.classify_memory_block(now);
                            Stall::Barrier(cause, kind)
                        } else if self.rob.is_full() {
                            self.classify_rob_full()
                        } else if self.sb.blocking_gate(now).is_some() {
                            // Store buffer full and its head cannot drain
                            // past a closed DMB st gate: barrier-caused.
                            Stall::Barrier(StallCause::SbFull, Barrier::DmbSt)
                        } else {
                            Stall::Resource
                        };
                        break;
                    }
                    let data_ready_at = if dep_on_last_load {
                        self.last_load.map_or(now, |(_, t)| t.max(now))
                    } else {
                        now
                    };
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    // Stores retire as soon as they sit in the buffer.
                    let _slot = self.rob.push_instr(true).expect("checked free()");
                    self.sb.push(SbEntry {
                        seq,
                        addr,
                        line: Line::containing(addr),
                        value,
                        release,
                        data_ready_at,
                        state: SbState::Pending,
                        drain_distance: None,
                    });
                    self.stats.stores += 1;
                    self.stats.issued += 1;
                    budget -= 1;
                }
                Op::Rmw {
                    addr,
                    kind,
                    operand,
                    acquire,
                    release,
                } => {
                    let release_ready =
                        !release || (self.sb.is_empty() && self.loads_done_before(Seq::MAX, now));
                    if self.memory_blocked(now) || self.rob.is_full() || !release_ready {
                        self.pending_op = Some(op);
                        stall = if self.memory_blocked(now) {
                            let (cause, kind) = self.classify_memory_block(now);
                            Stall::Barrier(cause, kind)
                        } else if self.rob.is_full() {
                            self.classify_rob_full()
                        } else {
                            // Release semantics: waiting for our own prior
                            // accesses to drain/complete, like an STLR.
                            Stall::Barrier(
                                StallCause::DrainWait(self.worst_outstanding_distance(now)),
                                Barrier::Stlr,
                            )
                        };
                        break;
                    }
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let out = shared.directory.access(
                        topo,
                        lat,
                        self.id,
                        Line::containing(addr),
                        true,
                        now,
                    );
                    if out.is_rmr {
                        self.stats.store_rmrs += 1;
                    }
                    let slot = self.rob.push_instr(false).expect("checked free()");
                    let id = self.next_load_id;
                    self.next_load_id += 1;
                    self.loads.push(LoadInFlight {
                        id,
                        seq,
                        rob_slot: slot,
                        addr,
                        done_at: now + out.latency.max(pc.t_l1_hit),
                        distance: out.distance,
                        forwarded: None,
                        wants_value: true,
                        // Acquiring RMWs (LDADDA & co.) are RCsc.
                        acquire: if acquire { Acquire::Sc } else { Acquire::No },
                        rmw: Some(RmwInfo { kind, operand }),
                    });
                    if acquire {
                        self.acquire_gate = Some(id);
                    }
                    self.suspended_on = Some(id);
                    self.last_load = Some((id, now + out.latency));
                    self.stats.rmws += 1;
                    self.stats.issued += 1;
                    budget -= 1;
                }
                Op::WaitChange { addr, expect } => {
                    if shared.read(addr) == expect {
                        // Condition still holds against committed memory
                        // (deliberately ignoring own store-buffer forwarding:
                        // a WFE-style wait watches the coherent image). Park
                        // on the line's waiter list; the op stays pending and
                        // re-checks when a committed store wakes us, so a
                        // spurious wake simply re-parks.
                        shared
                            .directory
                            .park_waiter(Line::containing(addr), self.id);
                        self.pending_op = Some(op);
                        self.parked = true;
                        stall = Stall::Parked;
                        break;
                    }
                    // Value already moved on: observe it as a real load so
                    // the access pays coherence latency, takes the acquire-
                    // free suspension, and delivers the value to the thread.
                    self.pending_op = Some(Op::load_use(addr));
                    continue;
                }
                Op::Fence(Barrier::None) => {}
                Op::Fence(Barrier::DmbSt) => {
                    if self.rob.is_full() {
                        self.pending_op = Some(op);
                        stall = self.classify_rob_full();
                        break;
                    }
                    // Lives in the store buffer as a gate; retires at once.
                    // push_gate accounts for both buffered stores and
                    // still-pending older gates when deciding whether the
                    // gate may take the cheap idle response.
                    let _slot = self.rob.push_instr(true).expect("checked free()");
                    self.sb.push_gate(self.next_seq);
                    self.next_seq += 1;
                    self.stats.fences += 1;
                    self.stats.issued += 1;
                    budget -= 1;
                }
                Op::Fence(Barrier::Isb) => {
                    if self.rob.is_full() {
                        self.pending_op = Some(op);
                        stall = self.classify_rob_full();
                        break;
                    }
                    let _slot = self.rob.push_instr(true).expect("checked free()");
                    self.issue_blocked_until = now + pc.t_isb_flush;
                    self.issue_block_kind = Barrier::Isb;
                    self.stats.fences += 1;
                    self.stats.issued += 1;
                    budget -= 1;
                    stall = Stall::Barrier(StallCause::ResponseWindow, Barrier::Isb);
                    break;
                }
                Op::Fence(kind) => {
                    // DMB full/ld, DSB full/st/ld, CTRL+ISB.
                    if self.pending_barrier.is_some() || self.rob.is_full() {
                        self.pending_op = Some(op);
                        stall = if self.pending_barrier.is_some() {
                            // Serialized behind the earlier barrier; charge
                            // whatever that one is waiting on.
                            let (cause, k) = self.classify_memory_block(now);
                            Stall::Barrier(cause, k)
                        } else {
                            self.classify_rob_full()
                        };
                        break;
                    }
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let occupies = kind.occupies_rob_until_response()
                        || (matches!(kind, Barrier::DmbFull | Barrier::DmbLd)
                            && self.params_cache.dmb_holds_rob);
                    let slot = self.rob.push_instr(!occupies).expect("checked free()");
                    let waits_loads_now = self.loads.iter().any(|l| l.done_at > now);
                    let waits_stores_now = !self.sb.is_empty();
                    let mut b = PendingBarrier {
                        kind,
                        rob_slot: occupies.then_some(slot),
                        seq,
                        resp_at: None,
                        crossed_node: false,
                        had_priors: false,
                    };
                    b.had_priors = (b.waits_loads() && waits_loads_now)
                        || (b.waits_stores() && waits_stores_now);
                    // Seed scope from accesses already outstanding.
                    if b.waits_loads() {
                        for l in &self.loads {
                            if l.done_at > now && l.distance.crosses_node() {
                                b.crossed_node = true;
                            }
                        }
                    }
                    if b.waits_stores() {
                        for e in self.sb.entries() {
                            if e.drain_crossed_node() {
                                b.crossed_node = true;
                            }
                        }
                    }
                    self.pending_barrier = Some(b);
                    self.stats.fences += 1;
                    self.stats.issued += 1;
                    budget -= 1;
                }
            }
        }
        // The single charging point: a cycle counts as barrier-stalled only
        // if nothing at all issued, and it is charged to exactly one
        // (cause, kind). Observations can be sparse (the machine's run loop
        // jumps over dead cycles), so a continuing run charges the cycles
        // elapsed since it was last observed.
        if budget == pc.issue_width {
            if let Stall::Barrier(cause, kind) = stall {
                match self.stall_run {
                    Some(ref mut run) if run.cause == cause && run.kind == kind => {
                        let gap = now - run.charged_to;
                        run.charged_to = now;
                        self.stats.stall.charge(cause, kind, gap);
                    }
                    _ => {
                        self.end_stall_run(now, trace);
                        self.stall_run = Some(StallRun {
                            cause,
                            kind,
                            since: now,
                            charged_to: now,
                        });
                        self.stats.stall.charge(cause, kind, 1);
                        if trace.enabled {
                            trace.record(
                                now,
                                Event::StallBegin {
                                    core: self.id,
                                    cause: cause.label(),
                                    what: kind.mnemonic(),
                                },
                            );
                        }
                    }
                }
            } else {
                self.end_stall_run(now, trace);
            }
        } else {
            self.end_stall_run(now, trace);
        }
    }

    /// Close the open stall run, if any: charge the still-unaccounted tail
    /// up to the cycle *before* `now` (cycle `now` itself was observed to
    /// make progress or to stall for a different reason) and emit its trace
    /// slice. The tail charge makes the total charged to a run exactly
    /// `t_end - t_start` no matter how sparsely the run was observed, which
    /// is what lets the event-driven engine skip the intermediate cycles.
    fn end_stall_run(&mut self, now: Cycle, trace: &mut Trace) {
        if let Some(run) = self.stall_run.take() {
            let tail = now.saturating_sub(1).saturating_sub(run.charged_to);
            if tail > 0 {
                self.stats.stall.charge(run.cause, run.kind, tail);
            }
            if trace.enabled {
                trace.record(
                    now,
                    Event::StallEnd {
                        core: self.id,
                        cause: run.cause.label(),
                        what: run.kind.mnemonic(),
                        since: run.since,
                    },
                );
            }
        }
    }

    /// Charge any open stall run up to `last`, the final cycle this core
    /// was (or could have been) stalled in the run that just ended. Called
    /// by the machine when a run loop exits, so stall totals do not depend
    /// on how far past the stall the loop happened to observe the core.
    pub(crate) fn settle_stall_run(&mut self, last: Cycle) {
        if let Some(run) = &mut self.stall_run {
            let gap = last.saturating_sub(run.charged_to);
            if gap > 0 {
                self.stats.stall.charge(run.cause, run.kind, gap);
                run.charged_to = last;
            }
        }
    }

    /// Stamp the core's cycle count at run exit: a core that is still live
    /// (or halted with work in flight) at the run's last simulated cycle
    /// `last` was occupied through it, whether or not the engine happened
    /// to step it there.
    pub(crate) fn finalize_cycles(&mut self, last: Cycle) {
        if !(self.quiesced() && self.stats.halted_at.is_some()) {
            self.stats.cycles = self.stats.cycles.max(last + 1);
        }
    }

    /// Advance this core to (the end of) cycle `now`.
    pub fn step(
        &mut self,
        now: Cycle,
        topo: &Topology,
        lat: &LatencyParams,
        shared: &mut SharedState,
        trace: &mut Trace,
    ) {
        // Sample quiescence *before* the step: the step that performs the
        // quiesce transition still counts as an occupied cycle, and the
        // transition can only happen at a cycle where the core acts — so
        // both engines record the same final cycle count.
        let was_quiesced = self.quiesced();
        self.complete_phase(now, topo, lat, shared, trace);
        self.drain_phase(now, topo, lat, shared);
        self.retire_phase(now);
        self.issue_phase(now, topo, lat, shared, trace);
        // A second drain attempt lets stores issued this cycle begin
        // draining immediately (store latency starts at issue).
        self.drain_phase(now, topo, lat, shared);
        if !(was_quiesced && self.stats.halted_at.is_some()) {
            self.stats.cycles = now + 1;
        }
    }
}
