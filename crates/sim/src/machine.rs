//! The machine: cores + shared coherence state + the run loop.
//!
//! The run loop is cycle-accurate but event-accelerated: when no core can
//! make progress at the current cycle, time jumps straight to the earliest
//! pending event (load completion, drain landing, gate opening, barrier
//! response). Within a cycle, cores step in id order — that order is the
//! deterministic tie-break for same-cycle coherence races.

use crate::core_model::{Core, SharedState};
use crate::op::SimThread;
use crate::platform::Platform;
use crate::stats::CoreStats;
use crate::trace::Trace;
use crate::types::{Addr, CoreId, Cycle};

/// Aggregate result of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Whether every workload halted (and quiesced) before the cycle limit.
    pub halted: bool,
}

/// A simulated machine.
pub struct Machine {
    platform: Platform,
    cores: Vec<Core>,
    /// Ids of cores that have workloads attached, in attach order.
    active: Vec<CoreId>,
    shared: SharedState,
    now: Cycle,
    /// Machine-wide event trace (disabled unless
    /// [`Machine::enable_trace`] is called).
    trace: Trace,
}

impl Machine {
    /// A machine with all of the platform's cores, none running anything.
    #[must_use]
    pub fn new(platform: Platform) -> Machine {
        let cores = (0..platform.topology.core_count())
            .map(|id| Core::new(id, &platform.latency))
            .collect();
        Machine {
            platform,
            cores,
            active: Vec::new(),
            shared: SharedState::default(),
            now: 0,
            trace: Trace::default(),
        }
    }

    /// Switch on event tracing with a ring of `capacity` events; all cores
    /// record into one trace (the exporter keys tracks by core id).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
        self.trace.enabled = true;
    }

    /// The machine's event trace (empty unless enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take the trace out of the machine (leaves a disabled default).
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The platform this machine models.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Attach a workload to a specific core. Returns the core id.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range or already busy.
    pub fn add_thread_on(&mut self, core: CoreId, thread: Box<dyn SimThread>) -> CoreId {
        assert!(core < self.cores.len(), "core {core} out of range");
        assert!(
            !self.active.contains(&core),
            "core {core} already has a thread"
        );
        self.cores[core].attach(thread);
        self.active.push(core);
        core
    }

    /// Declare that untouched lines in `[start, end)` behave as if last
    /// written by `home` (see
    /// [`Directory::set_region_home`](crate::directory::Directory::set_region_home)).
    pub fn set_region_home(&mut self, start: Addr, end: Addr, home: CoreId) {
        self.shared.directory.set_region_home(start, end, home);
    }

    /// Pre-set a memory cell before the run.
    pub fn preset_memory(&mut self, addr: Addr, value: u64) {
        self.shared.write(addr, value);
    }

    /// Read the committed value of a cell (post-run assertions).
    #[must_use]
    pub fn read_memory(&self, addr: Addr) -> u64 {
        self.shared.read(addr)
    }

    /// Statistics of one core.
    #[must_use]
    pub fn core_stats(&self, core: CoreId) -> &CoreStats {
        self.cores[core].stats()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    fn step_all(&mut self) {
        let topo = &self.platform.topology;
        let lat = &self.platform.latency;
        for &id in &self.active {
            self.cores[id].step(self.now, topo, lat, &mut self.shared, &mut self.trace);
        }
    }

    fn all_quiesced(&self) -> bool {
        self.active.iter().all(|&id| self.cores[id].quiesced())
    }

    /// Run until every workload halts and quiesces, or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: Cycle) -> RunStats {
        self.run_while(max_cycles, |_| true)
    }

    /// Run until `core` has completed `iterations` marked iterations (or
    /// everything halts / the cycle limit is hit).
    pub fn run_until_iterations(
        &mut self,
        core: CoreId,
        iterations: u64,
        max_cycles: Cycle,
    ) -> RunStats {
        self.run_while(max_cycles, |m| {
            m.cores[core].stats().iterations < iterations
        })
    }

    fn run_while(&mut self, max_cycles: Cycle, keep_going: impl Fn(&Machine) -> bool) -> RunStats {
        let limit = self.now.saturating_add(max_cycles);
        while self.now < limit {
            self.step_all();
            if self.all_quiesced() {
                self.now += 1;
                return RunStats {
                    cycles: self.now,
                    halted: true,
                };
            }
            if !keep_going(self) {
                self.now += 1;
                return RunStats {
                    cycles: self.now,
                    halted: false,
                };
            }
            // Event acceleration: jump to the earliest possible activity.
            // `Core::next_wake` contractually returns `None` only for
            // quiesced cores (all handled above) and never a cycle <= now,
            // but both are clamped defensively here: a stale wake must
            // still advance time by a full cycle, and an empty candidate
            // set jumps straight to the limit so the loop exits in O(1)
            // steps instead of crawling one cycle at a time to the bound.
            let next = self
                .active
                .iter()
                .filter_map(|&id| self.cores[id].next_wake(self.now))
                .min()
                .map_or(limit, |t| t.max(self.now + 1));
            self.now = next;
        }
        RunStats {
            cycles: self.now,
            halted: self.all_quiesced(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, ThreadCtx};
    use armbar_barriers::Barrier;

    /// Runs a fixed script of ops, then halts.
    struct Script {
        ops: Vec<Op>,
        pos: usize,
        values: Vec<u64>,
    }

    impl Script {
        fn new(ops: Vec<Op>) -> Script {
            Script {
                ops,
                pos: 0,
                values: Vec::new(),
            }
        }
    }

    impl crate::op::SimThread for Script {
        fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
            if self.pos > 0 {
                if let Op::Load {
                    use_value: true, ..
                }
                | Op::Rmw { .. } = self.ops[self.pos - 1]
                {
                    self.values.push(ctx.last_value);
                }
            }
            let op = self.ops.get(self.pos).copied().unwrap_or(Op::Halt);
            self.pos += 1;
            op
        }
    }

    #[test]
    fn store_then_load_roundtrips_through_memory() {
        let mut m = Machine::new(Platform::raspberry_pi4());
        m.add_thread_on(
            0,
            Box::new(Script::new(vec![
                Op::store(0x100, 77),
                Op::Fence(Barrier::DmbFull),
                Op::load_use(0x100),
            ])),
        );
        let stats = m.run(100_000);
        assert!(stats.halted, "machine must quiesce");
        assert_eq!(m.read_memory(0x100), 77);
    }

    #[test]
    fn forwarding_returns_buffered_value_before_drain() {
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(
            0,
            Box::new(Script::new(vec![Op::store(0x200, 5), Op::load_use(0x200)])),
        );
        let stats = m.run(100_000);
        assert!(stats.halted);
        assert_eq!(m.read_memory(0x200), 5);
    }

    #[test]
    fn message_passing_with_barriers_is_correct() {
        // Producer stores data then flag with DMB st between; consumer spins
        // on the flag then reads data after DMB ld. Must observe data = 23.
        struct Producer {
            step: usize,
        }
        impl crate::op::SimThread for Producer {
            fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
                self.step += 1;
                match self.step {
                    1 => Op::store(0x1000, 23),
                    2 => Op::Fence(Barrier::DmbSt),
                    3 => Op::store(0x1040, 1),
                    _ => Op::Halt,
                }
            }
        }
        struct Consumer {
            phase: usize,
            observed: u64,
        }
        impl crate::op::SimThread for Consumer {
            fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Op::load_use(0x1040)
                    }
                    1 => {
                        if ctx.last_value == 0 {
                            Op::load_use(0x1040)
                        } else {
                            self.phase = 2;
                            Op::Fence(Barrier::DmbLd)
                        }
                    }
                    2 => {
                        self.phase = 3;
                        Op::load_use(0x1000)
                    }
                    _ => {
                        if self.phase == 3 {
                            self.observed = ctx.last_value;
                            self.phase = 4;
                        }
                        Op::Halt
                    }
                }
            }
        }
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Producer { step: 0 }));
        m.add_thread_on(
            40,
            Box::new(Consumer {
                phase: 0,
                observed: 999,
            }),
        );
        let stats = m.run(1_000_000);
        assert!(stats.halted, "both threads must finish");
        assert_eq!(m.read_memory(0x1000), 23);
        assert_eq!(m.read_memory(0x1040), 1);
    }

    #[test]
    fn fetch_add_serializes_across_cores() {
        struct Adder {
            n: u32,
        }
        impl crate::op::SimThread for Adder {
            fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
                if self.n == 0 {
                    return Op::Halt;
                }
                self.n -= 1;
                Op::fetch_add_acq_rel(0x3000, 1)
            }
        }
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Adder { n: 50 }));
        m.add_thread_on(4, Box::new(Adder { n: 50 }));
        m.add_thread_on(40, Box::new(Adder { n: 50 }));
        let stats = m.run(10_000_000);
        assert!(stats.halted);
        assert_eq!(m.read_memory(0x3000), 150, "no lost updates");
    }

    #[test]
    fn iteration_marks_count() {
        let ops = vec![
            Op::IterationMark,
            Op::Nops(10),
            Op::IterationMark,
            Op::Nops(10),
            Op::IterationMark,
        ];
        let mut m = Machine::new(Platform::kirin960());
        m.add_thread_on(0, Box::new(Script::new(ops)));
        m.run(100_000);
        assert_eq!(m.core_stats(0).iterations, 3);
    }

    #[test]
    fn run_until_iterations_stops_early() {
        struct Forever;
        impl crate::op::SimThread for Forever {
            fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
                Op::IterationMark
            }
        }
        let mut m = Machine::new(Platform::kirin960());
        m.add_thread_on(0, Box::new(Forever));
        let stats = m.run_until_iterations(0, 1000, 1_000_000);
        assert!(!stats.halted);
        assert!(m.core_stats(0).iterations >= 1000);
    }

    #[test]
    fn dsb_costs_more_than_dmb_than_nothing() {
        // Intrinsic cost (no memory ops): Observation 1 ordering.
        fn cycles_with(fence: Option<Barrier>) -> u64 {
            let mut ops = Vec::new();
            for _ in 0..200 {
                if let Some(f) = fence {
                    ops.push(Op::Fence(f));
                }
                ops.push(Op::Nops(10));
                ops.push(Op::IterationMark);
            }
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(0, Box::new(Script::new(ops)));
            let s = m.run(10_000_000);
            assert!(s.halted);
            m.core_stats(0).cycles
        }
        let none = cycles_with(None);
        let dmb = cycles_with(Some(Barrier::DmbFull));
        let isb = cycles_with(Some(Barrier::Isb));
        let dsb = cycles_with(Some(Barrier::DsbFull));
        assert!(none <= dmb, "no-barrier {none} <= dmb {dmb}");
        assert!(dmb < isb, "dmb {dmb} < isb {isb}");
        assert!(isb < dsb, "isb {isb} < dsb {dsb}");
    }

    #[test]
    fn quiesced_machine_exits_in_constant_steps() {
        // A machine with no workloads is fully quiesced; running it with an
        // astronomically large cycle budget must return immediately (the
        // loop may not crawl O(max_cycles) one cycle at a time). The test
        // itself is the proof: at one step per cycle, 2^60 cycles would
        // never finish.
        let mut m = Machine::new(Platform::kunpeng916());
        let stats = m.run(1 << 60);
        assert!(stats.halted);
        assert!(stats.cycles <= 1, "empty machine must quiesce at once");

        // Same once workloads have halted: a re-run with a huge budget
        // returns in O(1), advancing time by exactly the quiesce tick.
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Script::new(vec![Op::store(0x100, 1)])));
        let first = m.run(1 << 60);
        assert!(first.halted);
        let again = m.run(1 << 60);
        assert!(again.halted);
        assert_eq!(again.cycles, first.cycles + 1);
    }

    fn assert_stall_invariants(m: &Machine, core: CoreId) {
        let s = m.core_stats(core);
        assert_eq!(
            s.stall.cause_total(),
            s.stall.total,
            "per-cause stall cycles must sum exactly to the total"
        );
        assert_eq!(
            s.stall.kind_total(),
            s.stall.total,
            "per-kind stall cycles must sum exactly to the total"
        );
        assert!(
            s.stall.total <= s.cycles,
            "stall {} cannot exceed lifetime {}",
            s.stall.total,
            s.cycles
        );
        assert_eq!(s.barrier_stall_cycles(), s.stall.total);
    }

    #[test]
    fn stall_causes_sum_to_total_on_a_mixed_program() {
        let ops = vec![
            Op::store(0x100, 1),
            Op::Fence(Barrier::DmbFull),
            Op::load_use(0x100),
            Op::Fence(Barrier::DsbFull),
            Op::Nops(3),
            Op::store(0x140, 2),
            Op::Fence(Barrier::DmbSt),
            Op::store(0x180, 3),
            Op::Fence(Barrier::Isb),
            Op::fetch_add_acq_rel(0x1c0, 1),
            Op::load_acquire(0x100),
            Op::store(0x200, 4),
        ];
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Script::new(ops)));
        let stats = m.run(1_000_000);
        assert!(stats.halted);
        assert_stall_invariants(&m, 0);
        assert!(m.core_stats(0).stall.total > 0, "barriers must stall");
    }

    #[test]
    fn dsb_stalls_are_response_window_cycles() {
        let mut ops = Vec::new();
        for _ in 0..20 {
            ops.push(Op::Fence(Barrier::DsbFull));
            ops.push(Op::Nops(2));
        }
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Script::new(ops)));
        assert!(m.run(1_000_000).halted);
        assert_stall_invariants(&m, 0);
        let b = &m.core_stats(0).stall;
        assert!(b.response_window > 0, "DSB must charge its window");
        assert!(
            b.response_window >= b.total / 2,
            "the window dominates an access-free DSB loop: {b:?}"
        );
        assert!(b.kind_count(Barrier::DsbFull) > 0);
    }

    #[test]
    fn dmb_after_remote_store_charges_drain_or_memory_block() {
        // Producer on node 0 writes a line homed on node 1, so the DMB full
        // behind it waits on a cross-node drain, then its domain response.
        let ops = vec![
            Op::store(0x100, 1),
            Op::Fence(Barrier::DmbFull),
            Op::store(0x140, 2),
        ];
        let mut m = Machine::new(Platform::kunpeng916());
        m.set_region_home(0x100, 0x180, 32);
        m.add_thread_on(0, Box::new(Script::new(ops)));
        assert!(m.run(1_000_000).halted);
        assert_stall_invariants(&m, 0);
        let b = &m.core_stats(0).stall;
        let drain: u64 = b.drain_wait.iter().sum();
        assert!(
            drain + b.memory_block > 0,
            "DMB behind a store must wait on the drain and/or response: {b:?}"
        );
        assert_eq!(b.kind_count(Barrier::DmbFull), b.total, "only DMB charged");
    }

    #[test]
    fn back_to_back_dmb_st_gates_serialize() {
        // Regression for the gate-open loop: a second DMB st placed while
        // the first gate is still pending must not take the cheap idle
        // response nor open before the older gate.
        fn cycles(gates: usize) -> u64 {
            let mut ops = vec![Op::store(0x100, 1)];
            for _ in 0..gates {
                ops.push(Op::Fence(Barrier::DmbSt));
            }
            ops.push(Op::store(0x140, 2));
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(0, Box::new(Script::new(ops)));
            let s = m.run(1_000_000);
            assert!(s.halted);
            s.cycles
        }
        let one = cycles(1);
        let two = cycles(2);
        assert!(
            two > one,
            "second gate must serialize behind the first: {two} vs {one}"
        );
    }

    #[test]
    fn machine_trace_records_and_exports() {
        let ops = vec![
            Op::store(0x100, 9),
            Op::Fence(Barrier::DmbFull),
            Op::load_use(0x100),
            Op::IterationMark,
        ];
        let mut m = Machine::new(Platform::kunpeng916());
        m.enable_trace(1024);
        m.add_thread_on(0, Box::new(Script::new(ops)));
        assert!(m.run(1_000_000).halted);
        assert!(!m.trace().is_empty(), "enabled trace must record");
        let text = m.trace().render();
        assert!(text.contains("DMB full response"), "{text}");
        let json = m.take_trace().to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(m.trace().is_empty(), "take_trace leaves an empty default");
    }

    #[test]
    fn machine_and_platform_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Machine>();
        assert_send::<Platform>();
        assert_send::<RunStats>();
    }

    #[test]
    fn event_acceleration_preserves_results() {
        // A long DSB chain exercises the jump path; cycle counts must be
        // exactly reproducible.
        let mk = || {
            let ops = vec![
                Op::store(0x100, 1),
                Op::Fence(Barrier::DsbFull),
                Op::Nops(5),
                Op::store(0x140, 2),
                Op::Fence(Barrier::DsbFull),
                Op::load_use(0x100),
            ];
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(0, Box::new(Script::new(ops)));
            let s = m.run(1_000_000);
            assert!(s.halted);
            s.cycles
        };
        assert_eq!(mk(), mk(), "determinism");
    }
}
