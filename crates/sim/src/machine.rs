//! The machine: cores + shared coherence state + the run loops.
//!
//! Two scheduling engines drive the same cores:
//!
//! * [`Engine::EventDriven`] (the default) keeps a lazy-deletion min-heap of
//!   `(wake cycle, core id)` events fed by each core's
//!   [`Core::next_wake`] contract, and steps **only** the cores whose wake
//!   cycle arrived. Cores parked on a [`WaitChange`](crate::op::Op::WaitChange)
//!   line report no wake at all and are woken through the directory's
//!   per-line waiter lists when another core commits a store to the line —
//!   so a thousand parked spinners cost nothing per simulated cycle.
//! * [`Engine::LockstepOracle`] is the original loop: every active core is
//!   stepped at every observed cycle, with time jumping over dead cycles.
//!   It survives as the differential oracle the event engine is validated
//!   against ([`Machine::run_lockstep_oracle`]).
//!
//! Both engines are cycle-accurate and byte-deterministic: within a cycle,
//! cores step in id order — that order is the deterministic tie-break for
//! same-cycle coherence races (the heap yields equal-cycle events in
//! ascending core id). The soundness argument for why the two engines are
//! equivalent lives in `DESIGN.md` §10.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::core_model::{Core, SharedState};
use crate::directory::Directory;
use crate::op::SimThread;
use crate::platform::Platform;
use crate::stats::CoreStats;
use crate::trace::Trace;
use crate::types::{Addr, CoreId, Cycle};

/// Aggregate result of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Whether every workload halted (and quiesced) before the cycle limit.
    pub halted: bool,
}

/// Which scheduling engine drives the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Step only cores whose wake event arrived (the default).
    EventDriven,
    /// Step every active core at every observed cycle (the reference
    /// implementation the event engine is differentially tested against).
    LockstepOracle,
}

/// Sentinel for "no event scheduled" in the lazy-deletion bookkeeping.
const NEVER: Cycle = Cycle::MAX;

/// A simulated machine.
pub struct Machine {
    platform: Platform,
    cores: Vec<Core>,
    /// Ids of cores that have workloads attached, in attach order.
    active: Vec<CoreId>,
    shared: SharedState,
    now: Cycle,
    /// Machine-wide event trace (disabled unless
    /// [`Machine::enable_trace`] is called).
    trace: Trace,
    engine: Engine,
    /// Pending wake events, min-ordered by `(cycle, core id)`. Lazy
    /// deletion: an entry is live iff it matches `scheduled[core]`.
    heap: BinaryHeap<Reverse<(Cycle, CoreId)>>,
    /// The single live wake cycle per core (`NEVER` = none). Superseded
    /// heap entries are dropped when popped.
    scheduled: Vec<Cycle>,
    /// Total `Core::step` invocations across all runs — the engine-quality
    /// metric (cycles simulated per core actually stepped) benchmarks gate.
    steps_executed: u64,
}

impl Machine {
    /// A machine with all of the platform's cores, none running anything.
    ///
    /// The coherence directory is sharded per NUMA node: a pure partition
    /// of the line space, invisible to behaviour but sized for many-core
    /// topologies.
    #[must_use]
    pub fn new(platform: Platform) -> Machine {
        let core_count = platform.topology.core_count();
        let cores = (0..core_count)
            .map(|id| Core::new(id, &platform.latency))
            .collect();
        let shards = platform.topology.node_count();
        Machine {
            platform,
            cores,
            active: Vec::new(),
            shared: SharedState {
                directory: Directory::with_shards(shards),
                ..SharedState::default()
            },
            now: 0,
            trace: Trace::default(),
            engine: Engine::EventDriven,
            heap: BinaryHeap::new(),
            scheduled: vec![NEVER; core_count],
            steps_executed: 0,
        }
    }

    /// Select the scheduling engine for subsequent runs.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected scheduling engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Total number of `Core::step` invocations so far (all runs).
    #[must_use]
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Switch on event tracing with a ring of `capacity` events; all cores
    /// record into one trace (the exporter keys tracks by core id, and
    /// tracks are allocated lazily — only cores that actually record
    /// appear).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
        self.trace.enabled = true;
    }

    /// Restrict the trace to `cores` (see [`Trace::set_core_filter`]);
    /// `None` records every core. On a many-core machine the filter is what
    /// keeps traces small: un-filtered, a thousand cores share one ring.
    pub fn set_trace_core_filter(&mut self, cores: Option<Vec<CoreId>>) {
        self.trace.set_core_filter(cores);
    }

    /// The machine's event trace (empty unless enabled).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take the trace out of the machine (leaves a disabled default).
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The platform this machine models.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Attach a workload to a specific core. Returns the core id.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range or already busy.
    pub fn add_thread_on(&mut self, core: CoreId, thread: Box<dyn SimThread>) -> CoreId {
        assert!(core < self.cores.len(), "core {core} out of range");
        assert!(
            !self.active.contains(&core),
            "core {core} already has a thread"
        );
        self.cores[core].attach(thread);
        self.active.push(core);
        core
    }

    /// Declare that untouched lines in `[start, end)` behave as if last
    /// written by `home` (see
    /// [`Directory::set_region_home`](crate::directory::Directory::set_region_home)).
    pub fn set_region_home(&mut self, start: Addr, end: Addr, home: CoreId) {
        self.shared.directory.set_region_home(start, end, home);
    }

    /// Pre-set a memory cell before the run.
    pub fn preset_memory(&mut self, addr: Addr, value: u64) {
        self.shared.write(addr, value);
    }

    /// Read the committed value of a cell (post-run assertions).
    #[must_use]
    pub fn read_memory(&self, addr: Addr) -> u64 {
        self.shared.read(addr)
    }

    /// Statistics of one core.
    #[must_use]
    pub fn core_stats(&self, core: CoreId) -> &CoreStats {
        self.cores[core].stats()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    fn step_all(&mut self) {
        let topo = &self.platform.topology;
        let lat = &self.platform.latency;
        for &id in &self.active {
            self.cores[id].step(self.now, topo, lat, &mut self.shared, &mut self.trace);
        }
        self.steps_executed += self.active.len() as u64;
    }

    fn all_quiesced(&self) -> bool {
        self.active.iter().all(|&id| self.cores[id].quiesced())
    }

    /// Unpark every core whose watched line received a committed store this
    /// cycle and (in the event engine) schedule it one cycle later. The
    /// uniform wake-at-`t + 1` rule keeps both engines identical no matter
    /// how writer and waiter ids are ordered within the cycle.
    fn drain_wakes(&mut self, now: Cycle, reschedule: bool) {
        if self.shared.pending_wakes.is_empty() {
            return;
        }
        let mut wakes = std::mem::take(&mut self.shared.pending_wakes);
        for &c in &wakes {
            self.cores[c].unpark();
            if reschedule {
                self.schedule(c, now + 1);
            }
        }
        wakes.clear();
        self.shared.pending_wakes = wakes;
    }

    /// Register (or tighten) core `c`'s wake event. Later-than-scheduled
    /// requests are ignored — the earlier step re-computes its wake anyway —
    /// so each core has exactly one live heap entry and superseded ones are
    /// dropped lazily when popped.
    fn schedule(&mut self, c: CoreId, at: Cycle) {
        if at < self.scheduled[c] {
            self.scheduled[c] = at;
            self.heap.push(Reverse((at, c)));
        }
    }

    /// The oracle's time jump: advance to the earliest wake, clamped so a
    /// stale wake (`<= now`) still moves time forward by a full cycle, and
    /// an empty candidate set jumps straight to the limit so the loop exits
    /// in O(1) steps instead of crawling one cycle at a time to the bound.
    fn resolve_jump(min_wake: Option<Cycle>, now: Cycle, limit: Cycle) -> Cycle {
        min_wake.map_or(limit, |t| t.max(now + 1))
    }

    /// Settle sparse observations at run exit: charge open stall runs up to
    /// `last` (the final simulated cycle any core stepped in) and stamp
    /// per-core cycle counts, so totals do not depend on which cycles the
    /// engine happened to observe. Harmless no-ops for cores observed at
    /// every cycle.
    fn finalize(&mut self, last: Option<Cycle>) {
        let Some(last) = last else { return };
        for i in 0..self.active.len() {
            let id = self.active[i];
            self.cores[id].settle_stall_run(last);
            self.cores[id].finalize_cycles(last);
        }
    }

    /// Run until every workload halts and quiesces, or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: Cycle) -> RunStats {
        self.run_while(max_cycles, |_| true)
    }

    /// Run until `core` has completed `iterations` marked iterations (or
    /// everything halts / the cycle limit is hit).
    pub fn run_until_iterations(
        &mut self,
        core: CoreId,
        iterations: u64,
        max_cycles: Cycle,
    ) -> RunStats {
        self.run_while(max_cycles, |m| {
            m.cores[core].stats().iterations < iterations
        })
    }

    /// Run under the lockstep oracle regardless of the selected engine
    /// (restores the selection afterwards). Differential harnesses use this
    /// to validate the event engine against the reference loop on the same
    /// machine type without re-plumbing engine selection everywhere.
    pub fn run_lockstep_oracle(&mut self, max_cycles: Cycle) -> RunStats {
        let prev = self.engine;
        self.engine = Engine::LockstepOracle;
        let out = self.run(max_cycles);
        self.engine = prev;
        out
    }

    fn run_while(&mut self, max_cycles: Cycle, keep_going: impl Fn(&Machine) -> bool) -> RunStats {
        match self.engine {
            Engine::EventDriven => self.run_event(max_cycles, keep_going),
            Engine::LockstepOracle => self.run_lockstep(max_cycles, keep_going),
        }
    }

    /// The reference loop: step every active core at every observed cycle,
    /// jumping over cycles where no core has anything to do.
    fn run_lockstep(
        &mut self,
        max_cycles: Cycle,
        keep_going: impl Fn(&Machine) -> bool,
    ) -> RunStats {
        let limit = self.now.saturating_add(max_cycles);
        let mut last: Option<Cycle> = None;
        while self.now < limit {
            let t = self.now;
            self.step_all();
            last = Some(t);
            self.drain_wakes(t, false);
            if self.all_quiesced() {
                self.now += 1;
                self.finalize(last);
                return RunStats {
                    cycles: self.now,
                    halted: true,
                };
            }
            if !keep_going(self) {
                self.now += 1;
                self.finalize(last);
                return RunStats {
                    cycles: self.now,
                    halted: false,
                };
            }
            let next = self
                .active
                .iter()
                .filter_map(|&id| self.cores[id].next_wake(self.now))
                .min();
            self.now = Self::resolve_jump(next, self.now, limit);
        }
        self.finalize(last);
        RunStats {
            cycles: self.now,
            halted: self.all_quiesced(),
        }
    }

    /// The event-driven loop: pop the earliest wake events and step exactly
    /// those cores. Relies on the [`Core::next_wake`] contract — between a
    /// core's own wake events its state cannot change (stepping it would be
    /// a no-op), and the only cross-core influence on a core with no wake
    /// (parked on a line) arrives through the directory waiter lists.
    fn run_event(&mut self, max_cycles: Cycle, keep_going: impl Fn(&Machine) -> bool) -> RunStats {
        let limit = self.now.saturating_add(max_cycles);
        if self.active.is_empty() {
            // Mirror the oracle: an empty machine quiesces in one tick.
            if self.now < limit {
                self.now += 1;
            }
            return RunStats {
                cycles: self.now,
                halted: true,
            };
        }
        // Seed: every active core is observed at the entry cycle, exactly
        // like the oracle's first `step_all` (stale heap entries from an
        // earlier run are superseded and dropped lazily).
        for i in 0..self.active.len() {
            let id = self.active[i];
            self.schedule(id, self.now);
        }
        let mut quiesced = self
            .active
            .iter()
            .filter(|&&id| self.cores[id].quiesced())
            .count();
        let mut last: Option<Cycle> = None;
        let mut batch: Vec<CoreId> = Vec::new();
        while self.now < limit {
            // Earliest live event, discarding superseded entries. A stale
            // wake in the past must never rewind time: re-aim it at the
            // current cycle instead (defensive — `schedule` clamps at the
            // call sites, but the invariant is cheap to enforce here).
            let t = loop {
                match self.heap.peek() {
                    None => break None,
                    Some(&Reverse((at, c))) => {
                        if self.scheduled[c] != at {
                            self.heap.pop();
                        } else if at < self.now {
                            self.heap.pop();
                            self.scheduled[c] = NEVER;
                            self.schedule(c, self.now);
                        } else {
                            break Some(at);
                        }
                    }
                }
            };
            let Some(t) = t else {
                // No core will ever self-wake again (all quiesced or parked
                // with nobody to wake them): jump straight to the bound,
                // mirroring the oracle's empty-candidate jump.
                self.now = limit;
                break;
            };
            if t >= limit {
                // The next event sits at/past the bound. Advance to it and
                // exit — the oracle's jump exposes the same overshoot.
                self.now = t;
                break;
            }
            self.now = t;
            last = Some(t);
            // Collect every core woken at `t`; the heap yields equal-cycle
            // entries in ascending core id — the deterministic tie-break.
            batch.clear();
            while let Some(&Reverse((at, c))) = self.heap.peek() {
                if at != t {
                    break;
                }
                self.heap.pop();
                if self.scheduled[c] == t {
                    self.scheduled[c] = NEVER;
                    batch.push(c);
                }
            }
            for &id in &batch {
                let was_quiesced = self.cores[id].quiesced();
                self.cores[id].step(
                    t,
                    &self.platform.topology,
                    &self.platform.latency,
                    &mut self.shared,
                    &mut self.trace,
                );
                self.steps_executed += 1;
                match (was_quiesced, self.cores[id].quiesced()) {
                    (false, true) => quiesced += 1,
                    (true, false) => quiesced -= 1,
                    _ => {}
                }
                if let Some(w) = self.cores[id].next_wake(t) {
                    self.schedule(id, w.max(t + 1));
                }
            }
            // Stores committed this cycle wake their line's parked waiters
            // one cycle later.
            self.drain_wakes(t, true);
            if quiesced == self.active.len() {
                self.now = t + 1;
                self.finalize(last);
                return RunStats {
                    cycles: self.now,
                    halted: true,
                };
            }
            if !keep_going(self) {
                self.now = t + 1;
                self.finalize(last);
                return RunStats {
                    cycles: self.now,
                    halted: false,
                };
            }
        }
        self.finalize(last);
        RunStats {
            cycles: self.now,
            halted: self.all_quiesced(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, ThreadCtx};
    use armbar_barriers::Barrier;

    /// Runs a fixed script of ops, then halts.
    struct Script {
        ops: Vec<Op>,
        pos: usize,
        values: Vec<u64>,
    }

    impl Script {
        fn new(ops: Vec<Op>) -> Script {
            Script {
                ops,
                pos: 0,
                values: Vec::new(),
            }
        }
    }

    impl crate::op::SimThread for Script {
        fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
            if self.pos > 0 {
                if let Op::Load {
                    use_value: true, ..
                }
                | Op::Rmw { .. } = self.ops[self.pos - 1]
                {
                    self.values.push(ctx.last_value);
                }
            }
            let op = self.ops.get(self.pos).copied().unwrap_or(Op::Halt);
            self.pos += 1;
            op
        }
    }

    #[test]
    fn store_then_load_roundtrips_through_memory() {
        let mut m = Machine::new(Platform::raspberry_pi4());
        m.add_thread_on(
            0,
            Box::new(Script::new(vec![
                Op::store(0x100, 77),
                Op::Fence(Barrier::DmbFull),
                Op::load_use(0x100),
            ])),
        );
        let stats = m.run(100_000);
        assert!(stats.halted, "machine must quiesce");
        assert_eq!(m.read_memory(0x100), 77);
    }

    #[test]
    fn forwarding_returns_buffered_value_before_drain() {
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(
            0,
            Box::new(Script::new(vec![Op::store(0x200, 5), Op::load_use(0x200)])),
        );
        let stats = m.run(100_000);
        assert!(stats.halted);
        assert_eq!(m.read_memory(0x200), 5);
    }

    #[test]
    fn message_passing_with_barriers_is_correct() {
        // Producer stores data then flag with DMB st between; consumer spins
        // on the flag then reads data after DMB ld. Must observe data = 23.
        struct Producer {
            step: usize,
        }
        impl crate::op::SimThread for Producer {
            fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
                self.step += 1;
                match self.step {
                    1 => Op::store(0x1000, 23),
                    2 => Op::Fence(Barrier::DmbSt),
                    3 => Op::store(0x1040, 1),
                    _ => Op::Halt,
                }
            }
        }
        struct Consumer {
            phase: usize,
            observed: u64,
        }
        impl crate::op::SimThread for Consumer {
            fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Op::load_use(0x1040)
                    }
                    1 => {
                        if ctx.last_value == 0 {
                            Op::load_use(0x1040)
                        } else {
                            self.phase = 2;
                            Op::Fence(Barrier::DmbLd)
                        }
                    }
                    2 => {
                        self.phase = 3;
                        Op::load_use(0x1000)
                    }
                    _ => {
                        if self.phase == 3 {
                            self.observed = ctx.last_value;
                            self.phase = 4;
                        }
                        Op::Halt
                    }
                }
            }
        }
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Producer { step: 0 }));
        m.add_thread_on(
            40,
            Box::new(Consumer {
                phase: 0,
                observed: 999,
            }),
        );
        let stats = m.run(1_000_000);
        assert!(stats.halted, "both threads must finish");
        assert_eq!(m.read_memory(0x1000), 23);
        assert_eq!(m.read_memory(0x1040), 1);
    }

    #[test]
    fn fetch_add_serializes_across_cores() {
        struct Adder {
            n: u32,
        }
        impl crate::op::SimThread for Adder {
            fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
                if self.n == 0 {
                    return Op::Halt;
                }
                self.n -= 1;
                Op::fetch_add_acq_rel(0x3000, 1)
            }
        }
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Adder { n: 50 }));
        m.add_thread_on(4, Box::new(Adder { n: 50 }));
        m.add_thread_on(40, Box::new(Adder { n: 50 }));
        let stats = m.run(10_000_000);
        assert!(stats.halted);
        assert_eq!(m.read_memory(0x3000), 150, "no lost updates");
    }

    #[test]
    fn iteration_marks_count() {
        let ops = vec![
            Op::IterationMark,
            Op::Nops(10),
            Op::IterationMark,
            Op::Nops(10),
            Op::IterationMark,
        ];
        let mut m = Machine::new(Platform::kirin960());
        m.add_thread_on(0, Box::new(Script::new(ops)));
        m.run(100_000);
        assert_eq!(m.core_stats(0).iterations, 3);
    }

    #[test]
    fn run_until_iterations_stops_early() {
        struct Forever;
        impl crate::op::SimThread for Forever {
            fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
                Op::IterationMark
            }
        }
        let mut m = Machine::new(Platform::kirin960());
        m.add_thread_on(0, Box::new(Forever));
        let stats = m.run_until_iterations(0, 1000, 1_000_000);
        assert!(!stats.halted);
        assert!(m.core_stats(0).iterations >= 1000);
    }

    #[test]
    fn dsb_costs_more_than_dmb_than_nothing() {
        // Intrinsic cost (no memory ops): Observation 1 ordering.
        fn cycles_with(fence: Option<Barrier>) -> u64 {
            let mut ops = Vec::new();
            for _ in 0..200 {
                if let Some(f) = fence {
                    ops.push(Op::Fence(f));
                }
                ops.push(Op::Nops(10));
                ops.push(Op::IterationMark);
            }
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(0, Box::new(Script::new(ops)));
            let s = m.run(10_000_000);
            assert!(s.halted);
            m.core_stats(0).cycles
        }
        let none = cycles_with(None);
        let dmb = cycles_with(Some(Barrier::DmbFull));
        let isb = cycles_with(Some(Barrier::Isb));
        let dsb = cycles_with(Some(Barrier::DsbFull));
        assert!(none <= dmb, "no-barrier {none} <= dmb {dmb}");
        assert!(dmb < isb, "dmb {dmb} < isb {isb}");
        assert!(isb < dsb, "isb {isb} < dsb {dsb}");
    }

    #[test]
    fn quiesced_machine_exits_in_constant_steps() {
        // A machine with no workloads is fully quiesced; running it with an
        // astronomically large cycle budget must return immediately (the
        // loop may not crawl O(max_cycles) one cycle at a time). The test
        // itself is the proof: at one step per cycle, 2^60 cycles would
        // never finish.
        let mut m = Machine::new(Platform::kunpeng916());
        let stats = m.run(1 << 60);
        assert!(stats.halted);
        assert!(stats.cycles <= 1, "empty machine must quiesce at once");

        // Same once workloads have halted: a re-run with a huge budget
        // returns in O(1), advancing time by exactly the quiesce tick.
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Script::new(vec![Op::store(0x100, 1)])));
        let first = m.run(1 << 60);
        assert!(first.halted);
        let again = m.run(1 << 60);
        assert!(again.halted);
        assert_eq!(again.cycles, first.cycles + 1);
    }

    fn assert_stall_invariants(m: &Machine, core: CoreId) {
        let s = m.core_stats(core);
        assert_eq!(
            s.stall.cause_total(),
            s.stall.total,
            "per-cause stall cycles must sum exactly to the total"
        );
        assert_eq!(
            s.stall.kind_total(),
            s.stall.total,
            "per-kind stall cycles must sum exactly to the total"
        );
        assert!(
            s.stall.total <= s.cycles,
            "stall {} cannot exceed lifetime {}",
            s.stall.total,
            s.cycles
        );
        assert_eq!(s.barrier_stall_cycles(), s.stall.total);
    }

    #[test]
    fn stall_causes_sum_to_total_on_a_mixed_program() {
        let ops = vec![
            Op::store(0x100, 1),
            Op::Fence(Barrier::DmbFull),
            Op::load_use(0x100),
            Op::Fence(Barrier::DsbFull),
            Op::Nops(3),
            Op::store(0x140, 2),
            Op::Fence(Barrier::DmbSt),
            Op::store(0x180, 3),
            Op::Fence(Barrier::Isb),
            Op::fetch_add_acq_rel(0x1c0, 1),
            Op::load_acquire(0x100),
            Op::store(0x200, 4),
        ];
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Script::new(ops)));
        let stats = m.run(1_000_000);
        assert!(stats.halted);
        assert_stall_invariants(&m, 0);
        assert!(m.core_stats(0).stall.total > 0, "barriers must stall");
    }

    #[test]
    fn dsb_stalls_are_response_window_cycles() {
        let mut ops = Vec::new();
        for _ in 0..20 {
            ops.push(Op::Fence(Barrier::DsbFull));
            ops.push(Op::Nops(2));
        }
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(0, Box::new(Script::new(ops)));
        assert!(m.run(1_000_000).halted);
        assert_stall_invariants(&m, 0);
        let b = &m.core_stats(0).stall;
        assert!(b.response_window > 0, "DSB must charge its window");
        assert!(
            b.response_window >= b.total / 2,
            "the window dominates an access-free DSB loop: {b:?}"
        );
        assert!(b.kind_count(Barrier::DsbFull) > 0);
    }

    #[test]
    fn dmb_after_remote_store_charges_drain_or_memory_block() {
        // Producer on node 0 writes a line homed on node 1, so the DMB full
        // behind it waits on a cross-node drain, then its domain response.
        let ops = vec![
            Op::store(0x100, 1),
            Op::Fence(Barrier::DmbFull),
            Op::store(0x140, 2),
        ];
        let mut m = Machine::new(Platform::kunpeng916());
        m.set_region_home(0x100, 0x180, 32);
        m.add_thread_on(0, Box::new(Script::new(ops)));
        assert!(m.run(1_000_000).halted);
        assert_stall_invariants(&m, 0);
        let b = &m.core_stats(0).stall;
        let drain: u64 = b.drain_wait.iter().sum();
        assert!(
            drain + b.memory_block > 0,
            "DMB behind a store must wait on the drain and/or response: {b:?}"
        );
        assert_eq!(b.kind_count(Barrier::DmbFull), b.total, "only DMB charged");
    }

    #[test]
    fn back_to_back_dmb_st_gates_serialize() {
        // Regression for the gate-open loop: a second DMB st placed while
        // the first gate is still pending must not take the cheap idle
        // response nor open before the older gate.
        fn cycles(gates: usize) -> u64 {
            let mut ops = vec![Op::store(0x100, 1)];
            for _ in 0..gates {
                ops.push(Op::Fence(Barrier::DmbSt));
            }
            ops.push(Op::store(0x140, 2));
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(0, Box::new(Script::new(ops)));
            let s = m.run(1_000_000);
            assert!(s.halted);
            s.cycles
        }
        let one = cycles(1);
        let two = cycles(2);
        assert!(
            two > one,
            "second gate must serialize behind the first: {two} vs {one}"
        );
    }

    #[test]
    fn machine_trace_records_and_exports() {
        let ops = vec![
            Op::store(0x100, 9),
            Op::Fence(Barrier::DmbFull),
            Op::load_use(0x100),
            Op::IterationMark,
        ];
        let mut m = Machine::new(Platform::kunpeng916());
        m.enable_trace(1024);
        m.add_thread_on(0, Box::new(Script::new(ops)));
        assert!(m.run(1_000_000).halted);
        assert!(!m.trace().is_empty(), "enabled trace must record");
        let text = m.trace().render();
        assert!(text.contains("DMB full response"), "{text}");
        let json = m.take_trace().to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(m.trace().is_empty(), "take_trace leaves an empty default");
    }

    #[test]
    fn machine_and_platform_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Machine>();
        assert_send::<Platform>();
        assert_send::<RunStats>();
    }

    /// Same program, both engines: the full per-core statistics (stalls,
    /// cycle counts, issue counts), final memory and run outcome must match
    /// exactly. The grid-scale differential harness lives in the
    /// experiments crate; this is the in-crate smoke version.
    fn assert_engines_agree(mk: impl Fn() -> Machine, addrs: &[Addr]) {
        let mut ev = mk();
        ev.set_engine(Engine::EventDriven);
        let ev_stats = ev.run(10_000_000);
        let mut or = mk();
        or.set_engine(Engine::LockstepOracle);
        let or_stats = or.run(10_000_000);
        assert_eq!(ev_stats, or_stats, "run outcome must match");
        for id in 0..ev.platform().topology.core_count() {
            assert_eq!(
                ev.core_stats(id),
                or.core_stats(id),
                "core {id} stats must match"
            );
        }
        for &a in addrs {
            assert_eq!(ev.read_memory(a), or.read_memory(a), "memory at {a:#x}");
        }
        assert!(
            ev.steps_executed() <= or.steps_executed(),
            "event engine must never step more than the oracle: {} vs {}",
            ev.steps_executed(),
            or.steps_executed()
        );
    }

    #[test]
    fn engines_agree_on_a_mixed_barrier_program() {
        let mk = || {
            let ops = vec![
                Op::store(0x100, 1),
                Op::Fence(Barrier::DmbFull),
                Op::load_use(0x100),
                Op::Fence(Barrier::DsbFull),
                Op::Nops(3),
                Op::store(0x140, 2),
                Op::Fence(Barrier::DmbSt),
                Op::store(0x180, 3),
                Op::Fence(Barrier::Isb),
                Op::fetch_add_acq_rel(0x1c0, 1),
                Op::load_acquire(0x100),
                Op::store(0x200, 4),
            ];
            let mut m = Machine::new(Platform::kunpeng916());
            m.set_region_home(0x100, 0x240, 32);
            m.add_thread_on(0, Box::new(Script::new(ops)));
            m
        };
        assert_engines_agree(mk, &[0x100, 0x140, 0x180, 0x1c0, 0x200]);
    }

    #[test]
    fn engines_agree_on_contended_rmws() {
        struct Adder {
            n: u32,
        }
        impl crate::op::SimThread for Adder {
            fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
                if self.n == 0 {
                    return Op::Halt;
                }
                self.n -= 1;
                Op::fetch_add_acq_rel(0x3000, 1)
            }
        }
        let mk = || {
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(0, Box::new(Adder { n: 20 }));
            m.add_thread_on(4, Box::new(Adder { n: 20 }));
            m.add_thread_on(40, Box::new(Adder { n: 20 }));
            m
        };
        assert_engines_agree(mk, &[0x3000]);
    }

    /// A one-shot waiter/committer pair for the parking tests: the waiter
    /// parks on `0x5000 != expect`, then publishes what it observed.
    struct Waiter {
        expect: u64,
        phase: usize,
    }
    impl crate::op::SimThread for Waiter {
        fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
            self.phase += 1;
            match self.phase {
                1 => Op::wait_change(0x5000, self.expect),
                2 => Op::store(0x5100, ctx.last_value()),
                _ => Op::Halt,
            }
        }
    }

    #[test]
    fn wait_change_parks_until_the_line_changes() {
        let mk = || {
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(
                1,
                Box::new(Waiter {
                    expect: 0,
                    phase: 0,
                }),
            );
            // Writer dawdles, then redundantly re-commits the expected value
            // (a spurious wake: the waiter must re-park), then publishes.
            m.add_thread_on(
                40,
                Box::new(Script::new(vec![
                    Op::Nops(400),
                    Op::store(0x5000, 0),
                    Op::Fence(Barrier::DsbFull),
                    Op::store(0x5000, 9),
                ])),
            );
            m
        };
        let mut m = mk();
        let stats = m.run(10_000_000);
        assert!(stats.halted, "waiter must wake and halt");
        assert_eq!(m.read_memory(0x5100), 9, "waiter observes the new value");
        // Parked time is idle, not a barrier stall.
        assert_eq!(m.core_stats(1).stall.total, 0, "{:?}", m.core_stats(1));
        assert_engines_agree(mk, &[0x5000, 0x5100]);
    }

    #[test]
    fn wait_change_on_an_already_changed_value_is_a_plain_load() {
        let mk = || {
            let mut m = Machine::new(Platform::kunpeng916());
            m.preset_memory(0x5000, 7);
            m.add_thread_on(
                1,
                Box::new(Waiter {
                    expect: 0,
                    phase: 0,
                }),
            );
            m
        };
        let mut m = mk();
        assert!(m.run(1_000_000).halted);
        assert_eq!(m.read_memory(0x5100), 7);
        assert_engines_agree(mk, &[0x5000, 0x5100]);
    }

    #[test]
    fn parked_machine_with_no_writer_exits_in_constant_steps() {
        // A waiter nobody ever wakes: both engines must reach the (huge)
        // cycle bound without crawling — the run returning at all is the
        // proof, as in `quiesced_machine_exits_in_constant_steps`.
        for engine in [Engine::EventDriven, Engine::LockstepOracle] {
            let mut m = Machine::new(Platform::kunpeng916());
            m.set_engine(engine);
            m.add_thread_on(
                0,
                Box::new(Waiter {
                    expect: 0,
                    phase: 0,
                }),
            );
            let stats = m.run(1 << 50);
            assert!(!stats.halted, "{engine:?}: a parked core is not quiesced");
            assert_eq!(stats.cycles, 1 << 50, "{engine:?}: ran to the bound");
        }
    }

    #[test]
    fn stale_wakes_never_stall_or_rewind_the_machine() {
        // The oracle's clamp, pinned: a wake at/before `now` still advances
        // time by a full cycle, and no wake at all jumps to the limit.
        assert_eq!(Machine::resolve_jump(Some(3), 10, 1000), 11);
        assert_eq!(Machine::resolve_jump(Some(10), 10, 1000), 11);
        assert_eq!(Machine::resolve_jump(Some(42), 10, 1000), 42);
        assert_eq!(Machine::resolve_jump(None, 10, 1000), 1000);

        // The event engine's equivalent: heap entries pointing into the
        // past (here injected directly; in the wild a defect in a core's
        // `next_wake`) are re-aimed at the current cycle, never rewinding
        // `now` nor wedging the loop.
        let mut m = Machine::new(Platform::kunpeng916());
        m.add_thread_on(
            0,
            Box::new(Script::new(vec![
                Op::store(0x100, 1),
                Op::Fence(Barrier::DmbFull),
                Op::load_use(0x100),
            ])),
        );
        let first = m.run(1_000_000);
        assert!(first.halted);
        m.heap.push(Reverse((0, 0)));
        m.scheduled[0] = 0;
        let again = m.run(1 << 50);
        assert!(again.halted);
        assert_eq!(
            again.cycles,
            first.cycles + 1,
            "polluted heap must not stall the quiesce tick"
        );
        assert_eq!(m.read_memory(0x100), 1);
    }

    #[test]
    fn thousand_core_parked_spinners_cost_nothing() {
        // 1023 cores park on a line; core 0 works alone for a while, then
        // commits the wake-up store. The event engine must spend its steps
        // on core 0 and the single wake burst — not on re-polling spinners.
        let plat = Platform::manycore(1024);
        let mut m = Machine::new(plat);
        for c in 1..1024 {
            m.add_thread_on(
                c,
                Box::new(Waiter {
                    expect: 0,
                    phase: 0,
                }),
            );
        }
        let mut ops = Vec::new();
        for _ in 0..50 {
            ops.push(Op::Nops(100));
            ops.push(Op::Fence(Barrier::DsbFull));
        }
        ops.push(Op::store(0x5000, 1));
        m.add_thread_on(0, Box::new(Script::new(ops)));
        let stats = m.run(10_000_000);
        assert!(stats.halted, "all 1024 cores must finish");
        assert_eq!(m.read_memory(0x5100), 1, "waiters observed the store");
        // Budget: every core steps O(1) times (park, wake, publish, halt)
        // plus core 0's barrier chain — nowhere near cores × cycles.
        assert!(
            m.steps_executed() < 40_000,
            "parked spinners must not burn steps: {}",
            m.steps_executed()
        );
    }

    #[test]
    fn thousand_core_quiet_run_traces_small() {
        // Tracing a 1024-core machine where only core 0 is interesting:
        // the filter plus lazy track allocation keep the export tiny even
        // though a thousand other cores park, wake, and publish.
        let mut m = Machine::new(Platform::manycore(1024));
        m.enable_trace(200_000);
        m.set_trace_core_filter(Trace::parse_core_filter(Some("1")));
        for c in 1..1024 {
            m.add_thread_on(
                c,
                Box::new(Waiter {
                    expect: 0,
                    phase: 0,
                }),
            );
        }
        m.add_thread_on(
            0,
            Box::new(Script::new(vec![
                Op::Nops(50),
                Op::Fence(Barrier::DmbFull),
                Op::store(0x5000, 1),
            ])),
        );
        assert!(m.run(10_000_000).halted);
        let json = m.take_trace().to_chrome_json();
        assert!(
            json.len() < 16 * 1024,
            "filtered 1024-core trace stays small: {} bytes",
            json.len()
        );
        assert!(json.contains("\"tid\":0"), "core 0's track is present");
        assert!(
            !json.contains("\"tid\":40"),
            "other cores' tracks are filtered out"
        );
    }

    #[test]
    fn event_acceleration_preserves_results() {
        // A long DSB chain exercises the jump path; cycle counts must be
        // exactly reproducible.
        let mk = || {
            let ops = vec![
                Op::store(0x100, 1),
                Op::Fence(Barrier::DsbFull),
                Op::Nops(5),
                Op::store(0x140, 2),
                Op::Fence(Barrier::DsbFull),
                Op::load_use(0x100),
            ];
            let mut m = Machine::new(Platform::kunpeng916());
            m.add_thread_on(0, Box::new(Script::new(ops)));
            let s = m.run(1_000_000);
            assert!(s.halted);
            s.cycles
        };
        assert_eq!(mk(), mk(), "determinism");
    }
}
