//! Platform profiles: the paper's four target machines (Table 2).
//!
//! A [`Platform`] bundles a [`Topology`](crate::topology::Topology) with a
//! [`LatencyParams`] calibration. Latencies are in core cycles. The values
//! are *not* measured from the real machines — they are chosen so that the
//! paper's qualitative shapes emerge (see `DESIGN.md` §3 and the calibration
//! tests in `armbar-simapps`): the server profile has an expensive,
//! deep interconnect (large barrier-transaction and cross-node snoop
//! latencies), while the mobile profiles have a flat, cheap CCI-550-style
//! interconnect, which is why barrier choice matters so much less there
//! (Observation 4).

use crate::topology::Topology;
use crate::types::{Cycle, DistanceClass};

/// Which of the paper's machines a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// Kunpeng 916 server: 2 NUMA nodes × 32 Cortex-A72 cores, 2.4 GHz.
    Kunpeng916,
    /// Kirin 960 mobile SoC: 4 × A73 + 4 × A53 (big.LITTLE), 2.1 GHz,
    /// CCI-550 interconnect.
    Kirin960,
    /// Kirin 970 mobile SoC: 4 × A73 + 4 × A53, 2.36 GHz, CCI-550.
    Kirin970,
    /// Raspberry Pi 4: 4 × Cortex-A72, 1.5 GHz.
    RaspberryPi4,
}

impl PlatformKind {
    /// All four platforms, in the paper's Table 2 order.
    pub const ALL: [PlatformKind; 4] = [
        PlatformKind::Kunpeng916,
        PlatformKind::Kirin960,
        PlatformKind::Kirin970,
        PlatformKind::RaspberryPi4,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::Kunpeng916 => "Kunpeng916",
            PlatformKind::Kirin960 => "Kirin960",
            PlatformKind::Kirin970 => "Kirin970",
            PlatformKind::RaspberryPi4 => "Raspberry Pi 4",
        }
    }
}

/// Pipeline and interconnect latency calibration, all in cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyParams {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Re-order buffer capacity (instructions in flight).
    pub rob_size: u32,
    /// Store buffer capacity (pending stores).
    pub sb_size: u32,
    /// Maximum concurrent store-buffer drains (coherence ports).
    pub sb_drain_ports: u32,
    /// Maximum outstanding load misses (MSHRs).
    pub max_outstanding_loads: u32,
    /// L1 hit latency.
    pub t_l1_hit: Cycle,
    /// Line transfer from a sibling core in the same cluster.
    pub t_same_cluster: Cycle,
    /// Line transfer across clusters within a node (bi-section crossing).
    pub t_cross_cluster: Cycle,
    /// Line transfer across NUMA nodes (domain crossing).
    pub t_cross_node: Cycle,
    /// Line fill from memory.
    pub t_memory: Cycle,
    /// Memory-barrier transaction response with no outstanding traffic.
    pub t_membar_idle: Cycle,
    /// Memory-barrier transaction response latency added after the issuing
    /// core's outstanding transactions finish, when snooping stayed within
    /// one node (answered at the bi-section boundary).
    pub t_membar_bisection: Cycle,
    /// Same, when cross-node snooping was involved (answered at the domain
    /// boundary).
    pub t_membar_domain: Cycle,
    /// Synchronization-barrier transaction response latency (always the
    /// domain boundary; insensitive to locality — Observation 5).
    pub t_syncbar: Cycle,
    /// Extra drain latency of a store-release (STLR): its conservative
    /// implementation waits on a domain-scope transaction, which puts its
    /// cost between DMB st and DSB (Observation 3).
    pub t_stlr: Cycle,
    /// Pipeline refill after an ISB flush.
    pub t_isb_flush: Cycle,
    /// Core clock in MHz, used only to convert cycles to wall-clock rates
    /// when printing paper-style "10^6 loops/s" numbers.
    pub clock_mhz: u64,
    /// Ablation knob: whether DMB-class barriers hold their re-order-buffer
    /// slot until the bus responds (the Figure 4 back-pressure mechanism).
    /// True on every real profile.
    pub dmb_holds_rob: bool,
    /// Ablation knob: force the store buffer to drain in FIFO order
    /// (x86-style). False on every real profile — ARM's buffer is not
    /// ordered (§6).
    pub fifo_store_buffer: bool,
}

impl LatencyParams {
    /// Latency of transferring a line at the given distance.
    #[must_use]
    pub fn transfer_latency(&self, d: DistanceClass) -> Cycle {
        match d {
            DistanceClass::Local => self.t_l1_hit,
            DistanceClass::SameCluster => self.t_same_cluster,
            DistanceClass::CrossCluster => self.t_cross_cluster,
            DistanceClass::CrossNode => self.t_cross_node,
            DistanceClass::Memory => self.t_memory,
        }
    }

    /// Memory-barrier transaction response latency for the given snoop scope.
    #[must_use]
    pub fn membar_latency(&self, crossed_node: bool) -> Cycle {
        if crossed_node {
            self.t_membar_domain
        } else {
            self.t_membar_bisection
        }
    }
}

/// A complete simulated machine model.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Which machine this models.
    pub kind: PlatformKind,
    /// Core/cluster/node layout.
    pub topology: Topology,
    /// Latency calibration.
    pub latency: LatencyParams,
}

impl Platform {
    /// Kunpeng 916 ARM server: 2 nodes × 32 cores (8 clusters of 4 per
    /// node, CCN-style), deep interconnect. "One of the most advanced ARM
    /// servers available" — and the machine where barriers hurt most.
    #[must_use]
    pub fn kunpeng916() -> Platform {
        Platform {
            kind: PlatformKind::Kunpeng916,
            topology: Topology::new(&[&[4, 4, 4, 4, 4, 4, 4, 4], &[4, 4, 4, 4, 4, 4, 4, 4]]),
            latency: LatencyParams {
                issue_width: 3,
                retire_width: 3,
                rob_size: 128,
                sb_size: 24,
                sb_drain_ports: 4,
                max_outstanding_loads: 8,
                t_l1_hit: 2,
                t_same_cluster: 25,
                t_cross_cluster: 35,
                t_cross_node: 160,
                t_memory: 120,
                t_membar_idle: 4,
                t_membar_bisection: 15,
                t_membar_domain: 70,
                t_syncbar: 420,
                t_stlr: 130,
                t_isb_flush: 40,
                clock_mhz: 2400,
                dmb_holds_rob: true,
                fifo_store_buffer: false,
            },
        }
    }

    /// Kirin 960: big.LITTLE (4×A73 + 4×A53) behind a CCI-550. The paper
    /// binds threads to the big cluster; cores 0..4 are the big cluster.
    #[must_use]
    pub fn kirin960() -> Platform {
        Platform {
            kind: PlatformKind::Kirin960,
            topology: Topology::new(&[&[4, 4]]),
            latency: LatencyParams {
                issue_width: 2,
                retire_width: 2,
                rob_size: 64,
                sb_size: 16,
                sb_drain_ports: 2,
                max_outstanding_loads: 6,
                t_l1_hit: 2,
                t_same_cluster: 14,
                t_cross_cluster: 22,
                t_cross_node: 22, // single node; unused
                t_memory: 90,
                t_membar_idle: 2,
                t_membar_bisection: 4,
                t_membar_domain: 7,
                t_syncbar: 55,
                t_stlr: 25,
                t_isb_flush: 14,
                clock_mhz: 2100,
                dmb_holds_rob: true,
                fifo_store_buffer: false,
            },
        }
    }

    /// Kirin 970: same micro-architecture family as Kirin 960, slightly
    /// higher clock and marginally better interconnect.
    #[must_use]
    pub fn kirin970() -> Platform {
        let mut p = Platform::kirin960();
        p.kind = PlatformKind::Kirin970;
        p.latency.clock_mhz = 2360;
        p.latency.t_same_cluster = 12;
        p.latency.t_cross_cluster = 20;
        p.latency.t_syncbar = 50;
        p
    }

    /// Raspberry Pi 4: four A72 cores in one cluster, modest clock, simple
    /// interconnect.
    #[must_use]
    pub fn raspberry_pi4() -> Platform {
        Platform {
            kind: PlatformKind::RaspberryPi4,
            topology: Topology::new(&[&[4]]),
            latency: LatencyParams {
                issue_width: 2,
                retire_width: 2,
                rob_size: 64,
                sb_size: 16,
                sb_drain_ports: 2,
                max_outstanding_loads: 6,
                t_l1_hit: 2,
                t_same_cluster: 20,
                t_cross_cluster: 20, // single cluster; unused
                t_cross_node: 20,    // single node; unused
                t_memory: 110,
                t_membar_idle: 2,
                t_membar_bisection: 5,
                t_membar_domain: 8,
                t_syncbar: 60,
                t_stlr: 45,
                t_isb_flush: 14,
                clock_mhz: 1500,
                dmb_holds_rob: true,
                fifo_store_buffer: false,
            },
        }
    }

    /// The paper's closing future-work item (§6): a next-generation
    /// **multi-copy-atomic** server, per ACE5's recommendation that
    /// "processors are recommended to terminate barriers internally if the
    /// system is MCA" [36]. Memory-barrier transactions never travel to the
    /// interconnect: their response cost collapses to the idle constant,
    /// and the synchronization barrier shrinks to a drain-local wait.
    /// Everything else (coherence distances, pipeline) matches Kunpeng916,
    /// so comparing the two isolates the barrier-transaction cost.
    #[must_use]
    pub fn kunpeng916_mca() -> Platform {
        let mut p = Platform::kunpeng916();
        p.latency.t_membar_bisection = p.latency.t_membar_idle;
        p.latency.t_membar_domain = p.latency.t_membar_idle;
        p.latency.t_syncbar = 40;
        p.latency.t_stlr = p.latency.t_membar_idle;
        p
    }

    /// A scaled-out Kunpeng-class server for the many-core experiments:
    /// `cores` cores (a multiple of 64, at least 64) as `cores / 64` NUMA
    /// nodes of 8 clusters × 8 cores, with the Kunpeng 916 latency
    /// calibration. The `kind` stays [`PlatformKind::Kunpeng916`] — this is
    /// a hypothetical stretch of that machine, not a fifth paper platform —
    /// and cache keys stay distinct because they embed the full topology.
    ///
    /// # Panics
    ///
    /// Panics unless `cores` is a positive multiple of 64.
    #[must_use]
    pub fn manycore(cores: usize) -> Platform {
        assert!(
            cores >= 64 && cores.is_multiple_of(64),
            "many-core platforms come in multiples of 64 cores, got {cores}"
        );
        let mut p = Platform::kunpeng916();
        p.topology = Topology::uniform(cores / 64, 8, 8);
        p
    }

    /// The many-core machine with the multi-copy-atomic interconnect of
    /// [`Platform::kunpeng916_mca`]: same topology as
    /// [`Platform::manycore`], barrier transactions terminated internally.
    ///
    /// # Panics
    ///
    /// Panics unless `cores` is a positive multiple of 64.
    #[must_use]
    pub fn manycore_mca(cores: usize) -> Platform {
        let mut p = Platform::kunpeng916_mca();
        p.topology = Platform::manycore(cores).topology;
        p
    }

    /// Build a platform by kind.
    #[must_use]
    pub fn of(kind: PlatformKind) -> Platform {
        match kind {
            PlatformKind::Kunpeng916 => Platform::kunpeng916(),
            PlatformKind::Kirin960 => Platform::kirin960(),
            PlatformKind::Kirin970 => Platform::kirin970(),
            PlatformKind::RaspberryPi4 => Platform::raspberry_pi4(),
        }
    }

    /// Convert a `cycles / iterations` measurement into iterations per
    /// second at this platform's clock.
    #[must_use]
    pub fn iterations_per_second(&self, iterations: u64, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (iterations as f64) * (self.latency.clock_mhz as f64) * 1e6 / (cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kunpeng_is_a_two_node_64_core_machine() {
        let p = Platform::kunpeng916();
        assert_eq!(p.topology.node_count(), 2);
        assert_eq!(p.topology.core_count(), 64);
    }

    #[test]
    fn mobile_platforms_are_single_node() {
        for k in [
            PlatformKind::Kirin960,
            PlatformKind::Kirin970,
            PlatformKind::RaspberryPi4,
        ] {
            assert_eq!(Platform::of(k).topology.node_count(), 1, "{}", k.name());
        }
    }

    #[test]
    fn server_interconnect_is_much_deeper_than_mobile() {
        // Observation 4 prerequisite: barrier transactions cost far more on
        // the server profile.
        let server = Platform::kunpeng916().latency;
        for m in [
            Platform::kirin960(),
            Platform::kirin970(),
            Platform::raspberry_pi4(),
        ] {
            assert!(server.t_membar_domain > 5 * m.latency.t_membar_domain);
            assert!(server.t_syncbar > 5 * m.latency.t_syncbar);
        }
    }

    #[test]
    fn stlr_sits_between_dmb_st_and_dsb_cost() {
        // Observation 3 prerequisite: STLR's drain latency is above the
        // membar bi-section response but below the syncbar response.
        for k in PlatformKind::ALL {
            let l = Platform::of(k).latency;
            assert!(l.t_stlr > l.t_membar_bisection, "{}", k.name());
            assert!(l.t_stlr < l.t_syncbar, "{}", k.name());
        }
    }

    #[test]
    fn transfer_latency_monotone_in_distance() {
        for k in PlatformKind::ALL {
            let l = Platform::of(k).latency;
            assert!(l.t_l1_hit < l.t_same_cluster);
            assert!(l.t_same_cluster <= l.t_cross_cluster);
            assert!(l.t_cross_cluster <= l.t_cross_node);
        }
    }

    #[test]
    fn iterations_per_second_conversion() {
        let p = Platform::kunpeng916(); // 2.4 GHz
                                        // 240 cycles per iteration -> 10^7 iterations/s.
        let ips = p.iterations_per_second(1000, 240_000);
        assert!((ips - 1e7).abs() < 1.0);
    }

    #[test]
    fn mca_profile_terminates_barriers_internally() {
        let mca = Platform::kunpeng916_mca();
        let base = Platform::kunpeng916();
        assert_eq!(mca.latency.t_membar_domain, mca.latency.t_membar_idle);
        assert!(mca.latency.t_syncbar < base.latency.t_syncbar / 5);
        // Coherence costs are untouched: the comparison isolates barriers.
        assert_eq!(mca.latency.t_cross_node, base.latency.t_cross_node);
        assert_eq!(mca.topology.core_count(), base.topology.core_count());
    }

    #[test]
    fn manycore_platforms_scale_the_kunpeng_shape() {
        for cores in [64usize, 256, 512, 1024] {
            let p = Platform::manycore(cores);
            assert_eq!(p.topology.core_count(), cores);
            assert_eq!(p.topology.node_count(), cores / 64);
            assert_eq!(p.kind, PlatformKind::Kunpeng916);
            assert_eq!(p.latency, Platform::kunpeng916().latency);
            let mca = Platform::manycore_mca(cores);
            assert_eq!(mca.topology, p.topology);
            assert_eq!(mca.latency, Platform::kunpeng916_mca().latency);
        }
        // Distinct topologies mean distinct Debug forms (the cache key).
        assert_ne!(
            format!("{:?}", Platform::manycore(256)),
            format!("{:?}", Platform::manycore(512)),
        );
    }

    #[test]
    #[should_panic(expected = "multiples of 64")]
    fn manycore_rejects_odd_sizes() {
        let _ = Platform::manycore(100);
    }

    #[test]
    fn table2_names() {
        assert_eq!(PlatformKind::Kunpeng916.name(), "Kunpeng916");
        assert_eq!(PlatformKind::RaspberryPi4.name(), "Raspberry Pi 4");
    }
}
