//! Fundamental simulator types.

use core::fmt;

/// A byte address in the simulated physical address space.
pub type Addr = u64;

/// Simulated time, in core clock cycles.
pub type Cycle = u64;

/// Identifier of a core (a *master* in ACE terms).
pub type CoreId = usize;

/// Bytes per cache line on every modelled platform.
pub const LINE_BYTES: u64 = 64;

/// A cache-line index (address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Line(pub u64);

impl Line {
    /// The line containing `addr`.
    #[must_use]
    pub fn containing(addr: Addr) -> Line {
        Line(addr / LINE_BYTES)
    }

    /// First byte address of this line.
    #[must_use]
    pub fn base_addr(self) -> Addr {
        self.0 * LINE_BYTES
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Topological distance between a requesting core and the current location
/// of a cache line (or another core), ordered near-to-far.
///
/// The cost of a *remote memory reference* — an access whose target "is not
/// cached or its cached copy is invalid" (paper footnote 1) — grows with this
/// distance, and so does the scope an ACE memory-barrier transaction must
/// reach before it can be answered (Observation 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistanceClass {
    /// Hit in the requester's own L1/L2 (not remote at all).
    Local,
    /// Line owned by a sibling core in the same cluster.
    SameCluster,
    /// Line owned by a core in another cluster of the same NUMA node
    /// (crosses the inner bi-section boundary only).
    CrossCluster,
    /// Line owned by a core in another NUMA node (crosses the inner domain
    /// boundary — "crossing nodes is a killer", Observation 5).
    CrossNode,
    /// Line not cached anywhere: fetched from memory.
    Memory,
}

impl DistanceClass {
    /// Every distance class, ordered near-to-far (index order matches
    /// [`DistanceClass::index`]).
    pub const ALL: [DistanceClass; 5] = [
        DistanceClass::Local,
        DistanceClass::SameCluster,
        DistanceClass::CrossCluster,
        DistanceClass::CrossNode,
        DistanceClass::Memory,
    ];

    /// Position of this class in [`DistanceClass::ALL`] (dense, 0-based) —
    /// used to key per-distance counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            DistanceClass::Local => 0,
            DistanceClass::SameCluster => 1,
            DistanceClass::CrossCluster => 2,
            DistanceClass::CrossNode => 3,
            DistanceClass::Memory => 4,
        }
    }

    /// Whether satisfying an access at this distance requires snooping
    /// outside the requester's NUMA node.
    #[must_use]
    pub fn crosses_node(self) -> bool {
        matches!(self, DistanceClass::CrossNode)
    }

    /// Whether an access at this distance is a remote memory reference.
    #[must_use]
    pub fn is_rmr(self) -> bool {
        self != DistanceClass::Local
    }
}

impl fmt::Display for DistanceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DistanceClass::Local => "local",
            DistanceClass::SameCluster => "same-cluster",
            DistanceClass::CrossCluster => "cross-cluster",
            DistanceClass::CrossNode => "cross-node",
            DistanceClass::Memory => "memory",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_containing_rounds_down() {
        assert_eq!(Line::containing(0), Line(0));
        assert_eq!(Line::containing(63), Line(0));
        assert_eq!(Line::containing(64), Line(1));
        assert_eq!(Line::containing(130), Line(2));
    }

    #[test]
    fn line_base_addr_roundtrips() {
        for a in [0u64, 64, 128, 4096, 1 << 40] {
            assert_eq!(Line::containing(a).base_addr(), a);
        }
    }

    #[test]
    fn distance_ordering_is_near_to_far() {
        assert!(DistanceClass::Local < DistanceClass::SameCluster);
        assert!(DistanceClass::SameCluster < DistanceClass::CrossCluster);
        assert!(DistanceClass::CrossCluster < DistanceClass::CrossNode);
        assert!(DistanceClass::CrossNode < DistanceClass::Memory);
    }

    #[test]
    fn index_matches_all_order() {
        for (i, d) in DistanceClass::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn rmr_classification() {
        assert!(!DistanceClass::Local.is_rmr());
        for d in [
            DistanceClass::SameCluster,
            DistanceClass::CrossCluster,
            DistanceClass::CrossNode,
            DistanceClass::Memory,
        ] {
            assert!(d.is_rmr());
        }
        assert!(DistanceClass::CrossNode.crosses_node());
        assert!(!DistanceClass::CrossCluster.crosses_node());
    }
}
