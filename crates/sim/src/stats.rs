//! Per-core and per-run statistics.

use crate::types::Cycle;

/// Counters collected by one core over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles the core existed (equals run length unless it halted early;
    /// the counter freezes at the halt cycle).
    pub cycles: Cycle,
    /// Iterations reported by the workload via `Op::IterationMark`.
    pub iterations: u64,
    /// Instructions issued (nops count individually).
    pub issued: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Loads issued.
    pub loads: u64,
    /// Loads that were remote memory references.
    pub load_rmrs: u64,
    /// Stores issued.
    pub stores: u64,
    /// Store drains that were remote memory references.
    pub store_rmrs: u64,
    /// Barrier instructions issued (fences; LDAR/STLR counted at their
    /// accesses instead).
    pub fences: u64,
    /// Atomic RMW operations issued.
    pub rmws: u64,
    /// Cycles in which issue was completely blocked by a barrier condition
    /// (DSB/ISB window, DMB memory-block with no issuable work, full ROB
    /// behind a pending barrier, full store buffer behind a gate).
    pub barrier_stall_cycles: Cycle,
    /// Cycle at which the workload halted, if it did.
    pub halted_at: Option<Cycle>,
}

impl CoreStats {
    /// Iterations per 1000 cycles — a clock-independent throughput figure.
    #[must_use]
    pub fn iterations_per_kcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iterations as f64 * 1000.0 / self.cycles as f64
        }
    }

    /// Average cycles per iteration (`None` when nothing completed).
    #[must_use]
    pub fn cycles_per_iteration(&self) -> Option<f64> {
        if self.iterations == 0 {
            None
        } else {
            Some(self.cycles as f64 / self.iterations as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_helpers() {
        let s = CoreStats {
            cycles: 2000,
            iterations: 10,
            ..CoreStats::default()
        };
        assert!((s.iterations_per_kcycle() - 5.0).abs() < 1e-9);
        assert!((s.cycles_per_iteration().unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = CoreStats::default();
        assert_eq!(s.iterations_per_kcycle(), 0.0);
        assert!(s.cycles_per_iteration().is_none());
    }
}
