//! Per-core and per-run statistics.

use armbar_barriers::Barrier;

use crate::types::{Cycle, DistanceClass};

/// The mutually exclusive reasons a fully barrier-stalled issue cycle is
/// charged to. The core model picks exactly one cause per stalled cycle at
/// its single charging point, so the per-cause counters in
/// [`StallBreakdown`] sum exactly to the total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting out a barrier's response window after its wait conditions
    /// were already met — the DSB/ISB "empty pipeline" interval.
    ResponseWindow,
    /// Memory operations held back by a DMB-class barrier whose response is
    /// scheduled but not yet arrived (non-memory work could still issue).
    MemoryBlock,
    /// Waiting for prior accesses to drain/complete before a barrier can
    /// even request its response, split by how far the slowest outstanding
    /// access travels.
    DrainWait(DistanceClass),
    /// The ROB is full behind a pending barrier (a DSB or a
    /// `dmb_holds_rob` DMB occupying its slot until the response).
    RobFull,
    /// The store buffer is full behind a closed `DMB st` gate.
    SbFull,
}

impl StallCause {
    /// Stable text label (CSV column / trace track name).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::ResponseWindow => "response-window",
            StallCause::MemoryBlock => "memory-block",
            StallCause::DrainWait(DistanceClass::Local) => "drain-wait:local",
            StallCause::DrainWait(DistanceClass::SameCluster) => "drain-wait:same-cluster",
            StallCause::DrainWait(DistanceClass::CrossCluster) => "drain-wait:cross-cluster",
            StallCause::DrainWait(DistanceClass::CrossNode) => "drain-wait:cross-node",
            StallCause::DrainWait(DistanceClass::Memory) => "drain-wait:memory",
            StallCause::RobFull => "rob-full",
            StallCause::SbFull => "sb-full",
        }
    }
}

/// Decomposition of barrier-stall cycles by cause and by barrier kind.
///
/// This is the simulator's answer to the paper's attributional analysis:
/// rather than one opaque stall counter, each fully stalled issue cycle is
/// charged to exactly one cause, so `sum(causes) == total` always holds.
/// Field ↔ paper mapping:
///
/// * [`response_window`](Self::response_window) — the intrinsic DSB/ISB
///   cost window of Figure 2 / Observation 1: wait conditions are met, the
///   core is simply waiting out the synchronization-barrier (or
///   context-synchronization) response before anything may issue.
/// * [`memory_block`](Self::memory_block) — Figure 3's DMB round-trip: the
///   ACE memory-barrier transaction is in flight and later memory
///   operations must wait for it (Observation 3's overlap potential lives
///   here — non-memory work can still issue, so these cycles only count
///   when nothing else was issuable).
/// * [`drain_wait`](Self::drain_wait) — Figures 4–6's store-buffer drain
///   and outstanding-access component, split by [`DistanceClass`]: the
///   barrier cannot request its response until prior accesses complete, and
///   the wait grows with snoop distance ("crossing nodes is a killer",
///   Observation 5).
/// * [`rob_full`](Self::rob_full) — Figure 4's ROB back-pressure
///   (Observation 2): issue stops because the reorder buffer filled up
///   behind a barrier still occupying its slot.
/// * [`sb_full`](Self::sb_full) — the `DMB st` gate back-pressure of
///   Figure 7's unlock path: the store buffer is full and its head cannot
///   drain past a closed gate.
/// * [`by_kind`](Self::by_kind) — per-[`Barrier`] subtotals (indexed by
///   position in [`Barrier::ALL`]) for the DMB-vs-DSB-vs-acquire/release
///   comparisons of Figures 6–7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Total fully stalled issue cycles (the former `barrier_stall_cycles`).
    pub total: Cycle,
    /// Cycles inside a DSB/ISB response window.
    pub response_window: Cycle,
    /// Cycles memory issue waited on an in-flight DMB response.
    pub memory_block: Cycle,
    /// Cycles waiting for prior accesses before a barrier response could be
    /// requested, indexed by [`DistanceClass::index`] of the farthest
    /// outstanding access.
    pub drain_wait: [Cycle; DistanceClass::ALL.len()],
    /// Cycles the ROB was full behind a pending barrier.
    pub rob_full: Cycle,
    /// Cycles the store buffer was full behind a closed `DMB st` gate.
    pub sb_full: Cycle,
    /// Subtotals by the barrier kind responsible, indexed by position in
    /// [`Barrier::ALL`].
    pub by_kind: [Cycle; Barrier::ALL.len()],
}

impl StallBreakdown {
    /// Labels of the cause columns, in [`StallBreakdown::cause_counts`]
    /// order.
    pub const CAUSE_LABELS: [&'static str; 9] = [
        "response-window",
        "memory-block",
        "drain-wait:local",
        "drain-wait:same-cluster",
        "drain-wait:cross-cluster",
        "drain-wait:cross-node",
        "drain-wait:memory",
        "rob-full",
        "sb-full",
    ];

    /// The barrier kinds the core model can actually charge stalls to, in
    /// report order.
    pub const CHARGEABLE_KINDS: [Barrier; 11] = [
        Barrier::DmbFull,
        Barrier::DmbSt,
        Barrier::DmbLd,
        Barrier::DsbFull,
        Barrier::DsbSt,
        Barrier::DsbLd,
        Barrier::Isb,
        Barrier::CtrlIsb,
        Barrier::Ldar,
        Barrier::Ldapr,
        Barrier::Stlr,
    ];

    /// Charge `cycles` stalled cycles to one cause and one barrier kind.
    pub fn charge(&mut self, cause: StallCause, kind: Barrier, cycles: Cycle) {
        self.total += cycles;
        match cause {
            StallCause::ResponseWindow => self.response_window += cycles,
            StallCause::MemoryBlock => self.memory_block += cycles,
            StallCause::DrainWait(d) => self.drain_wait[d.index()] += cycles,
            StallCause::RobFull => self.rob_full += cycles,
            StallCause::SbFull => self.sb_full += cycles,
        }
        self.by_kind[kind_index(kind)] += cycles;
    }

    /// The cause counters in [`StallBreakdown::CAUSE_LABELS`] order.
    #[must_use]
    pub fn cause_counts(&self) -> [Cycle; 9] {
        [
            self.response_window,
            self.memory_block,
            self.drain_wait[0],
            self.drain_wait[1],
            self.drain_wait[2],
            self.drain_wait[3],
            self.drain_wait[4],
            self.rob_full,
            self.sb_full,
        ]
    }

    /// Sum of the per-cause counters (must equal
    /// [`total`](Self::total)).
    #[must_use]
    pub fn cause_total(&self) -> Cycle {
        self.cause_counts().iter().sum()
    }

    /// Sum of the per-kind subtotals (must equal
    /// [`total`](Self::total)).
    #[must_use]
    pub fn kind_total(&self) -> Cycle {
        self.by_kind.iter().sum()
    }

    /// Stalled cycles charged to one barrier kind.
    #[must_use]
    pub fn kind_count(&self, kind: Barrier) -> Cycle {
        self.by_kind[kind_index(kind)]
    }

    /// Accumulate another core's breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.total += other.total;
        self.response_window += other.response_window;
        self.memory_block += other.memory_block;
        for (a, b) in self.drain_wait.iter_mut().zip(other.drain_wait.iter()) {
            *a += b;
        }
        self.rob_full += other.rob_full;
        self.sb_full += other.sb_full;
        for (a, b) in self.by_kind.iter_mut().zip(other.by_kind.iter()) {
            *a += b;
        }
    }
}

/// Dense index of a barrier kind in [`Barrier::ALL`].
fn kind_index(kind: Barrier) -> usize {
    Barrier::ALL
        .iter()
        .position(|&b| b == kind)
        .expect("every barrier kind appears in Barrier::ALL")
}

/// Number of buckets in a [`LatencyHistogram`]: bucket `i` holds samples
/// whose bit length is `i` (powers of two up to 2^38 cycles — far beyond
/// any simulated response time), with the last bucket open-ended.
pub const LATENCY_BUCKETS: usize = 40;

/// Fixed-boundary response-time histogram with power-of-two buckets.
///
/// Samples are cycle deltas between successive `Op::IterationMark`s on one
/// core — the closed-loop completion-to-completion response time. The
/// bucket boundaries are compile-time constants (no per-run adaptation),
/// so two runs that complete iterations at the same cycles produce
/// *identical* histograms: the struct is `Eq` and sits inside
/// [`CoreStats`], which the engine-differential suites compare field by
/// field. Quantile queries return the bucket's inclusive upper bound
/// clamped to the observed maximum, which makes
/// `p50 <= p99 <= p999 <= max` hold by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts per power-of-two bucket.
    counts: [u64; LATENCY_BUCKETS],
    /// Total recorded samples (`== counts.iter().sum()`).
    count: u64,
    /// Largest recorded sample.
    max: Cycle,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKETS],
            count: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Bucket index of one sample: its bit length, clamped into range.
    fn bucket(sample: Cycle) -> usize {
        let bits = (Cycle::BITS - sample.leading_zeros()) as usize;
        bits.min(LATENCY_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    fn upper_bound(i: usize) -> Cycle {
        if i >= LATENCY_BUCKETS - 1 {
            Cycle::MAX
        } else {
            (1 << i) - 1
        }
    }

    /// Record one response-time sample.
    pub fn record(&mut self, sample: Cycle) {
        self.counts[Self::bucket(sample)] += 1;
        self.count += 1;
        self.max = self.max.max(sample);
    }

    /// Fold another histogram into this one (per-core → per-run merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the inclusive upper bound of
    /// the bucket holding the `ceil(q * count)`-th smallest sample, clamped
    /// to the observed maximum. Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0.0, 1.0]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Cycle {
        assert!(q > 0.0 && q <= 1.0, "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: the (p50, p99, p999, max) tuple the reports use.
    #[must_use]
    pub fn summary(&self) -> (Cycle, Cycle, Cycle, Cycle) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max,
        )
    }
}

/// Counters collected by one core over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles the core existed (equals run length unless it halted early;
    /// the counter freezes at the halt cycle).
    pub cycles: Cycle,
    /// Iterations reported by the workload via `Op::IterationMark`.
    pub iterations: u64,
    /// Instructions issued (nops count individually).
    pub issued: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Loads issued.
    pub loads: u64,
    /// Loads that were remote memory references.
    pub load_rmrs: u64,
    /// Stores issued.
    pub stores: u64,
    /// Store drains that were remote memory references.
    pub store_rmrs: u64,
    /// Barrier instructions issued (fences; LDAR/STLR counted at their
    /// accesses instead).
    pub fences: u64,
    /// Atomic RMW operations issued.
    pub rmws: u64,
    /// Cycles in which issue was completely blocked by a barrier condition,
    /// decomposed by cause and barrier kind.
    pub stall: StallBreakdown,
    /// Cycle at which the workload halted, if it did.
    pub halted_at: Option<Cycle>,
    /// Response-time histogram over the gaps between successive
    /// `Op::IterationMark`s (first sample measured from cycle 0).
    pub latency: LatencyHistogram,
}

impl CoreStats {
    /// Total barrier-stall cycles (the scalar this struct used to carry
    /// before the breakdown existed).
    #[must_use]
    pub fn barrier_stall_cycles(&self) -> Cycle {
        self.stall.total
    }

    /// Iterations per 1000 cycles — a clock-independent throughput figure.
    #[must_use]
    pub fn iterations_per_kcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iterations as f64 * 1000.0 / self.cycles as f64
        }
    }

    /// Average cycles per iteration (`None` when nothing completed).
    #[must_use]
    pub fn cycles_per_iteration(&self) -> Option<f64> {
        if self.iterations == 0 {
            None
        } else {
            Some(self.cycles as f64 / self.iterations as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_helpers() {
        let s = CoreStats {
            cycles: 2000,
            iterations: 10,
            ..CoreStats::default()
        };
        assert!((s.iterations_per_kcycle() - 5.0).abs() < 1e-9);
        assert!((s.cycles_per_iteration().unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = CoreStats::default();
        assert_eq!(s.iterations_per_kcycle(), 0.0);
        assert!(s.cycles_per_iteration().is_none());
    }

    #[test]
    fn charge_keeps_causes_and_kinds_in_sync() {
        let mut b = StallBreakdown::default();
        b.charge(StallCause::ResponseWindow, Barrier::DsbFull, 7);
        b.charge(
            StallCause::DrainWait(DistanceClass::CrossNode),
            Barrier::DmbFull,
            3,
        );
        b.charge(StallCause::SbFull, Barrier::DmbSt, 2);
        b.charge(StallCause::RobFull, Barrier::DmbFull, 1);
        b.charge(StallCause::MemoryBlock, Barrier::DmbFull, 5);
        assert_eq!(b.total, 18);
        assert_eq!(b.cause_total(), 18);
        assert_eq!(b.kind_total(), 18);
        assert_eq!(b.kind_count(Barrier::DmbFull), 9);
        assert_eq!(b.kind_count(Barrier::DsbFull), 7);
        assert_eq!(b.kind_count(Barrier::DmbSt), 2);
        assert_eq!(b.drain_wait[DistanceClass::CrossNode.index()], 3);
    }

    #[test]
    fn acquire_subtotals_preserve_the_breakdown_invariant() {
        // The LDAPR kind gets its own subtotal; charging a mix of RCsc and
        // RCpc gate stalls keeps sum(causes) == sum(kinds) == total.
        let mut b = StallBreakdown::default();
        b.charge(
            StallCause::DrainWait(DistanceClass::Local),
            Barrier::Ldar,
            11,
        );
        b.charge(
            StallCause::DrainWait(DistanceClass::SameCluster),
            Barrier::Ldapr,
            5,
        );
        b.charge(
            StallCause::DrainWait(DistanceClass::CrossNode),
            Barrier::Ldapr,
            2,
        );
        assert_eq!(b.total, 18);
        assert_eq!(b.cause_total(), b.total);
        assert_eq!(b.kind_total(), b.total);
        assert_eq!(b.kind_count(Barrier::Ldar), 11);
        assert_eq!(b.kind_count(Barrier::Ldapr), 7);
    }

    #[test]
    fn every_chargeable_kind_has_a_distinct_subtotal_slot() {
        for kind in StallBreakdown::CHARGEABLE_KINDS {
            let mut b = StallBreakdown::default();
            b.charge(StallCause::DrainWait(DistanceClass::Local), kind, 3);
            assert_eq!(b.kind_count(kind), 3, "{kind}");
            assert_eq!(b.cause_total(), b.kind_total());
            // No other kind's slot was touched.
            for other in StallBreakdown::CHARGEABLE_KINDS {
                if other != kind {
                    assert_eq!(b.kind_count(other), 0);
                }
            }
        }
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = StallBreakdown::default();
        a.charge(StallCause::ResponseWindow, Barrier::Isb, 4);
        let mut b = StallBreakdown::default();
        b.charge(
            StallCause::DrainWait(DistanceClass::Local),
            Barrier::Stlr,
            6,
        );
        a.merge(&b);
        assert_eq!(a.total, 10);
        assert_eq!(a.cause_total(), 10);
        assert_eq!(a.kind_total(), 10);
    }

    #[test]
    fn cause_labels_match_stall_cause_labels() {
        let causes = [
            StallCause::ResponseWindow,
            StallCause::MemoryBlock,
            StallCause::DrainWait(DistanceClass::Local),
            StallCause::DrainWait(DistanceClass::SameCluster),
            StallCause::DrainWait(DistanceClass::CrossCluster),
            StallCause::DrainWait(DistanceClass::CrossNode),
            StallCause::DrainWait(DistanceClass::Memory),
            StallCause::RobFull,
            StallCause::SbFull,
        ];
        for (c, l) in causes.iter().zip(StallBreakdown::CAUSE_LABELS.iter()) {
            assert_eq!(c.label(), *l);
        }
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        // Bit-length bucketing: 0 → bucket 0, 1 → 1, 2..3 → 2, 4..7 → 3 …
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(4), 3);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(LatencyHistogram::upper_bound(0), 0);
        assert_eq!(LatencyHistogram::upper_bound(3), 7);
        assert_eq!(LatencyHistogram::upper_bound(LATENCY_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.summary(), (0, 0, 0, 0));
    }

    #[test]
    fn single_sample_pins_every_quantile_to_itself() {
        let mut h = LatencyHistogram::default();
        h.record(100);
        // Every quantile is the bucket bound clamped to the observed max.
        assert_eq!(h.summary(), (100, 100, 100, 100));
    }

    #[test]
    fn merge_is_concatenation() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut both = LatencyHistogram::default();
        for s in [3u64, 9, 1000] {
            a.record(s);
            both.record(s);
        }
        for s in [70u64, 70_000] {
            b.record(s);
            both.record(s);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    use proptest::prelude::*;

    proptest! {
        /// Sum of bucket counts equals total, quantiles are monotone, and
        /// p999 never exceeds the observed maximum.
        #[test]
        fn histogram_invariants(samples in prop::collection::vec(0u64..1 << 50, 1..200)) {
            let mut h = LatencyHistogram::default();
            for &s in &samples {
                h.record(s);
            }
            prop_assert_eq!(h.total(), samples.len() as u64);
            prop_assert_eq!(h.counts.iter().sum::<u64>(), h.count);
            prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
            let (p50, p99, p999, max) = h.summary();
            prop_assert!(p50 <= p99);
            prop_assert!(p99 <= p999);
            prop_assert!(p999 <= max);
            // The median's bucket bound is never below the true median.
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let median = sorted[sorted.len().div_ceil(2) - 1];
            prop_assert!(p50 >= median || p50 == h.max());
        }

        /// Merging in either order gives the same histogram as recording
        /// everything into one.
        #[test]
        fn histogram_merge_commutes(
            xs in prop::collection::vec(0u64..1 << 40, 0..100),
            ys in prop::collection::vec(0u64..1 << 40, 0..100),
        ) {
            let mut a = LatencyHistogram::default();
            let mut b = LatencyHistogram::default();
            let mut whole = LatencyHistogram::default();
            for &s in &xs {
                a.record(s);
                whole.record(s);
            }
            for &s in &ys {
                b.record(s);
                whole.record(s);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(&ab, &whole);
        }
    }
}
