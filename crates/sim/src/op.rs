//! The workload-to-core interface: operations and simulated threads.
//!
//! A workload is a [`SimThread`] — a state machine the core polls for its
//! next [`Op`] whenever issue bandwidth is available. Two coupling levels
//! exist, mirroring real hardware:
//!
//! * **Fire-and-forget** ops ([`Op::Store`], value-unused [`Op::Load`],
//!   [`Op::Nops`]) are issued and the thread immediately continues — the
//!   core tracks their completion asynchronously, so independent work
//!   overlaps outstanding misses.
//! * **Value-consuming** ops (`Load` with `use_value`, [`Op::Rmw`]) suspend
//!   the thread until the data arrives; the value is then available via
//!   [`ThreadCtx::last_value`]. A suspended thread is exactly a data/control
//!   dependency in the pipeline.
//!
//! Dependency *idioms* (the paper's DATA/ADDR/CTRL deps) are expressed with
//! the `dep_on_last_load` flag: the flagged access may not begin before the
//! most recent load completes, but everything between them still flows.

use armbar_barriers::{Acquire, Barrier};

use crate::types::{Addr, Cycle};

/// Atomic read-modify-write flavours (single-instruction atomics à la
/// ARMv8.1 LSE: `LDADD`, `SWP`, `CAS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwKind {
    /// Fetch-and-add: returns the old value, stores `old + operand`.
    FetchAdd,
    /// Swap: returns the old value, stores `operand`.
    Swap,
    /// Compare-and-swap: `operand` is the new value, `expected` the test;
    /// stores `operand` iff the old value equals `expected`. Returns the old
    /// value either way.
    Cas {
        /// Value the location must hold for the swap to happen.
        expected: u64,
    },
}

/// One operation a thread asks its core to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` independent single-cycle ALU instructions (nops, adds, …).
    Nops(u32),
    /// A load.
    Load {
        /// Target address.
        addr: Addr,
        /// Suspend the thread until the value is available (the program
        /// consumes it); otherwise fire-and-forget.
        use_value: bool,
        /// Acquire annotation: both flavours make later memory ops wait
        /// for this load; RCsc (`LDAR`) additionally waits for earlier
        /// store-releases to drain before issuing.
        acquire: Acquire,
        /// Address-dependency on the most recent load: this load may not
        /// begin before that load completes.
        dep_on_last_load: bool,
    },
    /// A store (fire-and-forget into the store buffer).
    Store {
        /// Target address.
        addr: Addr,
        /// Value to write.
        value: u64,
        /// Store-release (`STLR`): all earlier accesses must be globally
        /// visible before this store is.
        release: bool,
        /// Data/address-dependency on the most recent load.
        dep_on_last_load: bool,
    },
    /// Atomic read-modify-write; always suspends for the old value.
    Rmw {
        /// Target address.
        addr: Addr,
        /// Operation.
        kind: RmwKind,
        /// Operand (addend / new value).
        operand: u64,
        /// Acquire semantics on the load half.
        acquire: bool,
        /// Release semantics on the store half.
        release: bool,
    },
    /// A standalone barrier instruction (`Barrier::INSTRUCTIONS`, or
    /// `Barrier::CtrlIsb` to model the CTRL+ISB idiom's ISB; `Barrier::None`
    /// is a no-op).
    Fence(Barrier),
    /// Wait until the committed value at `addr` differs from `expect`.
    ///
    /// If the value already differs when the op issues, this behaves exactly
    /// like [`Op::load_use`]: a real coherence access whose value reaches the
    /// thread via [`ThreadCtx::last_value`]. Otherwise the core *parks*: it
    /// registers on the line's directory waiter list and issues nothing
    /// until another core commits a store to that line (a WFE/monitor-style
    /// wait, or an ideal spin whose repeat polls are free local hits). On
    /// wake-up the condition is re-checked against committed memory, so
    /// spurious wakes re-park. Parked time is idle, not a barrier stall.
    WaitChange {
        /// Watched address.
        addr: Addr,
        /// Value the thread wants to stop seeing.
        expect: u64,
    },
    /// Zero-cost marker: the thread completed one iteration of the measured
    /// loop (increments [`CoreStats::iterations`]
    /// (crate::stats::CoreStats::iterations)).
    IterationMark,
    /// Thread is finished; the core goes idle.
    Halt,
}

impl Op {
    /// Plain fire-and-forget store.
    #[must_use]
    pub fn store(addr: Addr, value: u64) -> Op {
        Op::Store {
            addr,
            value,
            release: false,
            dep_on_last_load: false,
        }
    }

    /// Store-release (`STLR`).
    #[must_use]
    pub fn store_release(addr: Addr, value: u64) -> Op {
        Op::Store {
            addr,
            value,
            release: true,
            dep_on_last_load: false,
        }
    }

    /// Store whose data depends on the most recent load (bogus DATA DEP).
    #[must_use]
    pub fn store_dep(addr: Addr, value: u64) -> Op {
        Op::Store {
            addr,
            value,
            release: false,
            dep_on_last_load: true,
        }
    }

    /// Fire-and-forget load (value unused).
    #[must_use]
    pub fn load(addr: Addr) -> Op {
        Op::Load {
            addr,
            use_value: false,
            acquire: Acquire::No,
            dep_on_last_load: false,
        }
    }

    /// Load whose value the thread consumes (suspends until data returns).
    #[must_use]
    pub fn load_use(addr: Addr) -> Op {
        Op::Load {
            addr,
            use_value: true,
            acquire: Acquire::No,
            dep_on_last_load: false,
        }
    }

    /// RCsc load-acquire (`LDAR`) whose value the thread consumes.
    #[must_use]
    pub fn load_acquire(addr: Addr) -> Op {
        Op::Load {
            addr,
            use_value: true,
            acquire: Acquire::Sc,
            dep_on_last_load: false,
        }
    }

    /// RCpc load-acquire (`LDAPR`) whose value the thread consumes.
    #[must_use]
    pub fn load_acquire_pc(addr: Addr) -> Op {
        Op::Load {
            addr,
            use_value: true,
            acquire: Acquire::Pc,
            dep_on_last_load: false,
        }
    }

    /// Load with a bogus address dependency on the most recent load.
    #[must_use]
    pub fn load_dep(addr: Addr, use_value: bool) -> Op {
        Op::Load {
            addr,
            use_value,
            acquire: Acquire::No,
            dep_on_last_load: true,
        }
    }

    /// Atomic fetch-add with acquire+release semantics (a lock-style RMW).
    #[must_use]
    pub fn fetch_add_acq_rel(addr: Addr, operand: u64) -> Op {
        Op::Rmw {
            addr,
            kind: RmwKind::FetchAdd,
            operand,
            acquire: true,
            release: true,
        }
    }

    /// Park until the committed value at `addr` is no longer `expect`.
    #[must_use]
    pub fn wait_change(addr: Addr, expect: u64) -> Op {
        Op::WaitChange { addr, expect }
    }

    /// Does this op touch memory?
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Op::Load { .. } | Op::Store { .. } | Op::Rmw { .. } | Op::WaitChange { .. }
        )
    }
}

/// Context handed to [`SimThread::next`].
#[derive(Debug, Clone, Copy)]
pub struct ThreadCtx {
    /// Current simulated time.
    pub now: Cycle,
    /// Value produced by the most recent value-consuming load/RMW.
    pub last_value: u64,
    /// Number of completed iterations this thread has reported via
    /// workload-specific accounting (mirrors [`CoreStats::iterations`]
    /// (crate::stats::CoreStats::iterations)).
    pub iterations: u64,
}

impl ThreadCtx {
    /// The value returned by the most recent suspending load/RMW.
    #[must_use]
    pub fn last_value(&self) -> u64 {
        self.last_value
    }
}

/// A simulated thread: a deterministic state machine emitting operations.
///
/// `Send` is a supertrait so whole [`Machine`](crate::machine::Machine)s
/// (which own their threads) can move between worker threads of a parallel
/// sweep; simulated threads hold only their own state, so this costs
/// implementations nothing in practice.
pub trait SimThread: Send {
    /// Produce the next operation. Called whenever the core can accept one;
    /// after a value-consuming op, called only once the value is available
    /// (read it from [`ThreadCtx::last_value`]).
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op;

    /// Called when the thread's most recent op completed an *iteration* of
    /// the measured loop; workloads override nothing — cores call
    /// [`crate::machine::Machine`] accounting instead. Provided for
    /// workloads that want cycle-stamped progress callbacks.
    fn on_iteration(&mut self, _now: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        assert_eq!(
            Op::store(8, 1),
            Op::Store {
                addr: 8,
                value: 1,
                release: false,
                dep_on_last_load: false
            }
        );
        assert!(matches!(
            Op::store_release(8, 1),
            Op::Store { release: true, .. }
        ));
        assert!(matches!(
            Op::store_dep(8, 1),
            Op::Store {
                dep_on_last_load: true,
                ..
            }
        ));
        assert!(matches!(
            Op::load(8),
            Op::Load {
                use_value: false,
                acquire: Acquire::No,
                ..
            }
        ));
        assert!(matches!(
            Op::load_use(8),
            Op::Load {
                use_value: true,
                acquire: Acquire::No,
                ..
            }
        ));
        assert!(matches!(
            Op::load_acquire(8),
            Op::Load {
                use_value: true,
                acquire: Acquire::Sc,
                ..
            }
        ));
        assert!(matches!(
            Op::load_acquire_pc(8),
            Op::Load {
                use_value: true,
                acquire: Acquire::Pc,
                ..
            }
        ));
        assert!(matches!(
            Op::fetch_add_acq_rel(8, 2),
            Op::Rmw {
                kind: RmwKind::FetchAdd,
                acquire: true,
                release: true,
                ..
            }
        ));
        assert_eq!(Op::wait_change(8, 3), Op::WaitChange { addr: 8, expect: 3 });
    }

    #[test]
    fn memory_classification() {
        assert!(Op::store(0, 0).is_memory());
        assert!(Op::load(0).is_memory());
        assert!(Op::fetch_add_acq_rel(0, 1).is_memory());
        assert!(Op::wait_change(0, 0).is_memory());
        assert!(!Op::Nops(3).is_memory());
        assert!(!Op::Fence(Barrier::DmbFull).is_memory());
        assert!(!Op::Halt.is_memory());
        assert!(!Op::IterationMark.is_memory());
    }
}
