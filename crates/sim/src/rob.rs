//! Re-order buffer with in-order retirement.
//!
//! The ROB bounds how much work can be in flight past an incomplete
//! instruction. A pending barrier that holds its slot (`DMB full`, all
//! `DSB`s) lets later nops *issue* but not *retire*; once the ROB fills,
//! issue stalls — the indirect nop-throttling the paper observes in
//! Figure 4 ("saturating the reorder buffer").
//!
//! Runs of nops are coalesced into one entry to keep simulation cheap;
//! retirement bandwidth still drains them `retire_width` per cycle.

use std::collections::VecDeque;

/// Identifier of a non-nop instruction in flight (loads, stores, barriers).
pub type SlotId = u64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    /// `count` coalesced single-cycle ALU instructions (always complete).
    Nops { count: u32 },
    /// A tracked instruction, complete or not.
    Instr { id: SlotId, complete: bool },
}

/// The re-order buffer.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<EntryKind>,
    capacity: u32,
    used: u32,
    next_id: SlotId,
}

impl Rob {
    /// An empty ROB of the given capacity (instructions).
    #[must_use]
    pub fn new(capacity: u32) -> Rob {
        assert!(capacity > 0);
        Rob {
            entries: VecDeque::new(),
            capacity,
            used: 0,
            next_id: 0,
        }
    }

    /// Instructions currently in flight.
    #[must_use]
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Free slots.
    #[must_use]
    pub fn free(&self) -> u32 {
        self.capacity - self.used
    }

    /// Whether the ROB is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Whether no slot is free (issue must stall; when the head is an
    /// incomplete barrier this is the Figure 4 nop-throttling condition).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.used == self.capacity
    }

    /// Insert up to `want` nops (bounded by free space); returns how many
    /// were accepted.
    pub fn push_nops(&mut self, want: u32) -> u32 {
        let n = want.min(self.free());
        if n == 0 {
            return 0;
        }
        self.used += n;
        if let Some(EntryKind::Nops { count }) = self.entries.back_mut() {
            *count += n;
        } else {
            self.entries.push_back(EntryKind::Nops { count: n });
        }
        n
    }

    /// Insert a tracked instruction; `complete` marks it retirable
    /// immediately (stores, `DMB st`). Returns its id, or `None` if full.
    pub fn push_instr(&mut self, complete: bool) -> Option<SlotId> {
        if self.free() == 0 {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used += 1;
        self.entries.push_back(EntryKind::Instr { id, complete });
        Some(id)
    }

    /// Mark a previously pushed instruction complete.
    pub fn complete(&mut self, id: SlotId) {
        for e in &mut self.entries {
            if let EntryKind::Instr { id: eid, complete } = e {
                if *eid == id {
                    *complete = true;
                    return;
                }
            }
        }
    }

    /// Retire up to `width` instructions from the head, in order, stopping
    /// at the first incomplete one. Returns how many retired.
    pub fn retire(&mut self, width: u32) -> u32 {
        let mut retired = 0;
        while retired < width {
            match self.entries.front_mut() {
                None => break,
                Some(EntryKind::Nops { count }) => {
                    let take = (*count).min(width - retired);
                    *count -= take;
                    retired += take;
                    if *count == 0 {
                        self.entries.pop_front();
                    }
                }
                Some(EntryKind::Instr { complete, .. }) => {
                    if !*complete {
                        break;
                    }
                    self.entries.pop_front();
                    retired += 1;
                }
            }
        }
        self.used -= retired;
        retired
    }

    /// Whether the head instruction is incomplete (retirement is stalled).
    #[must_use]
    pub fn head_stalled(&self) -> bool {
        matches!(
            self.entries.front(),
            Some(EntryKind::Instr {
                complete: false,
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nops_retire_at_width() {
        let mut rob = Rob::new(16);
        assert_eq!(rob.push_nops(10), 10);
        assert_eq!(rob.retire(4), 4);
        assert_eq!(rob.retire(4), 4);
        assert_eq!(rob.retire(4), 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn capacity_bounds_nop_insertion() {
        let mut rob = Rob::new(8);
        assert_eq!(rob.push_nops(20), 8);
        assert_eq!(rob.free(), 0);
        assert_eq!(rob.push_nops(1), 0);
    }

    #[test]
    fn incomplete_instr_blocks_retirement_of_younger_nops() {
        let mut rob = Rob::new(32);
        let id = rob.push_instr(false).unwrap();
        rob.push_nops(10);
        assert_eq!(rob.retire(8), 0, "incomplete head blocks everything");
        assert!(rob.head_stalled());
        rob.complete(id);
        assert_eq!(rob.retire(8), 8, "barrier + 7 nops");
        assert_eq!(rob.retire(8), 3);
        assert!(rob.is_empty());
    }

    #[test]
    fn complete_instr_retires_with_following_nops() {
        let mut rob = Rob::new(32);
        rob.push_nops(2);
        rob.push_instr(true).unwrap();
        rob.push_nops(2);
        assert_eq!(rob.retire(8), 5);
    }

    #[test]
    fn full_rob_rejects_instr() {
        let mut rob = Rob::new(2);
        rob.push_nops(2);
        assert!(rob.is_full());
        assert!(rob.push_instr(true).is_none());
        rob.retire(1);
        assert!(!rob.is_full());
        assert!(rob.push_instr(true).is_some());
    }

    #[test]
    fn retirement_is_in_order_across_mixed_entries() {
        let mut rob = Rob::new(32);
        let a = rob.push_instr(false).unwrap();
        let b = rob.push_instr(true).unwrap();
        assert_eq!(rob.retire(4), 0);
        rob.complete(a);
        assert_eq!(rob.retire(4), 2);
        let _ = b;
    }

    #[test]
    fn used_tracks_mixed_contents() {
        let mut rob = Rob::new(64);
        rob.push_nops(5);
        rob.push_instr(false).unwrap();
        rob.push_nops(3);
        assert_eq!(rob.used(), 9);
        assert_eq!(rob.free(), 55);
    }
}
