//! Cycle-level simulator of an ARMv8-class memory subsystem.
//!
//! This crate is the hardware substrate for reproducing *"No Barrier in the
//! Road"* (PPoPP 2020) on a non-ARM host. It models exactly the mechanisms
//! the paper's observations hinge on:
//!
//! * a per-core pipeline with bounded issue width and a bounded re-order
//!   buffer retired in order (so pending barriers create back-pressure —
//!   Observation 2 / Figure 4);
//! * a **non-FIFO store buffer** that drains asynchronously (so store latency
//!   is normally invisible, §2.2/§6);
//! * directory-based coherence over a clustered, NUMA topology (so accesses
//!   to lines last owned elsewhere become *remote memory references* with
//!   distance-dependent cost);
//! * an ACE-style interconnect where DMB-class barriers issue a *memory
//!   barrier transaction* answered at the inner **bi-section** boundary when
//!   snooping stays inside one node, while DSB-class barriers (and the
//!   conservative STLR implementations the paper measured) issue a
//!   *synchronization barrier transaction* that always travels to the inner
//!   **domain** boundary (Observations 3 & 5);
//! * per-platform latency profiles for the paper's four machines (Table 2).
//!
//! Workloads are [`op::SimThread`] state machines that feed an operation
//! stream to a core; stores and value-unused loads are fire-and-forget, so
//! independent work overlaps outstanding misses just as on real hardware.
//!
//! The simulator is deterministic: the same machine + threads produce the
//! same cycle counts on every host.
//!
//! # Example
//!
//! ```
//! use armbar_sim::{Machine, Platform, op::{Op, SimThread, ThreadCtx}};
//!
//! /// Stores a value then halts.
//! struct OneStore(bool);
//! impl SimThread for OneStore {
//!     fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
//!         if std::mem::replace(&mut self.0, true) {
//!             Op::Halt
//!         } else {
//!             Op::store(0x1000, 7)
//!         }
//!     }
//! }
//!
//! let mut m = Machine::new(Platform::kunpeng916());
//! let core = m.add_thread_on(0, Box::new(OneStore(false)));
//! let stats = m.run(1_000_000);
//! assert!(stats.halted);
//! assert!(m.core_stats(core).cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod core_model;
pub mod directory;
pub mod machine;
pub mod op;
pub mod platform;
pub mod rob;
pub mod stats;
pub mod storebuf;
pub mod topology;
pub mod trace;
pub mod types;

pub use machine::{Engine, Machine, RunStats};
pub use op::{Op, RmwKind, SimThread, ThreadCtx};
pub use platform::{LatencyParams, Platform, PlatformKind};
pub use stats::{CoreStats, LatencyHistogram, StallBreakdown, StallCause};
pub use topology::{Placement, Topology};
pub use trace::{Event, Trace};
pub use types::{Addr, CoreId, Cycle, DistanceClass, Line, LINE_BYTES};
