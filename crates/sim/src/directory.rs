//! Directory-based coherence model.
//!
//! The directory tracks, per cache line, an owner (the last writer, holding
//! the line exclusively) and a sharer set (readers since the last write). The
//! cost of an access is the transfer latency from the nearest current holder;
//! a write additionally invalidates all other copies. This is a deliberately
//! simple MESI-flavoured model: the paper's experiments only need "was this
//! access a remote memory reference, and how far did the snoop travel" — both
//! of which the directory answers exactly.
//!
//! Exclusive accesses to one line — stores draining and RMWs — additionally
//! **serialize**: the directory services one ownership transfer at a time per
//! line, so a queued writer waits for the in-flight transfer before paying its
//! own distance cost. This is the mechanism behind every "contended RMW"
//! result in the paper: n cores fetch-adding one counter cost Θ(n), not Θ(1),
//! which is why centralized barriers collapse at high core counts while
//! hierarchical ones spread arrivals over per-cluster lines. Reads stay
//! concurrent — a valid line serves any number of sharers at once.
//!
//! Two scale-out features serve the many-core topologies:
//!
//! * **Sharding.** Line state lives in one hash map per shard (one shard per
//!   NUMA node on big machines), with lines interleaved across shards by
//!   index. Sharding is a pure partition of the key space — every lookup
//!   lands in exactly one shard — so results are identical at any shard
//!   count; it exists so a 1024-core machine does not funnel every access
//!   through one ever-growing map (and so future parallel directories have a
//!   natural split).
//! * **Waiter lists.** A core executing [`Op::WaitChange`]
//!   (crate::op::Op::WaitChange) on a line whose value has not changed yet
//!   parks on the line's waiter list; the machine wakes exactly those cores
//!   when a store commits to the line, instead of polling every parked core
//!   every cycle.

use armbar_fxhash::FxHashMap;

use crate::platform::LatencyParams;
use crate::topology::Topology;
use crate::types::{CoreId, Cycle, DistanceClass, Line};

/// Per-line directory state.
#[derive(Debug, Clone, Default)]
struct LineState {
    /// Exclusive owner (last writer), if any.
    owner: Option<CoreId>,
    /// Cores holding a shared copy (including a reading owner).
    sharers: Vec<CoreId>,
    /// Cycle until which the line's exclusive-service port is occupied by an
    /// in-flight ownership transfer. Writes arriving earlier queue behind it.
    busy_until: Cycle,
}

/// One shard of the line map: line indices congruent to the shard's position
/// modulo the shard count.
#[derive(Debug, Clone, Default)]
struct Shard {
    /// Keyed with the unkeyed FxHash scheme: line numbers are small,
    /// sequential, and never attacker-controlled, and this map sits on the
    /// critical path of every simulated memory access.
    lines: FxHashMap<Line, LineState>,
    /// Cores parked on a line, waiting for a committed store to it.
    waiters: FxHashMap<Line, Vec<CoreId>>,
}

/// Result of consulting the directory for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// How far the line had to travel.
    pub distance: DistanceClass,
    /// Transfer latency in cycles.
    pub latency: Cycle,
    /// Whether the access was a remote memory reference.
    pub is_rmr: bool,
}

/// The coherence directory.
#[derive(Debug, Clone)]
pub struct Directory {
    shards: Vec<Shard>,
    /// Optional "home" core for otherwise-untouched regions: lets workloads
    /// model buffers whose lines were last touched by a phantom peer (the
    /// paper's alternating-thread construction in §3.2) without simulating
    /// the peer's warm-up pass.
    region_homes: Vec<(Line, Line, CoreId)>,
}

impl Directory {
    /// An empty single-shard directory (all lines in memory).
    #[must_use]
    pub fn new() -> Directory {
        Directory::with_shards(1)
    }

    /// An empty directory split into `shards` line-interleaved shards
    /// (clamped to at least one). Shard count never affects results — only
    /// which map a line's state lives in.
    #[must_use]
    pub fn with_shards(shards: usize) -> Directory {
        Directory {
            shards: vec![Shard::default(); shards.max(1)],
            region_homes: Vec::new(),
        }
    }

    /// Number of shards the line space is split across.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, line: Line) -> usize {
        (line.0 % self.shards.len() as u64) as usize
    }

    /// Declare that untouched lines in `[start, end)` (byte addresses
    /// rounded to lines) behave as if last written by `home`.
    pub fn set_region_home(&mut self, start_addr: u64, end_addr: u64, home: CoreId) {
        self.region_homes.push((
            Line::containing(start_addr),
            Line::containing(end_addr.saturating_sub(1)),
            home,
        ));
    }

    fn default_state(&self, line: Line) -> LineState {
        for &(lo, hi, home) in &self.region_homes {
            if line >= lo && line <= hi {
                return LineState {
                    owner: Some(home),
                    sharers: vec![home],
                    busy_until: 0,
                };
            }
        }
        LineState::default()
    }

    fn classify(
        topo: &Topology,
        requester: CoreId,
        state: &LineState,
        write: bool,
    ) -> DistanceClass {
        // Read hit: requester already shares (or owns) the line.
        if !write && (state.sharers.contains(&requester) || state.owner == Some(requester)) {
            return DistanceClass::Local;
        }
        // Write hit: requester owns exclusively, no other sharers.
        if write && state.owner == Some(requester) && state.sharers.iter().all(|&c| c == requester)
        {
            return DistanceClass::Local;
        }
        // Otherwise the line comes from the farthest holder we must snoop:
        // for writes, every copy must be invalidated, so the worst-distance
        // holder bounds the latency; for reads, the owner (or the nearest
        // sharer) supplies the data.
        let holders: Vec<CoreId> = if write {
            state
                .owner
                .into_iter()
                .chain(state.sharers.iter().copied())
                .filter(|&c| c != requester)
                .collect()
        } else {
            state
                .owner
                .into_iter()
                .filter(|&c| c != requester)
                .collect()
        };
        if holders.is_empty() {
            if !write && !state.sharers.is_empty() {
                // Shared-only line read: data can come from a sharer.
                return state
                    .sharers
                    .iter()
                    .map(|&c| topo.distance(requester, c))
                    .min()
                    .unwrap_or(DistanceClass::Memory);
            }
            return DistanceClass::Memory;
        }
        holders
            .iter()
            .map(|&c| topo.distance(requester, c))
            .max()
            .unwrap_or(DistanceClass::Memory)
    }

    /// Perform an access at cycle `now`: returns its cost classification and
    /// updates the directory (ownership transfer / sharer insertion /
    /// invalidation). Exclusive accesses queue behind the line's in-flight
    /// transfer, so the returned latency includes any wait for the line's
    /// service port; reads are served concurrently.
    pub fn access(
        &mut self,
        topo: &Topology,
        lat: &LatencyParams,
        requester: CoreId,
        line: Line,
        write: bool,
        now: Cycle,
    ) -> AccessOutcome {
        let shard = self.shard_of(line);
        let state = match self.shards[shard].lines.get(&line) {
            Some(s) => s.clone(),
            None => self.default_state(line),
        };
        let distance = Self::classify(topo, requester, &state, write);
        let transfer = lat.transfer_latency(distance);
        let (latency, new_state) = if write {
            let latency = state.busy_until.saturating_sub(now) + transfer;
            // Writer takes exclusive ownership; all other copies invalidated.
            let s = LineState {
                owner: Some(requester),
                sharers: vec![requester],
                busy_until: now + latency,
            };
            (latency, s)
        } else {
            let mut s = state;
            if !s.sharers.contains(&requester) {
                s.sharers.push(requester);
            }
            (transfer, s)
        };
        self.shards[shard].lines.insert(line, new_state);
        AccessOutcome {
            distance,
            latency,
            is_rmr: distance.is_rmr(),
        }
    }

    /// Peek at the cost of an access at cycle `now` without mutating
    /// directory state.
    #[must_use]
    pub fn peek(
        &self,
        topo: &Topology,
        lat: &LatencyParams,
        requester: CoreId,
        line: Line,
        write: bool,
        now: Cycle,
    ) -> AccessOutcome {
        let state = match self.shards[self.shard_of(line)].lines.get(&line) {
            Some(s) => s.clone(),
            None => self.default_state(line),
        };
        let distance = Self::classify(topo, requester, &state, write);
        let transfer = lat.transfer_latency(distance);
        let latency = if write {
            state.busy_until.saturating_sub(now) + transfer
        } else {
            transfer
        };
        AccessOutcome {
            distance,
            latency,
            is_rmr: distance.is_rmr(),
        }
    }

    /// Current exclusive owner of a line, if any (for tests/diagnostics).
    #[must_use]
    pub fn owner(&self, line: Line) -> Option<CoreId> {
        self.shards[self.shard_of(line)]
            .lines
            .get(&line)
            .and_then(|s| s.owner)
    }

    /// Park `core` on `line`: it will be reported by
    /// [`Directory::take_waiters_into`] when a store commits to the line.
    /// Idempotent per (line, core).
    pub fn park_waiter(&mut self, line: Line, core: CoreId) {
        let shard = self.shard_of(line);
        let list = self.shards[shard].waiters.entry(line).or_default();
        if !list.contains(&core) {
            list.push(core);
        }
    }

    /// Drain the waiter list of `line` into `out` (called on every committed
    /// store to the line). Waiters re-park themselves if their condition
    /// still holds.
    pub fn take_waiters_into(&mut self, line: Line, out: &mut Vec<CoreId>) {
        let shard = self.shard_of(line);
        if let Some(mut list) = self.shards[shard].waiters.remove(&line) {
            out.append(&mut list);
        }
    }

    /// Total number of parked (line, core) registrations (diagnostics).
    #[must_use]
    pub fn waiter_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.waiters.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn setup() -> (Topology, LatencyParams, Directory) {
        let p = Platform::kunpeng916();
        (p.topology, p.latency, Directory::new())
    }

    /// Accesses far enough apart in time that queuing never applies.
    const APART: Cycle = 1_000_000;

    #[test]
    fn cold_line_comes_from_memory() {
        let (t, l, mut d) = setup();
        let out = d.access(&t, &l, 0, Line(7), false, 0);
        assert_eq!(out.distance, DistanceClass::Memory);
        assert_eq!(out.latency, l.t_memory);
        assert!(out.is_rmr);
    }

    #[test]
    fn read_after_own_read_is_local() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 0, Line(7), false, 0);
        let out = d.access(&t, &l, 0, Line(7), false, 0);
        assert_eq!(out.distance, DistanceClass::Local);
        assert!(!out.is_rmr);
    }

    #[test]
    fn write_after_own_write_is_local() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 0, Line(7), true, 0);
        let out = d.access(&t, &l, 0, Line(7), true, APART);
        assert_eq!(out.distance, DistanceClass::Local);
        assert_eq!(out.latency, l.t_l1_hit);
    }

    #[test]
    fn ping_pong_between_nodes_is_cross_node() {
        let (t, l, mut d) = setup();
        let far = 40; // node 1 on kunpeng
        d.access(&t, &l, far, Line(3), true, 0);
        let out = d.access(&t, &l, 0, Line(3), true, APART);
        assert_eq!(out.distance, DistanceClass::CrossNode);
        assert_eq!(out.latency, l.t_cross_node);
        // Ownership transferred.
        assert_eq!(d.owner(Line(3)), Some(0));
    }

    #[test]
    fn write_invalidates_sharers_and_pays_worst_distance() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 1, Line(5), false, 0); // same cluster as 0
        d.access(&t, &l, 40, Line(5), false, 0); // other node
        let out = d.access(&t, &l, 0, Line(5), true, APART);
        // Must invalidate the cross-node sharer.
        assert_eq!(out.distance, DistanceClass::CrossNode);
    }

    #[test]
    fn read_of_written_line_transfers_from_owner() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 5, Line(9), true, 0); // cluster 1, node 0
        let out = d.access(&t, &l, 0, Line(9), false, APART);
        assert_eq!(out.distance, DistanceClass::CrossCluster);
    }

    #[test]
    fn region_home_makes_fresh_lines_remote() {
        let (t, l, mut d) = setup();
        d.set_region_home(0x10000, 0x20000, 40); // phantom in node 1
        let out = d.access(&t, &l, 0, Line::containing(0x10040), true, 0);
        assert_eq!(out.distance, DistanceClass::CrossNode);
        // Lines outside the region stay cold.
        let out2 = d.access(&t, &l, 0, Line::containing(0x3000), true, 0);
        assert_eq!(out2.distance, DistanceClass::Memory);
    }

    #[test]
    fn peek_does_not_mutate() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 40, Line(3), true, 0);
        let before = d.peek(&t, &l, 0, Line(3), true, APART);
        let again = d.peek(&t, &l, 0, Line(3), true, APART);
        assert_eq!(before, again);
        assert_eq!(d.owner(Line(3)), Some(40));
    }

    #[test]
    fn read_from_sharer_only_line_uses_nearest_sharer() {
        let (t, l, mut d) = setup();
        // Two sharers, no owner change: core 1 (near) and 40 (far) read a
        // memory line; then core 0 reads.
        d.access(&t, &l, 1, Line(11), false, 0);
        d.access(&t, &l, 40, Line(11), false, 0);
        let out = d.access(&t, &l, 0, Line(11), false, 0);
        assert_eq!(out.distance, DistanceClass::SameCluster);
    }

    #[test]
    fn exclusive_accesses_serialize_per_line() {
        // n same-cycle writers to one line queue behind each other: writer i
        // pays the sum of the service times ahead of it, so total cost grows
        // linearly with n — the mechanism that makes a centralized barrier
        // counter collapse at scale. Reads and other lines are unaffected.
        let (t, l, mut d) = setup();
        let first = d.access(&t, &l, 0, Line(20), true, 0);
        let second = d.access(&t, &l, 1, Line(20), true, 0);
        let third = d.access(&t, &l, 2, Line(20), true, 0);
        // Cores 0..3 sit in one cluster, so each queued transfer costs one
        // same-cluster hop on top of everything queued ahead of it.
        assert_eq!(second.latency, first.latency + l.t_same_cluster);
        assert_eq!(third.latency, second.latency + l.t_same_cluster);
        // A concurrent read is served immediately (from the current owner)…
        let read = d.access(&t, &l, 3, Line(20), false, 0);
        assert_eq!(read.latency, l.t_same_cluster);
        // …as is a write to a different line.
        let other = d.access(&t, &l, 4, Line(21), true, 0);
        assert_eq!(other.latency, l.t_memory);
        // Once the port frees up, queuing stops.
        let late = d.access(&t, &l, 1, Line(20), true, third.latency);
        assert_eq!(late.latency, l.t_same_cluster);
    }

    #[test]
    fn sharding_is_behaviour_invariant() {
        // The same access trace against 1-, 2-, and 7-shard directories must
        // produce identical outcomes and owners: sharding is pure partition.
        let p = Platform::kunpeng916();
        let (t, l) = (&p.topology, &p.latency);
        let trace: &[(CoreId, u64, bool)] = &[
            (0, 3, true),
            (40, 3, true),
            (1, 5, false),
            (40, 5, false),
            (0, 5, true),
            (5, 9, true),
            (0, 9, false),
            (0, 3, false),
        ];
        let run = |shards: usize| {
            let mut d = Directory::with_shards(shards);
            d.set_region_home(0x10000, 0x20000, 40);
            let outs: Vec<AccessOutcome> = trace
                .iter()
                .enumerate()
                .map(|(i, &(c, line, w))| d.access(t, l, c, Line(line), w, i as Cycle * APART))
                .collect();
            let owners: Vec<Option<CoreId>> = (0..12u64).map(|i| d.owner(Line(i))).collect();
            (outs, owners)
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(7));
    }

    #[test]
    fn waiter_lists_park_and_drain_per_line() {
        let mut d = Directory::with_shards(4);
        d.park_waiter(Line(1), 3);
        d.park_waiter(Line(1), 9);
        d.park_waiter(Line(1), 3); // idempotent
        d.park_waiter(Line(2), 7);
        assert_eq!(d.waiter_count(), 3);
        let mut woken = Vec::new();
        d.take_waiters_into(Line(1), &mut woken);
        assert_eq!(woken, vec![3, 9]);
        assert_eq!(d.waiter_count(), 1);
        // Draining again is a no-op; line 2's waiter is untouched.
        d.take_waiters_into(Line(1), &mut woken);
        assert_eq!(woken.len(), 2);
        d.take_waiters_into(Line(2), &mut woken);
        assert_eq!(woken, vec![3, 9, 7]);
        assert_eq!(d.waiter_count(), 0);
    }
}
