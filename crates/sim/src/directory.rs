//! Directory-based coherence model.
//!
//! A single global directory tracks, per cache line, an owner (the last
//! writer, holding the line exclusively) and a sharer set (readers since the
//! last write). The cost of an access is the transfer latency from the
//! nearest current holder; a write additionally invalidates all other
//! copies. This is a deliberately simple MESI-flavoured model: the paper's
//! experiments only need "was this access a remote memory reference, and how
//! far did the snoop travel" — both of which the directory answers exactly.

use armbar_fxhash::FxHashMap;

use crate::platform::LatencyParams;
use crate::topology::Topology;
use crate::types::{CoreId, Cycle, DistanceClass, Line};

/// Per-line directory state.
#[derive(Debug, Clone, Default)]
struct LineState {
    /// Exclusive owner (last writer), if any.
    owner: Option<CoreId>,
    /// Cores holding a shared copy (including a reading owner).
    sharers: Vec<CoreId>,
}

/// Result of consulting the directory for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// How far the line had to travel.
    pub distance: DistanceClass,
    /// Transfer latency in cycles.
    pub latency: Cycle,
    /// Whether the access was a remote memory reference.
    pub is_rmr: bool,
}

/// The global coherence directory.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Keyed with the unkeyed FxHash scheme: line numbers are small,
    /// sequential, and never attacker-controlled, and this map sits on the
    /// critical path of every simulated memory access.
    lines: FxHashMap<Line, LineState>,
    /// Optional "home" core for otherwise-untouched regions: lets workloads
    /// model buffers whose lines were last touched by a phantom peer (the
    /// paper's alternating-thread construction in §3.2) without simulating
    /// the peer's warm-up pass.
    region_homes: Vec<(Line, Line, CoreId)>,
}

impl Directory {
    /// An empty directory (all lines in memory).
    #[must_use]
    pub fn new() -> Directory {
        Directory {
            lines: FxHashMap::default(),
            region_homes: Vec::new(),
        }
    }

    /// Declare that untouched lines in `[start, end)` (byte addresses
    /// rounded to lines) behave as if last written by `home`.
    pub fn set_region_home(&mut self, start_addr: u64, end_addr: u64, home: CoreId) {
        self.region_homes.push((
            Line::containing(start_addr),
            Line::containing(end_addr.saturating_sub(1)),
            home,
        ));
    }

    fn default_state(&self, line: Line) -> LineState {
        for &(lo, hi, home) in &self.region_homes {
            if line >= lo && line <= hi {
                return LineState {
                    owner: Some(home),
                    sharers: vec![home],
                };
            }
        }
        LineState::default()
    }

    fn classify(
        topo: &Topology,
        requester: CoreId,
        state: &LineState,
        write: bool,
    ) -> DistanceClass {
        // Read hit: requester already shares (or owns) the line.
        if !write && (state.sharers.contains(&requester) || state.owner == Some(requester)) {
            return DistanceClass::Local;
        }
        // Write hit: requester owns exclusively, no other sharers.
        if write && state.owner == Some(requester) && state.sharers.iter().all(|&c| c == requester)
        {
            return DistanceClass::Local;
        }
        // Otherwise the line comes from the farthest holder we must snoop:
        // for writes, every copy must be invalidated, so the worst-distance
        // holder bounds the latency; for reads, the owner (or the nearest
        // sharer) supplies the data.
        let holders: Vec<CoreId> = if write {
            state
                .owner
                .into_iter()
                .chain(state.sharers.iter().copied())
                .filter(|&c| c != requester)
                .collect()
        } else {
            state
                .owner
                .into_iter()
                .filter(|&c| c != requester)
                .collect()
        };
        if holders.is_empty() {
            if !write && !state.sharers.is_empty() {
                // Shared-only line read: data can come from a sharer.
                return state
                    .sharers
                    .iter()
                    .map(|&c| topo.distance(requester, c))
                    .min()
                    .unwrap_or(DistanceClass::Memory);
            }
            return DistanceClass::Memory;
        }
        holders
            .iter()
            .map(|&c| topo.distance(requester, c))
            .max()
            .unwrap_or(DistanceClass::Memory)
    }

    /// Perform an access: returns its cost classification and updates the
    /// directory (ownership transfer / sharer insertion / invalidation).
    pub fn access(
        &mut self,
        topo: &Topology,
        lat: &LatencyParams,
        requester: CoreId,
        line: Line,
        write: bool,
    ) -> AccessOutcome {
        let state = match self.lines.get(&line) {
            Some(s) => s.clone(),
            None => self.default_state(line),
        };
        let distance = Self::classify(topo, requester, &state, write);
        let latency = lat.transfer_latency(distance);
        let new_state = if write {
            // Writer takes exclusive ownership; all other copies invalidated.
            LineState {
                owner: Some(requester),
                sharers: vec![requester],
            }
        } else {
            let mut s = state;
            if !s.sharers.contains(&requester) {
                s.sharers.push(requester);
            }
            s
        };
        self.lines.insert(line, new_state);
        AccessOutcome {
            distance,
            latency,
            is_rmr: distance.is_rmr(),
        }
    }

    /// Peek at the cost of an access without mutating directory state.
    #[must_use]
    pub fn peek(
        &self,
        topo: &Topology,
        lat: &LatencyParams,
        requester: CoreId,
        line: Line,
        write: bool,
    ) -> AccessOutcome {
        let state = match self.lines.get(&line) {
            Some(s) => s.clone(),
            None => self.default_state(line),
        };
        let distance = Self::classify(topo, requester, &state, write);
        AccessOutcome {
            distance,
            latency: lat.transfer_latency(distance),
            is_rmr: distance.is_rmr(),
        }
    }

    /// Current exclusive owner of a line, if any (for tests/diagnostics).
    #[must_use]
    pub fn owner(&self, line: Line) -> Option<CoreId> {
        self.lines.get(&line).and_then(|s| s.owner)
    }
}

impl Default for Directory {
    fn default() -> Self {
        Directory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn setup() -> (Topology, LatencyParams, Directory) {
        let p = Platform::kunpeng916();
        (p.topology, p.latency, Directory::new())
    }

    #[test]
    fn cold_line_comes_from_memory() {
        let (t, l, mut d) = setup();
        let out = d.access(&t, &l, 0, Line(7), false);
        assert_eq!(out.distance, DistanceClass::Memory);
        assert_eq!(out.latency, l.t_memory);
        assert!(out.is_rmr);
    }

    #[test]
    fn read_after_own_read_is_local() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 0, Line(7), false);
        let out = d.access(&t, &l, 0, Line(7), false);
        assert_eq!(out.distance, DistanceClass::Local);
        assert!(!out.is_rmr);
    }

    #[test]
    fn write_after_own_write_is_local() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 0, Line(7), true);
        let out = d.access(&t, &l, 0, Line(7), true);
        assert_eq!(out.distance, DistanceClass::Local);
    }

    #[test]
    fn ping_pong_between_nodes_is_cross_node() {
        let (t, l, mut d) = setup();
        let far = 40; // node 1 on kunpeng
        d.access(&t, &l, far, Line(3), true);
        let out = d.access(&t, &l, 0, Line(3), true);
        assert_eq!(out.distance, DistanceClass::CrossNode);
        assert_eq!(out.latency, l.t_cross_node);
        // Ownership transferred.
        assert_eq!(d.owner(Line(3)), Some(0));
    }

    #[test]
    fn write_invalidates_sharers_and_pays_worst_distance() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 1, Line(5), false); // same cluster as 0
        d.access(&t, &l, 40, Line(5), false); // other node
        let out = d.access(&t, &l, 0, Line(5), true);
        // Must invalidate the cross-node sharer.
        assert_eq!(out.distance, DistanceClass::CrossNode);
    }

    #[test]
    fn read_of_written_line_transfers_from_owner() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 5, Line(9), true); // cluster 1, node 0
        let out = d.access(&t, &l, 0, Line(9), false);
        assert_eq!(out.distance, DistanceClass::CrossCluster);
    }

    #[test]
    fn region_home_makes_fresh_lines_remote() {
        let (t, l, mut d) = setup();
        d.set_region_home(0x10000, 0x20000, 40); // phantom in node 1
        let out = d.access(&t, &l, 0, Line::containing(0x10040), true);
        assert_eq!(out.distance, DistanceClass::CrossNode);
        // Lines outside the region stay cold.
        let out2 = d.access(&t, &l, 0, Line::containing(0x3000), true);
        assert_eq!(out2.distance, DistanceClass::Memory);
    }

    #[test]
    fn peek_does_not_mutate() {
        let (t, l, mut d) = setup();
        d.access(&t, &l, 40, Line(3), true);
        let before = d.peek(&t, &l, 0, Line(3), true);
        let again = d.peek(&t, &l, 0, Line(3), true);
        assert_eq!(before, again);
        assert_eq!(d.owner(Line(3)), Some(40));
    }

    #[test]
    fn read_from_sharer_only_line_uses_nearest_sharer() {
        let (t, l, mut d) = setup();
        // Two sharers, no owner change: core 1 (near) and 40 (far) read a
        // memory line; then core 0 reads.
        d.access(&t, &l, 1, Line(11), false);
        d.access(&t, &l, 40, Line(11), false);
        let out = d.access(&t, &l, 0, Line(11), false);
        assert_eq!(out.distance, DistanceClass::SameCluster);
    }
}
