//! The non-FIFO store buffer.
//!
//! ARM "allows store operations to be reordered in the store buffer"
//! (paper §6): any pending entry whose constraints are satisfied may drain,
//! regardless of age. Constraints:
//!
//! * **Same-line order**: entries to one cache line drain oldest-first
//!   (coherence would make anything else unimplementable).
//! * **Gates**: a `DMB st`/`DMB full` places a gate; entries younger than a
//!   gate may not drain until it opens (all older entries drained *and* the
//!   ACE memory-barrier response arrived).
//! * **Release entries** (`STLR`): drain only after every older entry has
//!   drained and every older load has completed, with the extra
//!   domain-scope latency of the conservative implementations the paper
//!   measured.
//! * **Data readiness**: an entry whose data carries a bogus dependency on a
//!   load drains only after that load completes.
//!
//! Drains occupy one of `drain_ports` coherence ports each.

use crate::types::{Addr, Cycle, DistanceClass, Line};

/// Sequence number ordering stores and gates in program order.
pub type Seq = u64;

/// State of one buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbState {
    /// Waiting for its constraints to allow a drain.
    Pending,
    /// Coherence transaction in flight; globally visible at `done_at`.
    Draining {
        /// Completion time.
        done_at: Cycle,
    },
}

/// A buffered store.
#[derive(Debug, Clone)]
pub struct SbEntry {
    /// Program-order sequence number.
    pub seq: Seq,
    /// Target address (8-byte cell).
    pub addr: Addr,
    /// Target line.
    pub line: Line,
    /// Value to write.
    pub value: u64,
    /// Store-release (`STLR`)?
    pub release: bool,
    /// Earliest cycle the data is available (dependency on a load).
    pub data_ready_at: Cycle,
    /// Current state.
    pub state: SbState,
    /// Distance class of the drain, recorded when the drain starts.
    pub drain_distance: Option<DistanceClass>,
}

impl SbEntry {
    /// Whether this entry's drain crossed a NUMA node (false while pending).
    #[must_use]
    pub fn drain_crossed_node(&self) -> bool {
        self.drain_distance.is_some_and(DistanceClass::crosses_node)
    }

    /// Whether this entry's drain was a remote memory reference.
    #[must_use]
    pub fn drain_was_rmr(&self) -> bool {
        self.drain_distance.is_some_and(DistanceClass::is_rmr)
    }
}

/// A `DMB st`-style gate inside the buffer.
#[derive(Debug, Clone)]
pub struct SbGate {
    /// Entries with `seq` < this are "older than the gate".
    pub seq: Seq,
    /// Once all older entries drain, the response arrives at this time
    /// (set by the core when that condition is met); `None` while waiting.
    pub open_at: Option<Cycle>,
    /// Whether any older drain crossed a node (determines response scope).
    pub crossed_node: bool,
    /// Whether any store was buffered when the gate was placed — an idle
    /// gate gets the cheap response.
    pub had_priors: bool,
}

/// The store buffer.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: Vec<SbEntry>,
    gates: Vec<SbGate>,
    capacity: u32,
    drain_ports: u32,
    draining: u32,
    /// Drain strictly in program order (ablation; ARM buffers are not
    /// ordered).
    fifo: bool,
    /// Worst distance among drains since the last barrier window reset —
    /// consulted when a barrier computes its response scope.
    pub worst_recent_distance: DistanceClass,
}

impl StoreBuffer {
    /// Empty buffer.
    #[must_use]
    pub fn new(capacity: u32, drain_ports: u32) -> StoreBuffer {
        StoreBuffer::with_order(capacity, drain_ports, false)
    }

    /// Empty buffer with an explicit drain-order policy (`fifo = true` is
    /// the x86-style ablation).
    #[must_use]
    pub fn with_order(capacity: u32, drain_ports: u32, fifo: bool) -> StoreBuffer {
        assert!(capacity > 0 && drain_ports > 0);
        StoreBuffer {
            entries: Vec::new(),
            gates: Vec::new(),
            capacity,
            drain_ports,
            draining: 0,
            fifo,
            worst_recent_distance: DistanceClass::Local,
        }
    }

    /// Number of buffered (pending or draining) stores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no stores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new store can be accepted.
    #[must_use]
    pub fn has_space(&self) -> bool {
        (self.entries.len() as u32) < self.capacity
    }

    /// Buffer a store. Caller must have checked [`StoreBuffer::has_space`].
    pub fn push(&mut self, entry: SbEntry) {
        debug_assert!(self.has_space());
        debug_assert!(
            self.entries.last().is_none_or(|e| e.seq < entry.seq),
            "stores must arrive in program order"
        );
        self.entries.push(entry);
    }

    /// Place a gate after all currently buffered stores.
    ///
    /// A gate placed while an earlier gate is still pending is *not*
    /// prior-free: the older gate's response must still be collected before
    /// this one, so it cannot take the cheap idle-barrier path even if no
    /// store sits between them.
    pub fn push_gate(&mut self, seq: Seq) {
        let had_priors = !self.entries.is_empty() || !self.gates.is_empty();
        self.push_gate_with_meta(seq, had_priors);
    }

    /// Place a gate, stating explicitly whether stores were outstanding.
    pub fn push_gate_with_meta(&mut self, seq: Seq, had_priors: bool) {
        self.gates.push(SbGate {
            seq,
            open_at: None,
            crossed_node: false,
            had_priors,
        });
    }

    /// Iterate gates immutably.
    pub fn gates_iter(&self) -> impl Iterator<Item = &SbGate> {
        self.gates.iter()
    }

    /// Oldest un-drained sequence number, if any.
    #[must_use]
    pub fn oldest_pending_seq(&self) -> Option<Seq> {
        self.entries.iter().map(|e| e.seq).min()
    }

    /// All entries older than `seq` have fully drained?
    #[must_use]
    pub fn drained_before(&self, seq: Seq) -> bool {
        self.entries.iter().all(|e| e.seq >= seq)
    }

    /// Forward the youngest buffered value for `addr`, if any
    /// (store-to-load forwarding).
    #[must_use]
    pub fn forward(&self, addr: Addr) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    /// The first (oldest) gate that is not yet open.
    #[must_use]
    pub fn blocking_gate(&self, now: Cycle) -> Option<&SbGate> {
        self.gates
            .iter()
            .find(|g| g.open_at.is_none_or(|t| t > now))
    }

    /// Iterate gates mutably (the core updates `open_at` when conditions
    /// are met).
    pub fn gates_mut(&mut self) -> impl Iterator<Item = &mut SbGate> {
        self.gates.iter_mut()
    }

    /// Drop gates that have opened at or before `now`.
    pub fn expire_gates(&mut self, now: Cycle) {
        self.gates.retain(|g| g.open_at.is_none_or(|t| t > now));
    }

    /// Select the next entry allowed to start draining at `now`, given
    /// whether all loads older than a candidate release store are complete
    /// (`loads_done_before(seq)`).
    ///
    /// Returns the index into the internal entry list.
    pub fn pick_drain_candidate(
        &self,
        now: Cycle,
        loads_done_before: impl Fn(Seq) -> bool,
    ) -> Option<usize> {
        if self.draining >= self.drain_ports {
            return None;
        }
        let gate_limit: Seq = self
            .gates
            .iter()
            .filter(|g| g.open_at.is_none_or(|t| t > now))
            .map(|g| g.seq)
            .min()
            .unwrap_or(Seq::MAX);
        'outer: for (i, e) in self.entries.iter().enumerate() {
            if !matches!(e.state, SbState::Pending) {
                if self.fifo {
                    // FIFO ablation: nothing younger may start while an
                    // older entry is still in flight.
                    break;
                }
                continue;
            }
            if e.seq >= gate_limit {
                // Behind a closed gate; non-FIFO freedom does not extend
                // past a DMB st.
                continue;
            }
            if e.data_ready_at > now {
                continue;
            }
            // Same-line order: an older entry to the same line must go first.
            for other in &self.entries {
                if other.line == e.line && other.seq < e.seq {
                    continue 'outer;
                }
            }
            if e.release {
                // STLR: all older stores drained, all older loads complete.
                if self.entries.iter().any(|o| o.seq < e.seq) {
                    if self.fifo {
                        break;
                    }
                    continue;
                }
                if !loads_done_before(e.seq) {
                    if self.fifo {
                        break;
                    }
                    continue;
                }
            }
            return Some(i);
        }
        None
    }

    /// Mark entry `i` as draining until `done_at`.
    pub fn start_drain(&mut self, i: usize, done_at: Cycle, distance: DistanceClass) {
        self.start_drain_with_meta(i, done_at, distance);
    }

    /// Mark entry `i` as draining until `done_at`, recording the distance
    /// class on the entry for barrier-scope tracking.
    pub fn start_drain_with_meta(&mut self, i: usize, done_at: Cycle, distance: DistanceClass) {
        let e = &mut self.entries[i];
        debug_assert!(matches!(e.state, SbState::Pending));
        e.state = SbState::Draining { done_at };
        e.drain_distance = Some(distance);
        self.draining += 1;
        if distance > self.worst_recent_distance {
            self.worst_recent_distance = distance;
        }
    }

    /// Remove entries whose drains completed at or before `now`; returns
    /// the drained entries (for memory commit).
    pub fn complete_drains(&mut self, now: Cycle) -> Vec<SbEntry> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if let SbState::Draining { done_at } = self.entries[i].state {
                if done_at <= now {
                    done.push(self.entries.remove(i));
                    self.draining -= 1;
                    continue;
                }
            }
            i += 1;
        }
        done
    }

    /// Earliest future event inside the buffer (drain completion, gate
    /// opening, data becoming ready), if any.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut consider = |t: Cycle| {
            if t > now {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        };
        for e in &self.entries {
            match e.state {
                SbState::Draining { done_at } => consider(done_at),
                SbState::Pending => {
                    if e.data_ready_at > now {
                        consider(e.data_ready_at);
                    }
                }
            }
        }
        for g in &self.gates {
            if let Some(t) = g.open_at {
                consider(t);
            }
        }
        best
    }

    /// Entry view for diagnostics/tests.
    #[must_use]
    pub fn entries(&self) -> &[SbEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: Seq, addr: Addr) -> SbEntry {
        SbEntry {
            seq,
            addr,
            line: Line::containing(addr),
            value: seq,
            release: false,
            data_ready_at: 0,
            state: SbState::Pending,
            drain_distance: None,
        }
    }

    #[test]
    fn non_fifo_drain_allows_young_first() {
        let mut sb = StoreBuffer::new(8, 2);
        sb.push(entry(0, 0));
        sb.push(entry(1, 64));
        // Start draining the old one; the young one may still start.
        let i = sb.pick_drain_candidate(0, |_| true).unwrap();
        sb.start_drain(i, 100, DistanceClass::CrossNode);
        let j = sb.pick_drain_candidate(0, |_| true).unwrap();
        assert_ne!(i, j);
    }

    #[test]
    fn same_line_order_enforced() {
        let mut sb = StoreBuffer::new(8, 2);
        sb.push(entry(0, 0));
        sb.push(entry(1, 8)); // same line as 0
        let i = sb.pick_drain_candidate(0, |_| true).unwrap();
        assert_eq!(sb.entries()[i].seq, 0, "oldest same-line entry first");
        sb.start_drain(i, 50, DistanceClass::Local);
        // Younger same-line entry must wait until the older one LEAVES.
        assert!(sb.pick_drain_candidate(0, |_| true).is_none());
        sb.complete_drains(50);
        assert!(sb.pick_drain_candidate(50, |_| true).is_some());
    }

    #[test]
    fn gate_blocks_younger_entries() {
        let mut sb = StoreBuffer::new(8, 4);
        sb.push(entry(0, 0));
        sb.push_gate(1);
        sb.push(entry(2, 64));
        let i = sb.pick_drain_candidate(0, |_| true).unwrap();
        assert_eq!(sb.entries()[i].seq, 0);
        sb.start_drain(i, 10, DistanceClass::Local);
        assert!(
            sb.pick_drain_candidate(0, |_| true).is_none(),
            "gate closed"
        );
        sb.complete_drains(10);
        // Core opens the gate once pre-gate drains finish + response.
        sb.gates_mut().next().unwrap().open_at = Some(30);
        assert!(
            sb.pick_drain_candidate(20, |_| true).is_none(),
            "gate not open yet"
        );
        sb.expire_gates(30);
        assert!(sb.pick_drain_candidate(30, |_| true).is_some());
    }

    #[test]
    fn gate_behind_pending_gate_is_not_prior_free() {
        // Regression: had_priors used to look only at `entries`, so a
        // second back-to-back DMB st was treated as an idle barrier.
        let mut sb = StoreBuffer::new(8, 4);
        sb.push_gate(0);
        sb.push_gate(1);
        let gates: Vec<bool> = sb.gates_iter().map(|g| g.had_priors).collect();
        assert_eq!(gates, vec![false, true]);
    }

    #[test]
    fn gate_on_empty_buffer_is_prior_free() {
        let mut sb = StoreBuffer::new(8, 4);
        sb.push_gate(0);
        assert!(!sb.gates_iter().next().unwrap().had_priors);
    }

    #[test]
    fn release_waits_for_older_stores_and_loads() {
        let mut sb = StoreBuffer::new(8, 4);
        sb.push(entry(0, 0));
        let mut rel = entry(1, 64);
        rel.release = true;
        sb.push(rel);
        // Older store pending: release may not drain (but the older one may).
        let i = sb.pick_drain_candidate(0, |_| true).unwrap();
        assert_eq!(sb.entries()[i].seq, 0);
        sb.start_drain(i, 5, DistanceClass::Local);
        assert!(sb.pick_drain_candidate(0, |_| true).is_none());
        sb.complete_drains(5);
        // Loads incomplete: still blocked.
        assert!(sb.pick_drain_candidate(5, |_| false).is_none());
        assert!(sb.pick_drain_candidate(5, |_| true).is_some());
    }

    #[test]
    fn data_dependency_delays_drain() {
        let mut sb = StoreBuffer::new(8, 4);
        let mut e = entry(0, 0);
        e.data_ready_at = 100;
        sb.push(e);
        assert!(sb.pick_drain_candidate(50, |_| true).is_none());
        assert!(sb.pick_drain_candidate(100, |_| true).is_some());
        assert_eq!(sb.next_event(50), Some(100));
    }

    #[test]
    fn forwarding_returns_youngest_value() {
        let mut sb = StoreBuffer::new(8, 4);
        sb.push(SbEntry {
            value: 1,
            ..entry(0, 16)
        });
        sb.push(SbEntry {
            value: 2,
            ..entry(1, 16)
        });
        assert_eq!(sb.forward(16), Some(2));
        assert_eq!(sb.forward(24), None);
    }

    #[test]
    fn drain_ports_bound_concurrency() {
        let mut sb = StoreBuffer::new(8, 1);
        sb.push(entry(0, 0));
        sb.push(entry(1, 64));
        let i = sb.pick_drain_candidate(0, |_| true).unwrap();
        sb.start_drain(i, 100, DistanceClass::Local);
        assert!(
            sb.pick_drain_candidate(0, |_| true).is_none(),
            "single port busy"
        );
    }

    #[test]
    fn capacity_is_respected() {
        let mut sb = StoreBuffer::new(2, 1);
        sb.push(entry(0, 0));
        sb.push(entry(1, 64));
        assert!(!sb.has_space());
    }

    #[test]
    fn complete_drains_commits_and_frees() {
        let mut sb = StoreBuffer::new(4, 2);
        sb.push(entry(0, 0));
        let i = sb.pick_drain_candidate(0, |_| true).unwrap();
        sb.start_drain(i, 7, DistanceClass::SameCluster);
        assert!(sb.complete_drains(6).is_empty());
        let done = sb.complete_drains(7);
        assert_eq!(done.len(), 1);
        assert!(sb.is_empty());
        assert_eq!(sb.worst_recent_distance, DistanceClass::SameCluster);
    }
}
