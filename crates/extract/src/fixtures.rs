//! The checked-in `.s` corpus under `corpus/asm/`, embedded at compile
//! time, plus the retired hand-built twins.
//!
//! These three fixtures are the *production* source of the
//! implementation-sized cases in `analyze`'s lint corpus: the corpus lifts
//! them through [`crate::lift`]. The `wmm::unroll` builders that used to
//! construct the same programs by hand are kept as **differential
//! fixtures** only — [`hand_built`] reconstructs each twin (builder plus
//! the corpus's seeded fence edits) so tests can prove, with the explorer,
//! that the lifted and hand-built programs have equal outcome sets. They
//! are in fact structurally identical instruction-for-instruction, which
//! the equivalence tests also pin down; the outcome-set gate is the one
//! that would survive a benign re-numbering.

use armbar_barriers::Barrier;
use armbar_wmm::model::{Instr, Program};
use armbar_wmm::unroll::{
    mcs_handoff_unrolled, mcs_prologue_fence_index, pilot_roundtrip_unrolled,
    ticket_handoff_unrolled,
};

use crate::lift::{lift, Lifted};
use crate::parse::AsmError;

/// `corpus/asm/mcs_handoff.s`: 5 handoffs, 4 payload words, 6-store
/// critical sections; over-strong `dsb ish` prologue and a stray trailing
/// `dmb ishst` seeded in.
pub const MCS_HANDOFF: &str = include_str!("../../../corpus/asm/mcs_handoff.s");

/// `corpus/asm/ticket_lock.s`: 3 rounds, 2 payload words, 2-store critical
/// sections, `dsb ishst` publish (over-strong) and `dmb ishld` acquire.
pub const TICKET_LOCK: &str = include_str!("../../../corpus/asm/ticket_lock.s");

/// `corpus/asm/pilot_roundtrip.s`: 19-store phase chains, 5 polls, and a
/// seeded redundant `dmb ishst` inside the claim phase.
pub const PILOT_ROUNDTRIP: &str = include_str!("../../../corpus/asm/pilot_roundtrip.s");

/// Every good fixture, `(name, source)`, in corpus order.
#[must_use]
pub fn all() -> [(&'static str, &'static str); 3] {
    [
        ("mcs_handoff", MCS_HANDOFF),
        ("ticket_lock", TICKET_LOCK),
        ("pilot_roundtrip", PILOT_ROUNDTRIP),
    ]
}

/// Every malformed fixture under `corpus/asm/bad/`, `(name, source)`.
#[must_use]
pub fn all_bad() -> [(&'static str, &'static str); 5] {
    [
        (
            "unknown_mnemonic",
            include_str!("../../../corpus/asm/bad/unknown_mnemonic.s"),
        ),
        (
            "unbounded_loop",
            include_str!("../../../corpus/asm/bad/unbounded_loop.s"),
        ),
        (
            "undeclared_symbol",
            include_str!("../../../corpus/asm/bad/undeclared_symbol.s"),
        ),
        (
            "budget_exceeded",
            include_str!("../../../corpus/asm/bad/budget_exceeded.s"),
        ),
        (
            "private_violation",
            include_str!("../../../corpus/asm/bad/private_violation.s"),
        ),
    ]
}

/// Lift a named fixture.
///
/// # Errors
///
/// Propagates the lifter's [`AsmError`] — which for the checked-in
/// fixtures would itself be a test failure.
///
/// # Panics
///
/// Panics on an unknown fixture name.
pub fn lift_fixture(name: &str) -> Result<Lifted, AsmError> {
    let (_, src) = all()
        .into_iter()
        .find(|&(n, _)| n == name)
        .unwrap_or_else(|| panic!("unknown fixture `{name}`"));
    lift(src)
}

/// The retired hand-built twin of a named fixture: the `wmm::unroll`
/// builder output with the corpus's seeded fence edits applied.
///
/// # Panics
///
/// Panics on an unknown fixture name.
#[must_use]
pub fn hand_built(name: &str) -> Program {
    match name {
        "mcs_handoff" => {
            let mut p = mcs_handoff_unrolled(5, 4, 6, Barrier::DmbFull, Barrier::DmbFull);
            // Over-strengthen the prologue publish fence...
            p.threads[0].instrs[mcs_prologue_fence_index(4)] = Instr::Fence(Barrier::DsbFull);
            // ...and append a stray trailing store fence on the successor.
            p.threads[1].instrs.push(Instr::Fence(Barrier::DmbSt));
            p
        }
        "ticket_lock" => ticket_handoff_unrolled(3, 2, 2, Barrier::DsbSt, Barrier::DmbLd),
        "pilot_roundtrip" => {
            let mut p = pilot_roundtrip_unrolled(19, 5);
            // A redundant fence inside the claim-phase coherence chain.
            p.threads[0].instrs.insert(10, Instr::Fence(Barrier::DmbSt));
            p
        }
        other => panic!("unknown fixture `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_lifts() {
        for (name, _) in all() {
            let lifted = lift_fixture(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(lifted.total_instrs() > 0, "{name} lifted empty");
        }
    }

    #[test]
    fn lifted_fixtures_are_structurally_identical_to_the_hand_built_twins() {
        for (name, _) in all() {
            let lifted = lift_fixture(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            let hand = hand_built(name);
            assert_eq!(
                lifted.program, hand,
                "{name}: lifted program diverges from the hand-built twin"
            );
        }
    }

    #[test]
    fn every_bad_fixture_is_rejected_with_a_position() {
        for (name, src) in all_bad() {
            let err = lift(src).expect_err(name);
            assert!(err.pos.line >= 1, "{name}: missing position");
            assert!(!err.msg.is_empty(), "{name}: empty message");
        }
    }
}
