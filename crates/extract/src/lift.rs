//! The lifter: parsed AArch64 text → a loop-free [`Program`] by
//! per-thread symbolic execution with bounded back-edge unrolling.
//!
//! # Semantics
//!
//! Each declared thread is executed from its entry label with an
//! abstract register file. Values are tracked as:
//!
//! * **constants** — `mov`/`add`/`sub`/`eor` over known values fold, so
//!   counted loops (`mov x9, #N … sub x9, x9, #1; cbnz x9, L`) unroll
//!   *exactly*, emitting one model instruction per dynamic access;
//! * **symbol addresses** — `ldr xN, =symbol` binds the literal-pool
//!   address; adding a load-derived zero to an address marks the next
//!   dereference with an address dependency;
//! * **loaded values** — each `ldr`/`ldar`/`ldapr`/`ldxr` of a symbol
//!   emits a model [`Load`](Instr::Load) into a *fresh* dense `wmm`
//!   register (allocation order = emission order, which keeps lifted
//!   register numbering aligned with the retired `wmm::unroll`
//!   builders), and the architectural register remembers which model
//!   register holds the value — `eor x, v, v` / `add` then fold it into
//!   the `DepZero`/`DepConst` bogus-dependency values of the paper.
//!
//! Branches on *known* values resolve concretely. Branches on
//! load-derived values cannot be decided statically:
//!
//! * a **backward** conditional branch is a spin: the back-edge is taken
//!   `unroll - 1` extra times (default bound 1: fall straight through),
//!   the standard bounded-unrolling reduction also used by the retired
//!   hand builders. The spin-exit control dependency is deliberately
//!   dropped — under-approximating dependencies over-approximates the
//!   outcome set, which is the sound direction for the lint's
//!   redundancy/over-strength verdicts;
//! * a **forward** conditional branch is lifted as the fall-through path
//!   with a control dependency: every later store in the thread carries
//!   `ctrl_dep` on the branch condition's model register (the
//!   architectural rule — once an unresolved branch is in flight, no
//!   younger store may retire; loads may still speculate);
//! * an **unconditional backward** branch never terminates and is
//!   rejected as an unbounded loop.
//!
//! `stxr` is lifted as its store with the status register set to 0
//! (success on the first attempt — the LL/SC retry loop's bounded
//! unrolling), so the customary `cbnz status, retry` resolves concretely.
//!
//! # Symbol map
//!
//! Every memory access must dereference a declared symbol's address:
//! `shared` symbols are visible to all threads, `private` symbols only
//! to their owner, and an access through anything but a symbol address
//! (or to an undeclared name) is an error. Symbols pin their `wmm`
//! location explicitly, so intent predicates and lint reports keep
//! stable location numbering.

use std::collections::HashMap;

use armbar_barriers::{Acquire, Barrier};
use armbar_wmm::model::{Instr, Program, Src, Thread};

use crate::parse::{parse, AsmError, AsmFile, AsmInstr, Operand, SrcPos, SymbolDecl, ZR};

/// Per-thread budget of *emitted* model instructions.
pub const MAX_THREAD_INSTRS: usize = 512;

/// Per-thread budget of *fetched* (symbolically executed) instructions —
/// the backstop that turns a runaway counted loop into a diagnostic.
pub const MAX_FETCH_STEPS: usize = 65_536;

/// One entry of the lifted symbol map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name from the declaration pragma.
    pub name: String,
    /// The `wmm` location it pins.
    pub loc: u8,
    /// Initial value, when declared non-zero.
    pub init: Option<u64>,
    /// `Some(tid)` when thread-private.
    pub owner: Option<usize>,
}

/// The result of lifting one `.s` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lifted {
    /// The loop-free model program, threads in declaration order.
    pub program: Program,
    /// The symbol map (shared and private locations).
    pub symbols: Vec<Symbol>,
    /// Per-thread count of fetched source instructions (unrolling makes
    /// this exceed the emitted count).
    pub fetched: Vec<usize>,
}

impl Lifted {
    /// Total emitted model instructions across all threads.
    #[must_use]
    pub fn total_instrs(&self) -> usize {
        self.program.threads.iter().map(|t| t.instrs.len()).sum()
    }
}

/// Abstract value of an architectural register during lifting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Never written.
    Undef,
    /// A known constant.
    Const(u64),
    /// The address of symbol `sym` (index into the symbol table), with an
    /// optional address dependency picked up from register arithmetic.
    Addr { sym: usize, dep: Option<u8> },
    /// The (unknown) value loaded into model register `reg`.
    Loaded(u8),
    /// Known-zero computed from a loaded value (`eor v, v`): the bogus
    /// dependency seed.
    DepZero(u8),
    /// Known constant computed through a loaded value (`DepZero + k`).
    DepConst { reg: u8, value: u64 },
}

impl AbsVal {
    /// The model register this value syntactically depends on, if any.
    fn dep_reg(self) -> Option<u8> {
        match self {
            AbsVal::Loaded(r) | AbsVal::DepZero(r) | AbsVal::DepConst { reg: r, .. } => Some(r),
            _ => None,
        }
    }
}

struct ThreadLifter<'a> {
    file: &'a AsmFile,
    tid: usize,
    /// Entry indices of *other* threads (falling into one is an error).
    foreign_entries: HashMap<usize, String>,
    regs: [AbsVal; 32],
    emitted: Vec<Instr>,
    next_reg: u16,
    /// Remaining extra back-edge takes per branch site.
    spin_budget: HashMap<usize, usize>,
    /// Active control dependency for emitted stores.
    ctrl: Option<u8>,
    fetched: usize,
}

impl ThreadLifter<'_> {
    fn read(&self, reg: u8, pos: SrcPos) -> Result<AbsVal, AsmError> {
        if reg == ZR {
            return Ok(AbsVal::Const(0));
        }
        match self.regs[reg as usize] {
            AbsVal::Undef => Err(AsmError::new(
                pos,
                format!("x{reg} read before any value is assigned"),
            )),
            v => Ok(v),
        }
    }

    fn write(&mut self, reg: u8, val: AbsVal) {
        if reg != ZR {
            self.regs[reg as usize] = val;
        }
    }

    fn fresh_reg(&mut self, pos: SrcPos) -> Result<u8, AsmError> {
        let r = self.next_reg;
        self.next_reg += 1;
        u8::try_from(r).map_err(|_| AsmError::new(pos, "thread performs more than 256 loads"))
    }

    fn symbol(&self, idx: usize) -> &SymbolDecl {
        &self.file.symbols[idx]
    }

    /// Resolve a `[xN]` base to its symbol, enforcing ownership.
    fn resolve_base(&self, base: u8, pos: SrcPos) -> Result<(usize, Option<u8>), AsmError> {
        match self.read(base, pos)? {
            AbsVal::Addr { sym, dep } => {
                let decl = self.symbol(sym);
                if let Some(owner) = decl.owner {
                    if owner != self.tid {
                        return Err(AsmError::new(
                            pos,
                            format!(
                                "T{} accesses `{}`, which is private to T{owner}",
                                self.tid, decl.name
                            ),
                        ));
                    }
                }
                Ok((sym, dep))
            }
            _ => Err(AsmError::new(
                pos,
                format!("x{base} does not hold a declared symbol address at this point"),
            )),
        }
    }

    fn emit(&mut self, instr: Instr, pos: SrcPos) -> Result<(), AsmError> {
        if self.emitted.len() >= MAX_THREAD_INSTRS {
            return Err(AsmError::new(
                pos,
                format!("lifted thread exceeds the {MAX_THREAD_INSTRS}-instruction budget"),
            ));
        }
        self.emitted.push(instr);
        Ok(())
    }

    fn emit_load(&mut self, base: u8, acquire: Acquire, pos: SrcPos) -> Result<AbsVal, AsmError> {
        let (sym, dep) = self.resolve_base(base, pos)?;
        let reg = self.fresh_reg(pos)?;
        self.emit(
            Instr::Load {
                reg,
                loc: self.symbol(sym).loc,
                acquire,
                addr_dep: dep,
            },
            pos,
        )?;
        Ok(AbsVal::Loaded(reg))
    }

    fn emit_store(
        &mut self,
        value: AbsVal,
        base: u8,
        release: bool,
        pos: SrcPos,
    ) -> Result<(), AsmError> {
        let (sym, dep) = self.resolve_base(base, pos)?;
        let src = match value {
            AbsVal::Const(v) => Src::Const(v),
            AbsVal::Loaded(r) => Src::Reg(r),
            AbsVal::DepZero(r) => Src::DepConst { reg: r, value: 0 },
            AbsVal::DepConst { reg, value } => Src::DepConst { reg, value },
            AbsVal::Addr { .. } => {
                return Err(AsmError::new(
                    pos,
                    "storing a symbol address is not supported",
                ))
            }
            AbsVal::Undef => unreachable!("read() rejects Undef"),
        };
        self.emit(
            Instr::Store {
                loc: self.symbol(sym).loc,
                src,
                release,
                addr_dep: dep,
                ctrl_dep: self.ctrl,
            },
            pos,
        )
    }

    fn abs_add(&self, a: AbsVal, b: AbsVal, pos: SrcPos) -> Result<AbsVal, AsmError> {
        match (a, b) {
            (AbsVal::Const(x), AbsVal::Const(y)) => Ok(AbsVal::Const(x.wrapping_add(y))),
            (AbsVal::DepZero(r), AbsVal::Const(k)) | (AbsVal::Const(k), AbsVal::DepZero(r)) => {
                Ok(AbsVal::DepConst { reg: r, value: k })
            }
            (AbsVal::DepConst { reg, value }, AbsVal::Const(k))
            | (AbsVal::Const(k), AbsVal::DepConst { reg, value }) => Ok(AbsVal::DepConst {
                reg,
                value: value.wrapping_add(k),
            }),
            // Folding a load-derived zero into an address: the next
            // dereference carries an address dependency (the paper's
            // `ADDR DEP` idiom).
            (AbsVal::Addr { sym, dep: None }, z) | (z, AbsVal::Addr { sym, dep: None })
                if matches!(z, AbsVal::DepZero(_)) =>
            {
                Ok(AbsVal::Addr {
                    sym,
                    dep: z.dep_reg(),
                })
            }
            (AbsVal::Addr { sym, dep }, AbsVal::Const(0))
            | (AbsVal::Const(0), AbsVal::Addr { sym, dep }) => Ok(AbsVal::Addr { sym, dep }),
            _ => Err(AsmError::new(
                pos,
                "unsupported arithmetic on runtime values (only constants, load-derived zeros, and symbol addresses fold)",
            )),
        }
    }

    fn abs_sub(&self, a: AbsVal, b: AbsVal, pos: SrcPos) -> Result<AbsVal, AsmError> {
        match (a, b) {
            (AbsVal::Const(x), AbsVal::Const(y)) => Ok(AbsVal::Const(x.wrapping_sub(y))),
            (AbsVal::DepConst { reg, value }, AbsVal::Const(k)) => Ok(AbsVal::DepConst {
                reg,
                value: value.wrapping_sub(k),
            }),
            _ => Err(AsmError::new(
                pos,
                "unsupported arithmetic on runtime values (only constants fold under `sub`)",
            )),
        }
    }

    fn operand_value(&self, op: &Operand, pos: SrcPos) -> Result<AbsVal, AsmError> {
        match op {
            Operand::Imm(v) => Ok(AbsVal::Const(*v)),
            Operand::Reg(r) => self.read(*r, pos),
            _ => Err(AsmError::new(
                pos,
                "expected a register or immediate operand",
            )),
        }
    }

    fn run(&mut self, entry: usize) -> Result<(), AsmError> {
        let mut pc = entry;
        let last_pos = self
            .file
            .instrs
            .last()
            .map_or(SrcPos { line: 1, col: 1 }, |i| i.pos);
        loop {
            if pc >= self.file.instrs.len() {
                return Err(AsmError::new(
                    last_pos,
                    format!(
                        "T{} runs past the end of the file (missing `ret`?)",
                        self.tid
                    ),
                ));
            }
            if let Some(label) = self.foreign_entries.get(&pc) {
                return Err(AsmError::new(
                    self.file.instrs[pc].pos,
                    format!(
                        "T{} falls through into thread entry `{label}` (missing `ret`?)",
                        self.tid
                    ),
                ));
            }
            self.fetched += 1;
            if self.fetched > MAX_FETCH_STEPS {
                return Err(AsmError::new(
                    self.file.instrs[pc].pos,
                    format!(
                        "T{} exceeds the {MAX_FETCH_STEPS}-step execution budget (unbounded loop?)",
                        self.tid
                    ),
                ));
            }
            match self.step(pc)? {
                Flow::Next => pc += 1,
                Flow::Jump(target) => pc = target,
                Flow::Done => return Ok(()),
            }
        }
    }

    fn branch_target(&self, instr: &AsmInstr, op: &Operand) -> Result<usize, AsmError> {
        let Operand::Label(name) = op else {
            return Err(AsmError::new(instr.pos, "expected a branch target label"));
        };
        self.file
            .labels
            .get(name)
            .copied()
            .ok_or_else(|| AsmError::new(instr.pos, format!("undefined label `{name}`")))
    }

    fn step(&mut self, pc: usize) -> Result<Flow, AsmError> {
        let instr = &self.file.instrs[pc];
        let pos = instr.pos;
        let ops = &instr.operands;
        let arity = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(AsmError::new(
                    pos,
                    format!(
                        "`{}` expects {n} operand(s), found {}",
                        instr.mnemonic,
                        ops.len()
                    ),
                ))
            }
        };
        match instr.mnemonic.as_str() {
            "nop" => {
                arity(0)?;
                Ok(Flow::Next)
            }
            "ret" => {
                arity(0)?;
                Ok(Flow::Done)
            }
            "isb" => {
                if !ops.is_empty() {
                    return Err(AsmError::new(pos, "`isb` takes no operands here"));
                }
                self.emit(Instr::Fence(Barrier::Isb), pos)?;
                Ok(Flow::Next)
            }
            "dmb" | "dsb" => {
                arity(1)?;
                let Operand::Label(domain) = &ops[0] else {
                    return Err(AsmError::new(
                        pos,
                        "expected a barrier domain (`ish`/`ishst`/`ishld`)",
                    ));
                };
                let dsb = instr.mnemonic == "dsb";
                let kind = match domain.as_str() {
                    "ish" | "sy" => {
                        if dsb {
                            Barrier::DsbFull
                        } else {
                            Barrier::DmbFull
                        }
                    }
                    "ishst" | "st" => {
                        if dsb {
                            Barrier::DsbSt
                        } else {
                            Barrier::DmbSt
                        }
                    }
                    "ishld" | "ld" => {
                        if dsb {
                            Barrier::DsbLd
                        } else {
                            Barrier::DmbLd
                        }
                    }
                    other => {
                        return Err(AsmError::new(
                            pos,
                            format!("unsupported barrier domain `{other}`"),
                        ))
                    }
                };
                self.emit(Instr::Fence(kind), pos)?;
                Ok(Flow::Next)
            }
            "mov" => {
                arity(2)?;
                let Operand::Reg(dst) = ops[0] else {
                    return Err(AsmError::new(pos, "`mov` destination must be a register"));
                };
                let v = self.operand_value(&ops[1], pos)?;
                self.write(dst, v);
                Ok(Flow::Next)
            }
            "add" | "sub" => {
                arity(3)?;
                let Operand::Reg(dst) = ops[0] else {
                    return Err(AsmError::new(pos, "destination must be a register"));
                };
                let a = self.operand_value(&ops[1], pos)?;
                let b = self.operand_value(&ops[2], pos)?;
                let v = if instr.mnemonic == "add" {
                    self.abs_add(a, b, pos)?
                } else {
                    self.abs_sub(a, b, pos)?
                };
                self.write(dst, v);
                Ok(Flow::Next)
            }
            "eor" => {
                arity(3)?;
                let (Operand::Reg(dst), Operand::Reg(n), Operand::Reg(m)) =
                    (&ops[0], &ops[1], &ops[2])
                else {
                    return Err(AsmError::new(pos, "`eor` operands must be registers"));
                };
                let v = if n == m {
                    // `eor v, x, x`: zero, carrying x's dependency if any.
                    match self.read(*n, pos)? {
                        v @ (AbsVal::Loaded(_) | AbsVal::DepZero(_) | AbsVal::DepConst { .. }) => {
                            AbsVal::DepZero(v.dep_reg().expect("load-derived"))
                        }
                        AbsVal::Const(_) => AbsVal::Const(0),
                        _ => {
                            return Err(AsmError::new(pos, "unsupported `eor` on a symbol address"))
                        }
                    }
                } else {
                    match (self.read(*n, pos)?, self.read(*m, pos)?) {
                        (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(x ^ y),
                        _ => {
                            return Err(AsmError::new(
                                pos,
                                "unsupported `eor` on runtime values (use `eor v, x, x` for a bogus dependency)",
                            ))
                        }
                    }
                };
                self.write(*dst, v);
                Ok(Flow::Next)
            }
            "ldr" | "ldar" | "ldapr" | "ldxr" => {
                arity(2)?;
                let Operand::Reg(dst) = ops[0] else {
                    return Err(AsmError::new(pos, "load destination must be a register"));
                };
                match &ops[1] {
                    Operand::SymAddr(name) => {
                        if instr.mnemonic != "ldr" {
                            return Err(AsmError::new(
                                pos,
                                "literal-pool loads (`=symbol`) are only supported with `ldr`",
                            ));
                        }
                        let Some(sym) = self.file.symbols.iter().position(|s| s.name == *name)
                        else {
                            return Err(AsmError::new(pos, format!("undeclared symbol `{name}`")));
                        };
                        self.write(dst, AbsVal::Addr { sym, dep: None });
                        Ok(Flow::Next)
                    }
                    Operand::Mem(base) => {
                        let acquire = match instr.mnemonic.as_str() {
                            "ldar" => Acquire::Sc,
                            "ldapr" => Acquire::Pc,
                            _ => Acquire::No,
                        };
                        let v = self.emit_load(*base, acquire, pos)?;
                        self.write(dst, v);
                        Ok(Flow::Next)
                    }
                    _ => Err(AsmError::new(
                        pos,
                        "load source must be `[xN]` or `=symbol`",
                    )),
                }
            }
            "str" | "stlr" => {
                arity(2)?;
                let Operand::Reg(src) = ops[0] else {
                    return Err(AsmError::new(pos, "store source must be a register"));
                };
                let Operand::Mem(base) = ops[1] else {
                    return Err(AsmError::new(pos, "store destination must be `[xN]`"));
                };
                let v = self.read(src, pos)?;
                self.emit_store(v, base, instr.mnemonic == "stlr", pos)?;
                Ok(Flow::Next)
            }
            "stxr" => {
                arity(3)?;
                let (Operand::Reg(status), Operand::Reg(src), Operand::Mem(base)) =
                    (&ops[0], &ops[1], &ops[2])
                else {
                    return Err(AsmError::new(pos, "`stxr` operands are `wS, xT, [xN]`"));
                };
                let v = self.read(*src, pos)?;
                self.emit_store(v, *base, false, pos)?;
                // Bounded unrolling of the LL/SC retry loop: the exclusive
                // store succeeds on the first attempt.
                self.write(*status, AbsVal::Const(0));
                Ok(Flow::Next)
            }
            "b" => {
                arity(1)?;
                let target = self.branch_target(instr, &ops[0])?;
                if target <= pc {
                    return Err(AsmError::new(
                        pos,
                        "unbounded loop: unconditional backward branch never terminates",
                    ));
                }
                Ok(Flow::Jump(target))
            }
            "cbz" | "cbnz" => {
                arity(2)?;
                let Operand::Reg(cond) = ops[0] else {
                    return Err(AsmError::new(pos, "branch condition must be a register"));
                };
                let target = self.branch_target(instr, &ops[1])?;
                let v = self.read(cond, pos)?;
                let want_zero = instr.mnemonic == "cbz";
                match v {
                    AbsVal::Const(c) => {
                        // Known condition: the counted-loop path.
                        if (c == 0) == want_zero {
                            Ok(Flow::Jump(target))
                        } else {
                            Ok(Flow::Next)
                        }
                    }
                    AbsVal::Loaded(r) | AbsVal::DepZero(r) | AbsVal::DepConst { reg: r, .. } => {
                        if target <= pc {
                            // A spin: take the back-edge while the budget
                            // lasts, then fall through (see module docs on
                            // the dropped spin-exit dependency).
                            let unroll = self.file.unroll;
                            let budget = self.spin_budget.entry(pc).or_insert(unroll - 1);
                            if *budget > 0 {
                                *budget -= 1;
                                Ok(Flow::Jump(target))
                            } else {
                                *budget = unroll - 1;
                                Ok(Flow::Next)
                            }
                        } else {
                            // Undetermined forward branch: lift the
                            // fall-through path under a control dependency.
                            self.ctrl = Some(r);
                            Ok(Flow::Next)
                        }
                    }
                    _ => Err(AsmError::new(
                        pos,
                        "branch on a symbol address or undefined value",
                    )),
                }
            }
            other => Err(AsmError::new(pos, format!("unknown mnemonic `{other}`"))),
        }
    }
}

enum Flow {
    Next,
    Jump(usize),
    Done,
}

/// Lift parsed assembly into a model program.
///
/// # Errors
///
/// Position-carrying [`AsmError`]s for every rejection class the module
/// docs list: missing/undeclared symbols, private-symbol violations,
/// unbounded loops, budget exhaustion, unsupported value arithmetic.
pub fn lift_file(file: &AsmFile) -> Result<Lifted, AsmError> {
    if file.threads.is_empty() {
        return Err(AsmError::new(
            SrcPos { line: 1, col: 1 },
            "no `// armbar: thread <entry>` pragma found",
        ));
    }
    for decl in &file.threads {
        if !file.labels.contains_key(&decl.entry) {
            return Err(AsmError::new(
                decl.pos,
                format!("entry label `{}` is not defined", decl.entry),
            ));
        }
    }
    for sym in &file.symbols {
        if let Some(owner) = sym.owner {
            if owner >= file.threads.len() {
                return Err(AsmError::new(
                    sym.pos,
                    format!(
                        "`{}` is private to T{owner}, but only {} thread(s) are declared",
                        sym.name,
                        file.threads.len()
                    ),
                ));
            }
        }
    }
    let entries: Vec<usize> = file.threads.iter().map(|t| file.labels[&t.entry]).collect();
    let mut threads = Vec::new();
    let mut fetched = Vec::new();
    for (tid, &entry) in entries.iter().enumerate() {
        let foreign_entries: HashMap<usize, String> = entries
            .iter()
            .zip(&file.threads)
            .filter(|&(&e, _)| e != entry)
            .map(|(&e, d)| (e, d.entry.clone()))
            .collect();
        let mut lifter = ThreadLifter {
            file,
            tid,
            foreign_entries,
            regs: [AbsVal::Undef; 32],
            emitted: Vec::new(),
            next_reg: 0,
            spin_budget: HashMap::new(),
            ctrl: None,
            fetched: 0,
        };
        lifter.run(entry)?;
        threads.push(Thread {
            instrs: lifter.emitted,
        });
        fetched.push(lifter.fetched);
    }
    let init: Vec<(u8, u64)> = file
        .symbols
        .iter()
        .filter_map(|s| s.init.map(|v| (s.loc, v)))
        .collect();
    Ok(Lifted {
        program: Program { threads, init },
        symbols: file
            .symbols
            .iter()
            .map(|s| Symbol {
                name: s.name.clone(),
                loc: s.loc,
                init: s.init,
                owner: s.owner,
            })
            .collect(),
        fetched,
    })
}

/// Parse and lift AArch64 source text in one call.
///
/// # Errors
///
/// As [`parse`] and [`lift_file`].
pub fn lift(src: &str) -> Result<Lifted, AsmError> {
    lift_file(&parse(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = "\
// armbar: thread producer
// armbar: thread consumer
// armbar: shared data @ 0
// armbar: shared flag @ 1

producer:
    ldr x0, =data
    ldr x1, =flag
    mov x2, #23
    str x2, [x0]
    dmb ishst
    mov x2, #1
    str x2, [x1]
    ret

consumer:
    ldr x0, =data
    ldr x1, =flag
Lspin:
    ldr x2, [x1]
    cbz x2, Lspin
    dmb ishld
    ldr x3, [x0]
    ret
";

    #[test]
    fn lifts_message_passing() {
        let lifted = lift(MP).expect("MP lifts");
        assert_eq!(lifted.program.threads.len(), 2);
        assert_eq!(
            lifted.program.threads[0].instrs,
            vec![
                Instr::store(0, 23),
                Instr::Fence(Barrier::DmbSt),
                Instr::store(1, 1),
            ]
        );
        assert_eq!(
            lifted.program.threads[1].instrs,
            vec![
                Instr::load(0, 1),
                Instr::Fence(Barrier::DmbLd),
                Instr::load(1, 0),
            ]
        );
        assert_eq!(lifted.symbols.len(), 2);
    }

    #[test]
    fn counted_loops_unroll_exactly() {
        let src = "\
// armbar: thread t0
// armbar: shared word @ 5
t0:
    ldr x0, =word
    mov x1, #0
    mov x9, #4
Loop:
    str x1, [x0]
    add x1, x1, #1
    sub x9, x9, #1
    cbnz x9, Loop
    ret
";
        let lifted = lift(src).expect("counted loop lifts");
        let stores: Vec<u64> = lifted.program.threads[0]
            .instrs
            .iter()
            .map(|i| match i {
                Instr::Store {
                    src: Src::Const(v), ..
                } => *v,
                other => panic!("expected const store, got {other}"),
            })
            .collect();
        assert_eq!(stores, vec![0, 1, 2, 3]);
        assert_eq!(lifted.fetched[0], 3 + 4 * 4 + 1);
    }

    #[test]
    fn spin_unroll_bound_is_respected() {
        let src = "\
// armbar: unroll 3
// armbar: thread t0
// armbar: shared flag @ 0
t0:
    ldr x0, =flag
Lspin:
    ldr x1, [x0]
    cbz x1, Lspin
    ret
";
        let lifted = lift(src).expect("spin lifts");
        // unroll 3: the spin load is emitted three times.
        assert_eq!(lifted.program.threads[0].instrs.len(), 3);
        assert_eq!(
            lifted.program.threads[0].instrs[2],
            Instr::load(2, 0),
            "fresh registers per unrolled iteration"
        );
    }

    #[test]
    fn bogus_data_dep_idiom_lifts_to_depconst() {
        let src = "\
// armbar: thread t0
// armbar: shared a @ 0
// armbar: shared b @ 1
t0:
    ldr x0, =a
    ldr x1, =b
    ldr x2, [x0]
    eor x3, x2, x2
    add x3, x3, #9
    str x3, [x1]
    ret
";
        let lifted = lift(src).expect("data-dep idiom lifts");
        assert_eq!(
            lifted.program.threads[0].instrs,
            vec![Instr::load(0, 0), Instr::store_data_dep(1, 9, 0)]
        );
    }

    #[test]
    fn addr_dep_idiom_lifts() {
        let src = "\
// armbar: thread t0
// armbar: shared a @ 0
// armbar: shared b @ 1
t0:
    ldr x0, =a
    ldr x1, =b
    ldr x2, [x0]
    eor x3, x2, x2
    add x4, x1, x3
    ldr x5, [x4]
    ret
";
        let lifted = lift(src).expect("addr-dep idiom lifts");
        assert_eq!(
            lifted.program.threads[0].instrs,
            vec![Instr::load(0, 0), Instr::load_addr_dep(1, 1, 0)]
        );
    }

    #[test]
    fn ctrl_dep_applies_to_later_stores() {
        let src = "\
// armbar: thread t0
// armbar: shared flag @ 0
// armbar: shared data @ 1
t0:
    ldr x0, =flag
    ldr x1, =data
    ldr x2, [x0]
    cbnz x2, Lgo
Lgo:
    mov x3, #9
    str x3, [x1]
    ret
";
        let lifted = lift(src).expect("ctrl idiom lifts");
        assert_eq!(
            lifted.program.threads[0].instrs,
            vec![Instr::load(0, 0), Instr::store_ctrl_dep(1, 9, 0)]
        );
    }

    #[test]
    fn stxr_succeeds_and_resolves_the_retry_loop() {
        let src = "\
// armbar: thread t0
// armbar: shared lock @ 0
t0:
    ldr x0, =lock
Lretry:
    ldxr x1, [x0]
    mov x2, #1
    stxr w3, x2, [x0]
    cbnz x3, Lretry
    ret
";
        let lifted = lift(src).expect("LL/SC lifts");
        assert_eq!(
            lifted.program.threads[0].instrs,
            vec![Instr::load(0, 0), Instr::store(0, 1)]
        );
    }

    #[test]
    fn acquire_release_mnemonics_lift_to_annotations() {
        let src = "\
// armbar: thread t0
// armbar: shared a @ 0
t0:
    ldr x0, =a
    ldar x1, [x0]
    ldapr x2, [x0]
    mov x3, #1
    stlr x3, [x0]
    ret
";
        let lifted = lift(src).expect("acquire/release lifts");
        assert_eq!(
            lifted.program.threads[0].instrs,
            vec![
                Instr::load_acq(0, 0),
                Instr::load_acq_pc(1, 0),
                Instr::store_rel(0, 1),
            ]
        );
    }

    #[test]
    fn unbounded_loop_is_rejected() {
        let src = "\
// armbar: thread t0
t0:
Lforever:
    nop
    b Lforever
";
        let e = lift(src).unwrap_err();
        assert!(e.msg.contains("unbounded loop"), "{e}");
        assert_eq!(e.pos.line, 5);
    }

    #[test]
    fn undeclared_symbol_is_rejected() {
        let src = "\
// armbar: thread t0
t0:
    ldr x0, =ghost
    mov x1, #1
    str x1, [x0]
    ret
";
        let e = lift(src).unwrap_err();
        assert!(e.msg.contains("undeclared symbol `ghost`"), "{e}");
        assert_eq!(e.pos.line, 3);
    }

    #[test]
    fn private_symbol_cross_access_is_rejected() {
        let src = "\
// armbar: thread t0
// armbar: thread t1
// armbar: private node @ 7 for T0
t0:
    ldr x0, =node
    mov x1, #1
    str x1, [x0]
    ret
t1:
    ldr x0, =node
    ldr x1, [x0]
    ret
";
        let e = lift(src).unwrap_err();
        assert!(e.msg.contains("private to T0"), "{e}");
        assert_eq!(e.pos.line, 11);
    }

    #[test]
    fn fetch_budget_catches_runaway_counted_loops() {
        let src = "\
// armbar: thread t0
t0:
    mov x9, #100000000
Loop:
    sub x9, x9, #1
    cbnz x9, Loop
    ret
";
        let e = lift(src).unwrap_err();
        assert!(e.msg.contains("execution budget"), "{e}");
    }

    #[test]
    fn emitted_budget_catches_oversized_threads() {
        let src = "\
// armbar: thread t0
// armbar: shared word @ 0
t0:
    ldr x0, =word
    mov x1, #0
    mov x9, #600
Loop:
    str x1, [x0]
    sub x9, x9, #1
    cbnz x9, Loop
    ret
";
        let e = lift(src).unwrap_err();
        assert!(e.msg.contains("instruction budget"), "{e}");
    }

    #[test]
    fn missing_ret_is_rejected() {
        let src = "// armbar: thread t0\nt0:\n    nop\n";
        let e = lift(src).unwrap_err();
        assert!(e.msg.contains("missing `ret`"), "{e}");
    }

    #[test]
    fn init_values_flow_into_the_program() {
        let src = "\
// armbar: thread t0
// armbar: shared word @ 9 = 41
t0:
    ldr x0, =word
    ldr x1, [x0]
    ret
";
        let lifted = lift(src).expect("lifts");
        assert_eq!(lifted.program.init, vec![(9, 41)]);
    }
}
