//! `armbar-extract`: the AArch64 assembly front-end of the analyzer.
//!
//! The paper's lint pipeline reasons about [`armbar_wmm::model::Program`]s;
//! until this crate existed, those programs were built by hand in Rust.
//! This crate closes the gap to *real artifacts*:
//!
//! * [`parse`] + [`lift`] turn a practical AArch64 subset (`.s` text with
//!   `// armbar:` pragmas declaring threads and the shared/private symbol
//!   map) into model programs, with bounded unrolling of spin loops,
//!   constant-folded counted loops, and the paper's dependency idioms
//!   (`eor x, v, v` bogus data/address deps, control deps from
//!   undetermined forward branches) recovered as model annotations;
//! * [`drift`] scrapes the `asm!` templates out of
//!   `armbar-barriers`' native backend source and lint-checks each wrapper
//!   against the instruction its name promises
//!   ([`armbar_barriers::native::ASM_CONTRACT`]);
//! * [`fixtures`] ships the checked-in `.s` corpus (MCS handoff, ticket
//!   lock, Pilot round-trip) that `analyze`'s lint corpus now lifts as its
//!   production path, paired with the retired hand-built twins so tests
//!   can prove outcome-set equality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod fixtures;
pub mod lift;
pub mod parse;

pub use drift::{check_drift, check_native_drift, DriftReport, DriftRow};
pub use lift::{lift, lift_file, Lifted, Symbol, MAX_FETCH_STEPS, MAX_THREAD_INSTRS};
pub use parse::{parse, AsmError, AsmFile, SrcPos};
