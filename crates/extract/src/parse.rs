//! The AArch64 text parser: raw `.s` source → a flat instruction list
//! plus the `armbar:` pragma declarations the lifter needs.
//!
//! The parser is purely syntactic — it validates mnemonics, operand
//! shapes, and pragma grammar, and records a [`SrcPos`] for every item so
//! later passes (and the `armbar-lint <file.s>` CLI) can report
//! `line:col`-located diagnostics. Whether a symbol exists, a loop is
//! bounded, or a register holds a usable value is the lifter's business.
//!
//! # Accepted dialect
//!
//! * Instructions: `ldr`/`str`, `ldar`/`stlr`/`ldapr`, `ldxr`/`stxr`,
//!   `dmb`/`dsb` with an `ish`/`ishst`/`ishld` (or `sy`/`st`/`ld`)
//!   domain, `isb`, `mov`/`add`/`sub`/`eor`, `cbz`/`cbnz`/`b`, `nop`,
//!   `ret`.
//! * Registers: `x0`–`x30` (`w` aliases the same register; the model is
//!   untyped 64-bit), `xzr`/`wzr` reads as zero.
//! * Addressing: `[xN]` only — addresses are built with
//!   `ldr xN, =symbol` (literal-pool pseudo-instruction) and register
//!   arithmetic, which is how the lifter tracks address dependencies.
//! * Labels: `name:` on its own line or prefixing an instruction.
//! * Assembler directives (`.text`, `.global`, …) are ignored.
//! * Pragmas (in comments, so the file stays a valid assembler input):
//!   ```text
//!   // armbar: thread <entry-label>
//!   // armbar: shared <name> @ <loc> [= <init>]
//!   // armbar: private <name> @ <loc> for T<tid>
//!   // armbar: unroll <n>
//!   ```

use core::fmt;

use std::collections::HashMap;

/// A 1-based source position inside the parsed text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcPos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
}

/// A parse or lift failure, located in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Where in the source the problem is.
    pub pos: SrcPos,
    /// Human-readable description.
    pub msg: String,
}

impl AsmError {
    /// Construct an error at `pos`.
    #[must_use]
    pub fn new(pos: SrcPos, msg: impl Into<String>) -> AsmError {
        AsmError {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.pos.line, self.pos.col, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// The architectural zero register (`xzr`/`wzr`), one past `x30`.
pub const ZR: u8 = 31;

/// One operand of a parsed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// `xN` / `wN` (0–30), or [`ZR`] for `xzr`/`wzr`.
    Reg(u8),
    /// `#imm` (decimal or `0x` hex).
    Imm(u64),
    /// `=symbol` — the literal-pool address of a declared symbol.
    SymAddr(String),
    /// `[xN]` — dereference of the address in a register.
    Mem(u8),
    /// A bare identifier: a branch target.
    Label(String),
}

/// One parsed instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmInstr {
    /// Lower-cased mnemonic.
    pub mnemonic: String,
    /// Operands in source order.
    pub operands: Vec<Operand>,
    /// Position of the mnemonic.
    pub pos: SrcPos,
}

/// A `// armbar: thread <entry>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDecl {
    /// The entry label the thread starts at.
    pub entry: String,
    /// Position of the pragma.
    pub pos: SrcPos,
}

/// A `shared`/`private` symbol declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolDecl {
    /// Symbol name.
    pub name: String,
    /// The `wmm` location it pins.
    pub loc: u8,
    /// Initial value, when declared.
    pub init: Option<u64>,
    /// `Some(tid)` for thread-private symbols.
    pub owner: Option<usize>,
    /// Position of the pragma.
    pub pos: SrcPos,
}

/// The parsed form of one `.s` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmFile {
    /// Declared threads, in declaration order (= `wmm` thread order).
    pub threads: Vec<ThreadDecl>,
    /// Declared symbols.
    pub symbols: Vec<SymbolDecl>,
    /// The spin-unroll bound (`// armbar: unroll <n>`, default 1).
    pub unroll: usize,
    /// All instructions, file order, labels resolved to indices.
    pub instrs: Vec<AsmInstr>,
    /// Label → index of the next instruction (may be `instrs.len()`).
    pub labels: HashMap<String, usize>,
}

/// Mnemonics the lifter understands, used to reject unknown instructions
/// at parse time with a precise position.
const MNEMONICS: [&str; 19] = [
    "ldr", "str", "ldar", "stlr", "ldapr", "ldxr", "stxr", "dmb", "dsb", "isb", "mov", "add",
    "sub", "eor", "cbz", "cbnz", "b", "nop", "ret",
];

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn parse_register(token: &str) -> Option<u8> {
    match token {
        "xzr" | "wzr" => return Some(ZR),
        _ => {}
    }
    let rest = token
        .strip_prefix('x')
        .or_else(|| token.strip_prefix('w'))?;
    let n: u8 = rest.parse().ok()?;
    (n <= 30 && !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit())).then_some(n)
}

fn parse_operand(token: &str, pos: SrcPos) -> Result<Operand, AsmError> {
    if let Some(imm) = token.strip_prefix('#') {
        return parse_u64(imm)
            .map(Operand::Imm)
            .ok_or_else(|| AsmError::new(pos, format!("bad immediate `{token}`")));
    }
    if let Some(sym) = token.strip_prefix('=') {
        if !is_ident(sym) {
            return Err(AsmError::new(
                pos,
                format!("bad symbol reference `{token}`"),
            ));
        }
        return Ok(Operand::SymAddr(sym.to_string()));
    }
    if let Some(inner) = token.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(AsmError::new(
                pos,
                format!("unterminated address `{token}`"),
            ));
        };
        if inner.contains(',') {
            return Err(AsmError::new(
                pos,
                format!("unsupported addressing mode `{token}` (only `[xN]` is lifted; build the address with register arithmetic)"),
            ));
        }
        let Some(reg) = parse_register(inner.trim()) else {
            return Err(AsmError::new(
                pos,
                format!("bad base register in `{token}`"),
            ));
        };
        return Ok(Operand::Mem(reg));
    }
    if let Some(reg) = parse_register(token) {
        return Ok(Operand::Reg(reg));
    }
    if is_ident(token) {
        return Ok(Operand::Label(token.to_string()));
    }
    Err(AsmError::new(
        pos,
        format!("unrecognized operand `{token}`"),
    ))
}

/// Split an operand string at top-level commas (`[x0]` stays whole).
fn split_operands(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = text[start..].trim();
    if !last.is_empty() || !parts.is_empty() {
        parts.push(last);
    }
    parts
}

fn parse_pragma(rest: &str, pos: SrcPos, file: &mut AsmFile) -> Result<(), AsmError> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    match tokens.as_slice() {
        ["thread", entry] if is_ident(entry) => {
            file.threads.push(ThreadDecl {
                entry: (*entry).to_string(),
                pos,
            });
            Ok(())
        }
        ["unroll", n] => {
            let bound: usize =
                n.parse().ok().filter(|&b| b >= 1).ok_or_else(|| {
                    AsmError::new(pos, format!("bad unroll bound `{n}` (want >= 1)"))
                })?;
            file.unroll = bound;
            Ok(())
        }
        ["shared", name, "@", loc, rest @ ..] if is_ident(name) => {
            let loc: u8 = loc
                .parse()
                .map_err(|_| AsmError::new(pos, format!("bad location `{loc}` (want 0-255)")))?;
            let init = match rest {
                [] => None,
                ["=", v] => Some(
                    parse_u64(v)
                        .ok_or_else(|| AsmError::new(pos, format!("bad init value `{v}`")))?,
                ),
                _ => return Err(AsmError::new(pos, "malformed shared declaration")),
            };
            push_symbol(file, (*name).to_string(), loc, init, None, pos)
        }
        ["private", name, "@", loc, "for", tid] if is_ident(name) => {
            let loc: u8 = loc
                .parse()
                .map_err(|_| AsmError::new(pos, format!("bad location `{loc}` (want 0-255)")))?;
            let owner: usize = tid
                .strip_prefix('T')
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| AsmError::new(pos, format!("bad thread id `{tid}` (want T<n>)")))?;
            push_symbol(file, (*name).to_string(), loc, None, Some(owner), pos)
        }
        _ => Err(AsmError::new(
            pos,
            format!("unrecognized armbar pragma `{rest}`"),
        )),
    }
}

fn push_symbol(
    file: &mut AsmFile,
    name: String,
    loc: u8,
    init: Option<u64>,
    owner: Option<usize>,
    pos: SrcPos,
) -> Result<(), AsmError> {
    if file.symbols.iter().any(|s| s.name == name) {
        return Err(AsmError::new(pos, format!("duplicate symbol `{name}`")));
    }
    if let Some(prev) = file.symbols.iter().find(|s| s.loc == loc) {
        return Err(AsmError::new(
            pos,
            format!("location {loc} already bound to symbol `{}`", prev.name),
        ));
    }
    file.symbols.push(SymbolDecl {
        name,
        loc,
        init,
        owner,
        pos,
    });
    Ok(())
}

/// Parse AArch64 source text into an [`AsmFile`].
///
/// # Errors
///
/// Returns a position-carrying [`AsmError`] on the first unknown
/// mnemonic, malformed operand, bad pragma, or duplicate label/symbol.
pub fn parse(src: &str) -> Result<AsmFile, AsmError> {
    let mut file = AsmFile {
        threads: Vec::new(),
        symbols: Vec::new(),
        unroll: 1,
        instrs: Vec::new(),
        labels: HashMap::new(),
    };
    for (line_idx, raw) in src.lines().enumerate() {
        let line_no = line_idx + 1;
        // Pragmas live inside comments; detect them before stripping.
        let trimmed = raw.trim_start();
        let indent = raw.len() - trimmed.len();
        if let Some(comment) = trimmed.strip_prefix("//") {
            let comment = comment.trim_start();
            if let Some(pragma) = comment.strip_prefix("armbar:") {
                let col = indent + 1;
                parse_pragma(pragma.trim(), SrcPos { line: line_no, col }, &mut file)?;
            }
            continue;
        }
        // Strip trailing comments from code lines.
        let code = match trimmed.split_once("//") {
            Some((c, _)) => c.trim_end(),
            None => trimmed.trim_end(),
        };
        if code.is_empty() {
            continue;
        }
        let mut text = code;
        let mut col = indent + 1;
        // Leading `label:` prefix.
        if let Some(colon) = text.find(':') {
            let (head, tail) = text.split_at(colon);
            if is_ident(head.trim()) {
                let label = head.trim().to_string();
                let pos = SrcPos { line: line_no, col };
                if file.labels.contains_key(&label) {
                    return Err(AsmError::new(pos, format!("duplicate label `{label}`")));
                }
                file.labels.insert(label, file.instrs.len());
                let rest = &tail[1..];
                let rest_trimmed = rest.trim_start();
                col += colon + 1 + (rest.len() - rest_trimmed.len());
                text = rest_trimmed.trim_end();
                if text.is_empty() {
                    continue;
                }
            }
        }
        // Assembler directives are passed over.
        if text.starts_with('.') {
            continue;
        }
        let pos = SrcPos { line: line_no, col };
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        if !MNEMONICS.contains(&mnemonic.as_str()) {
            return Err(AsmError::new(pos, format!("unknown mnemonic `{mnemonic}`")));
        }
        let mut operands = Vec::new();
        if !rest.is_empty() {
            for token in split_operands(rest) {
                operands.push(parse_operand(token, pos)?);
            }
        }
        file.instrs.push(AsmInstr {
            mnemonic,
            operands,
            pos,
        });
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_file() {
        let src = "\
// armbar: thread t0
// armbar: shared flag @ 0
t0:
    ldr x1, =flag
    mov x2, #1
    str x2, [x1]
    ret
";
        let f = parse(src).expect("parses");
        assert_eq!(f.threads.len(), 1);
        assert_eq!(f.symbols.len(), 1);
        assert_eq!(f.instrs.len(), 4);
        assert_eq!(f.labels["t0"], 0);
        assert_eq!(f.instrs[0].operands[1], Operand::SymAddr("flag".into()));
        assert_eq!(f.instrs[2].operands, vec![Operand::Reg(2), Operand::Mem(1)]);
    }

    #[test]
    fn unknown_mnemonic_is_located() {
        let src = "// armbar: thread t0\nt0:\n    frobnicate x1, x2\n";
        let e = parse(src).unwrap_err();
        assert_eq!((e.pos.line, e.pos.col), (3, 5));
        assert!(e.msg.contains("frobnicate"), "{e}");
    }

    #[test]
    fn pragma_grammar_is_checked() {
        assert!(parse("// armbar: thread t0\n// armbar: unroll 0\n").is_err());
        assert!(parse("// armbar: shared a @ 999\n").is_err());
        assert!(parse("// armbar: blorp\n").is_err());
        let f = parse("// armbar: shared a @ 3 = 7\n// armbar: private b @ 4 for T1\n").unwrap();
        assert_eq!(f.symbols[0].init, Some(7));
        assert_eq!(f.symbols[1].owner, Some(1));
    }

    #[test]
    fn duplicate_labels_and_symbols_are_rejected() {
        assert!(parse("a:\n nop\na:\n nop\n").is_err());
        assert!(parse("// armbar: shared a @ 1\n// armbar: shared a @ 2\n").is_err());
        assert!(parse("// armbar: shared a @ 1\n// armbar: shared b @ 1\n").is_err());
    }

    #[test]
    fn zero_register_and_hex_immediates() {
        let f = parse("t0:\n mov x1, xzr\n mov x2, #0x10\n").unwrap();
        assert_eq!(f.instrs[0].operands[1], Operand::Reg(ZR));
        assert_eq!(f.instrs[1].operands[1], Operand::Imm(16));
    }

    #[test]
    fn pair_addressing_is_rejected_with_hint() {
        let e = parse("t0:\n ldr x1, [x2, x3]\n").unwrap_err();
        assert!(e.msg.contains("addressing mode"), "{e}");
    }
}
