//! Source-drift lint for the native `asm!` wrappers.
//!
//! `armbar-barriers` ships a table ([`armbar_barriers::native::ASM_CONTRACT`])
//! of what instruction each `asm!` wrapper promises to emit. This module
//! scrapes the template strings out of the *source text* of
//! `crates/barriers/src/native.rs` (embedded at compile time, so the lint
//! always sees the code it ships with), lifts each template with the real
//! [`crate::parse`] front-end, and compares the classified barrier against
//! the contract. If `dmb_st()` ever stops emitting `dmb ishst` — a typo, a
//! bad merge, a well-meaning "optimization" — the lint fails with the
//! function name and the offending template.
//!
//! Wrappers that contain `asm!` but are missing from the contract are also
//! reported, so new wrappers cannot slip in unchecked.

use armbar_barriers::native::ASM_CONTRACT;
use armbar_barriers::Barrier;

use crate::parse::{parse, AsmInstr, Operand};

/// The embedded source of the native backend, scraped by the lint.
pub const NATIVE_SOURCE: &str = include_str!("../../barriers/src/native.rs");

/// One `asm!` template found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapedAsm {
    /// The enclosing function.
    pub function: String,
    /// The raw template string (placeholders unsubstituted).
    pub template: String,
    /// 1-based source line of the `asm!` invocation.
    pub line: usize,
}

/// One contract function's drift verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftRow {
    /// The wrapper function name.
    pub function: String,
    /// What the contract says it emits.
    pub expected: Barrier,
    /// What lifting its scraped template produced (`None`: no `asm!`
    /// found, or the template did not classify as a barrier/ordered
    /// access).
    pub lifted: Option<Barrier>,
    /// The scraped template, empty when the function had no `asm!`.
    pub template: String,
}

impl DriftRow {
    /// True when the wrapper still emits what it promises.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.lifted == Some(self.expected)
    }
}

/// The full drift report over a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftReport {
    /// One row per contract entry, contract order.
    pub rows: Vec<DriftRow>,
    /// Functions with `asm!` templates but no contract entry.
    pub uncontracted: Vec<String>,
}

impl DriftReport {
    /// True when every contract row checks out and nothing is uncontracted.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.uncontracted.is_empty() && self.rows.iter().all(DriftRow::ok)
    }

    /// Human-readable multi-line summary (one line per problem; empty when
    /// clean).
    #[must_use]
    pub fn problems(&self) -> Vec<String> {
        let mut out = Vec::new();
        for row in &self.rows {
            if !row.ok() {
                out.push(match row.lifted {
                    Some(got) => format!(
                        "drift: `{}` promises {} but its template `{}` lifts to {got}",
                        row.function, row.expected, row.template
                    ),
                    None if row.template.is_empty() => {
                        format!("drift: `{}` has no asm! template to check", row.function)
                    }
                    None => format!(
                        "drift: `{}` template `{}` does not classify as a barrier",
                        row.function, row.template
                    ),
                });
            }
        }
        for f in &self.uncontracted {
            out.push(format!(
                "drift: `{f}` contains asm! but is missing from ASM_CONTRACT"
            ));
        }
        out
    }
}

fn enclosing_fn_name(line: &str) -> Option<String> {
    let t = line.trim_start();
    if t.starts_with("//") {
        return None;
    }
    let idx = t.find("fn ")?;
    let name: String = t[idx + 3..]
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Find every `asm!` template string in `src`, with its enclosing function.
#[must_use]
pub fn scrape_asm_templates(src: &str) -> Vec<ScrapedAsm> {
    let lines: Vec<&str> = src.lines().collect();
    let mut current_fn = String::new();
    let mut found = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        if let Some(name) = enclosing_fn_name(line) {
            current_fn = name;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            i += 1;
            continue;
        }
        if let Some(at) = line.find("asm!") {
            // The template is the first string literal after `asm!`; it may
            // start on a following line but never spans lines.
            let mut j = i;
            let mut from = at + 4;
            let mut template = None;
            while j < lines.len() {
                if let Some(q) = lines[j][from..].find('"') {
                    let start = from + q + 1;
                    if let Some(len) = lines[j][start..].find('"') {
                        template = Some(lines[j][start..start + len].to_string());
                    }
                    break;
                }
                j += 1;
                from = 0;
            }
            if let Some(template) = template {
                found.push(ScrapedAsm {
                    function: current_fn.clone(),
                    template,
                    line: i + 1,
                });
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    found
}

/// Replace `{placeholder}` operands with concrete registers `x20, x21, …`
/// so the template becomes parseable assembly.
#[must_use]
pub fn substitute_placeholders(template: &str) -> String {
    let mut out = String::new();
    let mut next = 20u8;
    let mut chars = template.chars();
    while let Some(c) = chars.next() {
        if c == '{' {
            for d in chars.by_ref() {
                if d == '}' {
                    break;
                }
            }
            out.push('x');
            out.push_str(&next.to_string());
            next += 1;
        } else {
            out.push(c);
        }
    }
    out
}

/// Classify a parsed single instruction as the barrier/ordered access it is.
fn classify(instr: &AsmInstr) -> Option<Barrier> {
    match instr.mnemonic.as_str() {
        "isb" => Some(Barrier::Isb),
        "ldar" => Some(Barrier::Ldar),
        "ldapr" => Some(Barrier::Ldapr),
        "stlr" => Some(Barrier::Stlr),
        "dmb" | "dsb" => {
            let Some(Operand::Label(domain)) = instr.operands.first() else {
                return None;
            };
            let dsb = instr.mnemonic == "dsb";
            match domain.as_str() {
                "ish" | "sy" => Some(if dsb {
                    Barrier::DsbFull
                } else {
                    Barrier::DmbFull
                }),
                "ishst" | "st" => Some(if dsb { Barrier::DsbSt } else { Barrier::DmbSt }),
                "ishld" | "ld" => Some(if dsb { Barrier::DsbLd } else { Barrier::DmbLd }),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Lift one scraped template and classify what it emits.
#[must_use]
pub fn lift_template(template: &str) -> Option<Barrier> {
    let concrete = substitute_placeholders(template);
    let file = parse(&concrete).ok()?;
    let instr = file.instrs.first()?;
    classify(instr)
}

/// Check a source file's scraped templates against a contract table.
#[must_use]
pub fn check_drift(src: &str, contract: &[(&str, Barrier)]) -> DriftReport {
    let scraped = scrape_asm_templates(src);
    let rows = contract
        .iter()
        .map(|&(function, expected)| {
            let hit = scraped.iter().find(|s| s.function == function);
            DriftRow {
                function: function.to_string(),
                expected,
                lifted: hit.and_then(|s| lift_template(&s.template)),
                template: hit.map(|s| s.template.clone()).unwrap_or_default(),
            }
        })
        .collect();
    let mut uncontracted: Vec<String> = scraped
        .iter()
        .filter(|s| !contract.iter().any(|&(f, _)| f == s.function))
        .map(|s| s.function.clone())
        .collect();
    uncontracted.dedup();
    DriftReport { rows, uncontracted }
}

/// Check the shipped `armbar-barriers` native backend against its own
/// [`ASM_CONTRACT`]. This is the call CI and `exp-extract` gate on.
#[must_use]
pub fn check_native_drift() -> DriftReport {
    check_drift(NATIVE_SOURCE, &ASM_CONTRACT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_backend_is_drift_free() {
        let report = check_native_drift();
        assert!(report.is_clean(), "{:#?}", report.problems());
        assert_eq!(report.rows.len(), ASM_CONTRACT.len());
    }

    #[test]
    fn scraper_finds_all_contract_functions() {
        let scraped = scrape_asm_templates(NATIVE_SOURCE);
        for (f, _) in ASM_CONTRACT {
            assert!(
                scraped.iter().any(|s| s.function == f),
                "no asm! scraped for `{f}`"
            );
        }
    }

    #[test]
    fn drift_is_detected() {
        let src = "\
pub fn dmb_st() {
    unsafe {
        core::arch::asm!(\"dmb ish\", options(nostack));
    }
}
";
        let report = check_drift(src, &[("dmb_st", Barrier::DmbSt)]);
        assert!(!report.is_clean());
        assert_eq!(report.rows[0].lifted, Some(Barrier::DmbFull));
        assert!(report.problems()[0].contains("dmb_st"));
    }

    #[test]
    fn uncontracted_asm_is_reported() {
        let src = "\
pub fn sneaky() {
    unsafe { core::arch::asm!(\"isb\"); }
}
";
        let report = check_drift(src, &[]);
        assert_eq!(report.uncontracted, vec!["sneaky".to_string()]);
        assert!(!report.is_clean());
    }

    #[test]
    fn multiline_asm_templates_are_scraped() {
        let scraped = scrape_asm_templates(NATIVE_SOURCE);
        let ldar = scraped
            .iter()
            .find(|s| s.function == "load_acquire_u64")
            .expect("ldar wrapper scraped");
        assert_eq!(ldar.template, "ldar {out}, [{ptr}]");
        assert_eq!(lift_template(&ldar.template), Some(Barrier::Ldar));
    }

    #[test]
    fn placeholder_substitution() {
        assert_eq!(
            substitute_placeholders("stlr {val}, [{ptr}]"),
            "stlr x20, [x21]"
        );
    }
}
