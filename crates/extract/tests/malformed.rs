//! Every malformed fixture under `corpus/asm/bad/` must be rejected with
//! a located diagnostic — never a panic, never a silent mis-lift.

use armbar_extract::fixtures::all_bad;
use armbar_extract::lift;

fn err_for(name: &str) -> armbar_extract::AsmError {
    let (_, src) = all_bad()
        .into_iter()
        .find(|&(n, _)| n == name)
        .unwrap_or_else(|| panic!("unknown bad fixture `{name}`"));
    lift(src).expect_err(name)
}

#[test]
fn unknown_mnemonic_is_rejected_at_its_position() {
    let e = err_for("unknown_mnemonic");
    assert!(e.msg.contains("unknown mnemonic `casal`"), "{e}");
    assert_eq!((e.pos.line, e.pos.col), (7, 5), "{e}");
}

#[test]
fn unbounded_loop_is_rejected() {
    let e = err_for("unbounded_loop");
    assert!(e.msg.contains("unbounded loop"), "{e}");
    assert_eq!(e.pos.line, 9, "{e}");
}

#[test]
fn undeclared_symbol_is_rejected() {
    let e = err_for("undeclared_symbol");
    assert!(e.msg.contains("undeclared symbol `ghost`"), "{e}");
    assert_eq!(e.pos.line, 6, "{e}");
}

#[test]
fn budget_exceeded_is_rejected() {
    let e = err_for("budget_exceeded");
    assert!(
        e.msg
            .contains(&armbar_extract::MAX_THREAD_INSTRS.to_string()),
        "{e}"
    );
    assert!(e.msg.contains("budget"), "{e}");
}

#[test]
fn private_violation_is_rejected() {
    let e = err_for("private_violation");
    assert!(e.msg.contains("private to T0"), "{e}");
    assert_eq!(e.pos.line, 13, "{e}");
}

#[test]
fn no_bad_fixture_lifts() {
    for (name, src) in all_bad() {
        assert!(lift(src).is_err(), "{name} unexpectedly lifted");
    }
}
