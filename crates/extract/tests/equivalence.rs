//! The lifted-vs-hand-built gate: for every checked-in `.s` fixture, the
//! program the lifter produces must have the *same outcome set* under the
//! ARM model as the retired `wmm::unroll` twin — proved with the
//! explorer, not by eyeballing. This is the property CI pins before the
//! lint corpus is allowed to use the lifted path as production.

use armbar_extract::fixtures::{all, hand_built, lift_fixture};
use armbar_wmm::{explore_parallel, MemoryModel};

#[test]
fn lifted_fixtures_match_hand_built_outcome_sets() {
    for (name, _) in all() {
        let lifted = lift_fixture(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let hand = hand_built(name);
        let a = explore_parallel(&lifted.program, MemoryModel::ArmWmm, 4);
        let b = explore_parallel(&hand, MemoryModel::ArmWmm, 4);
        assert_eq!(
            a.outcomes,
            b.outcomes,
            "{name}: lifted and hand-built outcome sets diverge: {:?}",
            a.diff(&b)
        );
    }
}

#[test]
fn lifted_fixtures_are_structurally_identical() {
    // Stronger than outcome equality, and expected to hold today: the
    // lifter's dense register allocation reproduces the builders
    // instruction-for-instruction. If a benign renumbering ever breaks
    // this, demote it — the outcome-set gate above is the contract.
    for (name, _) in all() {
        let lifted = lift_fixture(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(lifted.program, hand_built(name), "{name}");
    }
}

#[test]
fn fixture_shapes_are_what_the_corpus_documents() {
    let mcs = lift_fixture("mcs_handoff").unwrap();
    assert_eq!(mcs.program.threads.len(), 2);
    assert_eq!(
        mcs.total_instrs(),
        113,
        "112-instruction shape + stray fence"
    );
    let ticket = lift_fixture("ticket_lock").unwrap();
    assert_eq!(ticket.total_instrs(), 18);
    let pilot = lift_fixture("pilot_roundtrip").unwrap();
    assert_eq!(
        pilot.total_instrs(),
        70,
        "19-chain round-trip + seeded fence"
    );
}
