//! Engine-vs-oracle differentials on *lifted* programs: the DPOR engine
//! at 1 and 4 workers must agree with the enumerative oracle on programs
//! that came through the assembly front-end, closing the loop between
//! the new input path and the explorer's correctness baseline.

use armbar_extract::fixtures::lift_fixture;
use armbar_extract::lift;
use armbar_wmm::{explore_dpor_uncached, explore_oracle, MemoryModel, Program};

const MP_ASM: &str = "\
// armbar: thread producer
// armbar: thread consumer
// armbar: shared data @ 0
// armbar: shared flag @ 1

producer:
    ldr x0, =data
    ldr x1, =flag
    mov x2, #23
    str x2, [x0]
    dmb ishst
    mov x2, #1
    str x2, [x1]
    ret

consumer:
    ldr x1, =flag
    ldr x0, =data
Lspin:
    ldr x2, [x1]
    cbz x2, Lspin
    ldr x3, [x0]
    ret
";

fn assert_engine_matches_oracle(name: &str, program: &Program) {
    for model in [MemoryModel::ArmWmm, MemoryModel::X86Tso, MemoryModel::Sc] {
        let oracle = explore_oracle(program, model);
        for workers in [1, 4] {
            let engine = explore_dpor_uncached(program, model, workers);
            assert_eq!(
                engine.outcomes,
                oracle.outcomes,
                "{name}/{model:?}/workers={workers}: {:?}",
                engine.diff(&oracle)
            );
        }
    }
}

#[test]
fn lifted_unfenced_mp_matches_oracle() {
    let lifted = lift(MP_ASM).expect("MP lifts");
    // Without a consumer-side fence the relaxed outcome must appear under
    // ARM — make sure the lifted program is actually interesting.
    let arm = explore_oracle(&lifted.program, MemoryModel::ArmWmm);
    assert!(
        arm.outcomes
            .iter()
            .any(|o| o.reg(1, 0) == 1 && o.reg(1, 1) != 23),
        "expected the relaxed MP outcome from the lifted program"
    );
    assert_engine_matches_oracle("mp", &lifted.program);
}

#[test]
fn lifted_ticket_fixture_matches_oracle() {
    let lifted = lift_fixture("ticket_lock").expect("ticket_lock lifts");
    assert!(
        lifted.total_instrs() <= 64,
        "ticket fixture must stay oracle-sized"
    );
    assert_engine_matches_oracle("ticket_lock", &lifted.program);
}
