//! The advisor exercised over the full Table-3 cross-product: every
//! `(from, to, multiplicity, deps_feasible)` cell — 3 x 3 x 2 x 2 = 36 —
//! with the preferred choice, the cost ordering of preferred and
//! alternative approaches, semantic sufficiency, and the STLR/LDAR
//! footnote caveats pinned per cell.

use armbar_barriers::advisor::Multiplicity;
use armbar_barriers::{cost_rank, recommend, AccessType, Approach, Barrier, OrderReq};

const FROMS: [Option<AccessType>; 3] = [Some(AccessType::Load), Some(AccessType::Store), None];
const TOS: [Option<AccessType>; 3] = [Some(AccessType::Load), Some(AccessType::Store), None];
const MULTS: [Multiplicity; 2] = [Multiplicity::One, Multiplicity::Many];

fn cells() -> impl Iterator<Item = OrderReq> {
    FROMS.into_iter().flat_map(|from| {
        TOS.into_iter().flat_map(move |to| {
            MULTS.into_iter().flat_map(move |m| {
                [true, false].into_iter().map(move |deps| OrderReq {
                    from,
                    to,
                    to_multiplicity: m,
                    deps_feasible: deps,
                    sc_required: true,
                })
            })
        })
    })
}

fn barrier_of(a: &Approach) -> Barrier {
    match a {
        Approach::Use(b) | Approach::MeasureAgainst { candidate: b, .. } => *b,
    }
}

/// Expand an optional side to the concrete accesses it must cover (the
/// table's `Any` row/column is the worst case of its members).
fn expand(side: Option<AccessType>) -> &'static [AccessType] {
    match side {
        Some(AccessType::Load) => &[AccessType::Load],
        Some(AccessType::Store) => &[AccessType::Store],
        None => &AccessType::ALL,
    }
}

#[test]
fn cross_product_is_exhaustive() {
    assert_eq!(cells().count(), 36);
}

#[test]
fn preferred_choice_matches_the_paper_per_cell() {
    for req in cells() {
        let best = recommend(req).best();
        let expected = match (req.from, req.to, req.deps_feasible) {
            // Load-rooted with a constructible dependency: the free idiom.
            (Some(AccessType::Load), _, true) => Approach::Use(Barrier::AddrDep),
            // Load-rooted without one: LDAR, still off the bus.
            (Some(AccessType::Load), _, false) => Approach::Use(Barrier::Ldar),
            // Store-to-store(s): the cheapest adequate barrier.
            (Some(AccessType::Store), Some(AccessType::Store), _) => Approach::Use(Barrier::DmbSt),
            // Everything else pays for DMB full.
            _ => Approach::Use(Barrier::DmbFull),
        };
        assert_eq!(best, expected, "best approach for {req:?}");
    }
}

#[test]
fn ldar_and_dmb_ld_back_up_every_load_rooted_cell() {
    for req in cells() {
        let rec = recommend(req);
        let has_ldar = rec.preferred.contains(&Approach::Use(Barrier::Ldar));
        let has_dmb_ld = rec.preferred.contains(&Approach::Use(Barrier::DmbLd));
        if req.from == Some(AccessType::Load) {
            assert!(has_ldar && has_dmb_ld, "one-way fallbacks missing: {req:?}");
            // The LDAR caveat: with no constructible dependency it is the
            // outright best; with one it only trails the free idioms.
            let ldar_pos = rec
                .preferred
                .iter()
                .position(|a| *a == Approach::Use(Barrier::Ldar))
                .unwrap();
            if req.deps_feasible {
                assert!(ldar_pos > 0, "dependencies must outrank LDAR: {req:?}");
                for a in &rec.preferred[..ldar_pos] {
                    assert!(barrier_of(a).is_dependency(), "{req:?}");
                }
            } else {
                assert_eq!(ldar_pos, 0, "{req:?}");
            }
        } else {
            assert!(
                !has_ldar && !has_dmb_ld,
                "one-way approaches cannot order {req:?}"
            );
        }
    }
}

#[test]
fn stlr_caveat_appears_exactly_where_the_footnote_says() {
    // STLR is offered only as a measured candidate, only when the later
    // side is a single store and the earlier side actually needs a full
    // barrier (the `Any -> Store` cell; `Store -> Store` already has the
    // cheaper DMB st, and load-rooted cells never pay for the bus).
    for req in cells() {
        let rec = recommend(req);
        let measured: Vec<&Approach> = rec
            .preferred
            .iter()
            .chain(&rec.alternatives)
            .filter(|a| matches!(a, Approach::MeasureAgainst { .. }))
            .collect();
        let expect_stlr = req.from.is_none()
            && req.to == Some(AccessType::Store)
            && req.to_multiplicity == Multiplicity::One;
        if expect_stlr {
            assert_eq!(
                measured,
                [&Approach::MeasureAgainst {
                    candidate: Barrier::Stlr,
                    fallback: Barrier::DmbFull,
                }],
                "{req:?}"
            );
        } else {
            assert!(measured.is_empty(), "unexpected measured caveat: {req:?}");
        }
    }
}

#[test]
fn alternatives_are_costlier_and_sorted_by_cost_rank() {
    for req in cells() {
        let rec = recommend(req);
        let best_cost = cost_rank(barrier_of(&rec.best()));
        assert!(!rec.alternatives.is_empty(), "{req:?}");
        let costs: Vec<_> = rec
            .alternatives
            .iter()
            .map(|a| cost_rank(barrier_of(a)))
            .collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{req:?}: {costs:?}");
        assert!(
            costs.iter().all(|c| *c > best_cost),
            "alternatives must cost more than the best choice: {req:?}"
        );
        // Within the preferred list, the constructible dependencies (all
        // cheaper than any instruction) come first and are cost-sorted.
        let deps: Vec<_> = rec
            .preferred
            .iter()
            .take_while(|a| barrier_of(a).is_dependency())
            .map(|a| cost_rank(barrier_of(a)))
            .collect();
        assert!(deps.windows(2).all(|w| w[0] <= w[1]), "{req:?}");
        assert!(
            rec.preferred[deps.len()..]
                .iter()
                .all(|a| !barrier_of(a).is_dependency()),
            "dependencies must lead the preferred list: {req:?}"
        );
        if !req.deps_feasible || req.from != Some(AccessType::Load) {
            assert!(
                deps.is_empty(),
                "unconstructible dependency offered: {req:?}"
            );
        }
    }
}

#[test]
fn every_offered_approach_is_semantically_sufficient() {
    for req in cells() {
        let rec = recommend(req);
        for a in rec.preferred.iter().chain(&rec.alternatives) {
            let b = barrier_of(a);
            for &e in expand(req.from) {
                for &l in expand(req.to) {
                    assert!(
                        b.orders(e, l),
                        "{b} offered for {req:?} misses {e:?}->{l:?}"
                    );
                }
            }
        }
        assert!(!rec.rationale.is_empty());
    }
}

#[test]
fn relaxing_sc_unlocks_ldapr_exactly_on_load_rooted_cells() {
    for req in cells() {
        let pc = req.allow_pc();
        let rec = recommend(pc);
        let ldapr_pos = rec
            .preferred
            .iter()
            .position(|a| *a == Approach::Use(Barrier::Ldapr));
        if pc.from == Some(AccessType::Load) {
            let ldapr = ldapr_pos.expect("load-rooted PC cell must offer LDAPR");
            let ldar = rec
                .preferred
                .iter()
                .position(|a| *a == Approach::Use(Barrier::Ldar))
                .unwrap();
            assert!(ldapr < ldar, "LDAPR must outrank LDAR when PC suffices");
            if pc.deps_feasible {
                assert!(
                    barrier_of(&rec.preferred[0]).is_dependency(),
                    "dependencies still outrank LDAPR: {pc:?}"
                );
            } else {
                assert_eq!(rec.best(), Approach::Use(Barrier::Ldapr), "{pc:?}");
            }
            // Sufficiency over the cell, pairwise like LDAR.
            for &e in expand(pc.from) {
                for &l in expand(pc.to) {
                    assert!(Barrier::Ldapr.orders(e, l), "{pc:?} misses {e:?}->{l:?}");
                }
            }
        } else {
            assert!(ldapr_pos.is_none(), "LDAPR cannot order {pc:?}");
        }
        // SC-required cells never see LDAPR at all.
        assert!(
            !recommend(req)
                .preferred
                .iter()
                .chain(&recommend(req).alternatives)
                .any(|a| barrier_of(a) == Barrier::Ldapr),
            "{req:?}"
        );
    }
}

#[test]
fn dsb_and_isb_alone_are_never_offered_as_preferred() {
    for req in cells() {
        for a in recommend(req).preferred {
            assert!(
                !matches!(
                    barrier_of(&a),
                    Barrier::DsbFull | Barrier::DsbSt | Barrier::DsbLd | Barrier::Isb
                ),
                "over-strong preferred approach for {req:?}"
            );
        }
    }
}
