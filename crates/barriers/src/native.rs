//! Native barrier execution.
//!
//! On `aarch64` every function lowers to the exact instruction the paper
//! measures, via `core::arch::asm!`. On other architectures the functions map
//! to the strongest cheap equivalent so that code written against this API is
//! portable and every path stays exercised on CI hosts:
//!
//! * x86-TSO already orders load→load, load→store and store→store, so the
//!   DMB/DSB variants other than a store→load ordering need only a compiler
//!   fence (to stop *compiler* reordering); full barriers use `mfence`-class
//!   [`core::sync::atomic::fence`]`(SeqCst)`.
//! * `ISB` has no portable equivalent; we use a compiler fence, which is the
//!   conservative no-op (nothing to flush on the host).
//!
//! Timing experiments must not be run through the portable mapping — that is
//! what the simulator crate is for. The mapping exists for *correctness*
//! portability only.

use core::sync::atomic::{compiler_fence, fence, Ordering};

use crate::kind::Barrier;

/// Full data memory barrier (`DMB ISH`): orders any access against any access.
#[inline(always)]
pub fn dmb_full() {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: `dmb ish` has no operands and no side effects beyond ordering.
    unsafe {
        core::arch::asm!("dmb ish", options(nostack, preserves_flags));
    }
    #[cfg(not(target_arch = "aarch64"))]
    // TSO still reorders store->load; SeqCst fence restores it.
    fence(Ordering::SeqCst);
}

/// Store-to-store data memory barrier (`DMB ISHST`).
#[inline(always)]
pub fn dmb_st() {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as `dmb_full`.
    unsafe {
        core::arch::asm!("dmb ishst", options(nostack, preserves_flags));
    }
    #[cfg(not(target_arch = "aarch64"))]
    // TSO preserves store->store order; forbid compiler reordering only.
    compiler_fence(Ordering::SeqCst);
}

/// Load-to-load/store data memory barrier (`DMB ISHLD`).
#[inline(always)]
pub fn dmb_ld() {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as `dmb_full`.
    unsafe {
        core::arch::asm!("dmb ishld", options(nostack, preserves_flags));
    }
    #[cfg(not(target_arch = "aarch64"))]
    // TSO preserves load->load/store order; forbid compiler reordering only.
    compiler_fence(Ordering::SeqCst);
}

/// Full data synchronization barrier (`DSB ISH`).
#[inline(always)]
pub fn dsb_full() {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as `dmb_full`; `dsb` additionally stalls until completion,
    // which is a performance property, not a safety one.
    unsafe {
        core::arch::asm!("dsb ish", options(nostack, preserves_flags));
    }
    #[cfg(not(target_arch = "aarch64"))]
    fence(Ordering::SeqCst);
}

/// Store-to-store data synchronization barrier (`DSB ISHST`).
#[inline(always)]
pub fn dsb_st() {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as `dsb_full`.
    unsafe {
        core::arch::asm!("dsb ishst", options(nostack, preserves_flags));
    }
    #[cfg(not(target_arch = "aarch64"))]
    fence(Ordering::SeqCst);
}

/// Load-to-any data synchronization barrier (`DSB ISHLD`).
#[inline(always)]
pub fn dsb_ld() {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as `dsb_full`.
    unsafe {
        core::arch::asm!("dsb ishld", options(nostack, preserves_flags));
    }
    #[cfg(not(target_arch = "aarch64"))]
    fence(Ordering::SeqCst);
}

/// Instruction synchronization barrier (`ISB`): pipeline flush.
#[inline(always)]
pub fn isb() {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: `isb` flushes the pipeline; no memory or register effects.
    unsafe {
        core::arch::asm!("isb", options(nostack, preserves_flags));
    }
    #[cfg(not(target_arch = "aarch64"))]
    compiler_fence(Ordering::SeqCst);
}

/// Execute a standalone barrier instruction by kind.
///
/// # Panics
///
/// Panics for access-attached approaches (`Ldar`, `Stlr`, dependencies):
/// those do not exist as standalone instructions — use
/// [`load_acquire_u64`] / [`store_release_u64`] / [`crate::deps`] instead.
#[inline]
pub fn execute(barrier: Barrier) {
    match barrier {
        Barrier::None => {}
        Barrier::DmbFull => dmb_full(),
        Barrier::DmbSt => dmb_st(),
        Barrier::DmbLd => dmb_ld(),
        Barrier::DsbFull => dsb_full(),
        Barrier::DsbSt => dsb_st(),
        Barrier::DsbLd => dsb_ld(),
        Barrier::Isb => isb(),
        other => panic!("{other} is access-attached; it cannot be executed standalone"),
    }
}

/// Load-acquire (`LDAR`) of a 64-bit value.
///
/// # Safety
///
/// `src` must be valid for reads, 8-byte aligned, and any concurrent writers
/// must use atomic (single-copy-atomic) stores of the full 64 bits.
#[inline(always)]
pub unsafe fn load_acquire_u64(src: *const u64) -> u64 {
    #[cfg(target_arch = "aarch64")]
    {
        let out: u64;
        // SAFETY: caller guarantees `src` is valid and aligned; `ldar` is the
        // architectural load-acquire, single-copy atomic at 64 bits.
        unsafe {
            core::arch::asm!(
                "ldar {out}, [{ptr}]",
                out = out(reg) out,
                ptr = in(reg) src,
                options(nostack, preserves_flags, readonly)
            );
        }
        out
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        // SAFETY: caller guarantees validity/alignment; AtomicU64 has the
        // same layout as u64.
        unsafe { (*src.cast::<core::sync::atomic::AtomicU64>()).load(Ordering::Acquire) }
    }
}

/// Store-release (`STLR`) of a 64-bit value.
///
/// # Safety
///
/// `dst` must be valid for writes, 8-byte aligned, and concurrent readers
/// must use atomic loads of the full 64 bits.
#[inline(always)]
pub unsafe fn store_release_u64(dst: *mut u64, value: u64) {
    #[cfg(target_arch = "aarch64")]
    // SAFETY: caller guarantees `dst` is valid and aligned; `stlr` is the
    // architectural store-release, single-copy atomic at 64 bits.
    unsafe {
        core::arch::asm!(
            "stlr {val}, [{ptr}]",
            val = in(reg) value,
            ptr = in(reg) dst,
            options(nostack, preserves_flags)
        );
    }
    #[cfg(not(target_arch = "aarch64"))]
    // SAFETY: as in `load_acquire_u64`.
    unsafe {
        (*dst.cast::<core::sync::atomic::AtomicU64>()).store(value, Ordering::Release);
    }
}

/// Plain (relaxed) 64-bit load; single-copy atomic on both backends.
///
/// # Safety
///
/// As [`load_acquire_u64`].
#[inline(always)]
pub unsafe fn load_relaxed_u64(src: *const u64) -> u64 {
    // SAFETY: caller guarantees validity/alignment.
    unsafe { (*src.cast::<core::sync::atomic::AtomicU64>()).load(Ordering::Relaxed) }
}

/// Plain (relaxed) 64-bit store; single-copy atomic on both backends.
///
/// This is the store Pilot relies on: ARMv8 guarantees aligned 64-bit stores
/// are **single-copy atomic**, so flag and payload travel together.
///
/// # Safety
///
/// As [`store_release_u64`].
#[inline(always)]
pub unsafe fn store_relaxed_u64(dst: *mut u64, value: u64) {
    // SAFETY: caller guarantees validity/alignment.
    unsafe {
        (*dst.cast::<core::sync::atomic::AtomicU64>()).store(value, Ordering::Relaxed);
    }
}

/// True when the native aarch64 `asm!` backend is active.
#[must_use]
pub const fn is_native() -> bool {
    cfg!(target_arch = "aarch64")
}

/// The instruction each `asm!` wrapper in this module promises to emit.
///
/// This is the contract the `armbar-extract` drift lint checks: it scrapes
/// the `asm!` template strings out of this file's source, lifts them with
/// the real parser, and fails if any wrapper stops emitting the barrier its
/// name claims (e.g. `dmb_st` drifting away from `dmb ishst`). Keep this
/// table in sync when adding wrappers — an unlisted `asm!` function is
/// itself reported by the lint.
pub const ASM_CONTRACT: [(&str, Barrier); 9] = [
    ("dmb_full", Barrier::DmbFull),
    ("dmb_st", Barrier::DmbSt),
    ("dmb_ld", Barrier::DmbLd),
    ("dsb_full", Barrier::DsbFull),
    ("dsb_st", Barrier::DsbSt),
    ("dsb_ld", Barrier::DsbLd),
    ("isb", Barrier::Isb),
    ("load_acquire_u64", Barrier::Ldar),
    ("store_release_u64", Barrier::Stlr),
];

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicU64;

    #[test]
    fn standalone_barriers_execute() {
        for b in Barrier::INSTRUCTIONS {
            execute(b);
        }
        execute(Barrier::None);
    }

    #[test]
    #[should_panic(expected = "access-attached")]
    fn ldar_is_not_standalone() {
        execute(Barrier::Ldar);
    }

    #[test]
    fn acquire_release_roundtrip() {
        let cell = AtomicU64::new(0);
        let ptr = &cell as *const AtomicU64 as *mut u64;
        // SAFETY: `cell` is a live, aligned AtomicU64.
        unsafe {
            store_release_u64(ptr, 0xDEAD_BEEF_CAFE_F00D);
            assert_eq!(load_acquire_u64(ptr), 0xDEAD_BEEF_CAFE_F00D);
            store_relaxed_u64(ptr, 42);
            assert_eq!(load_relaxed_u64(ptr), 42);
        }
    }

    #[test]
    fn message_passing_with_native_barriers() {
        // The Table 1 pattern, run with real threads and the native mapping:
        // the release/acquire pairing must make `local == 23` the only
        // observable outcome on every architecture.
        use std::sync::atomic::{AtomicU64, Ordering};
        for _ in 0..200 {
            let data = AtomicU64::new(0);
            let flag = AtomicU64::new(0);
            std::thread::scope(|s| {
                s.spawn(|| {
                    data.store(23, Ordering::Relaxed);
                    dmb_st();
                    flag.store(1, Ordering::Relaxed);
                });
                s.spawn(|| {
                    while flag.load(Ordering::Relaxed) == 0 {
                        std::hint::spin_loop();
                    }
                    dmb_ld();
                    assert_eq!(data.load(Ordering::Relaxed), 23);
                });
            });
        }
    }
}
