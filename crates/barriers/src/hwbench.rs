//! Host-hardware runner for Algorithm 1 — the path that regenerates the
//! paper's figures on a *real* ARM machine.
//!
//! [`run_hw_model`] executes the abstracted model with genuine loads,
//! stores, nops, and (on aarch64) the genuine barrier instructions, over a
//! buffer whose cache lines were last written by a peer thread — the
//! paper's construction for making every access a remote memory reference.
//! Two threads alternate over the shared arena in strict phases so each
//! phase's accesses hit lines owned by the other core.
//!
//! On non-ARM hosts this still runs (with the portable barrier mapping) and
//! is used by tests for *functional* coverage; the numbers only mean
//! something on aarch64.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::kind::Barrier;
use crate::{deps, native};

/// Which memory operations Algorithm 1's lines 4 and 8 perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwOps {
    /// No memory operations (Figure 2's intrinsic-overhead shape).
    None,
    /// Two stores to different lines (Figure 3).
    StoreStore,
    /// A load then a store (Figure 5).
    LoadStore,
}

/// One hardware-model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwSpec {
    /// The memory-operation shape.
    pub ops: HwOps,
    /// The order-preserving approach under test.
    pub barrier: Barrier,
    /// Place the barrier strictly after the first access (`X-1`) rather
    /// than after the nops (`X-2`).
    pub after_first: bool,
    /// Nops between the two accesses.
    pub nops: u32,
}

/// Result of a hardware run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwResult {
    /// Loop iterations executed (per thread phase).
    pub iterations: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Loops per second.
    pub loops_per_sec: f64,
}

#[inline(always)]
fn nop_block(n: u32) {
    for _ in 0..n {
        // A dependency-free single-cycle op the optimizer must keep.
        core::hint::spin_loop();
    }
}

/// Execute the barrier/idiom at its location inside the loop body.
///
/// `loaded` is the value of the first access when it was a load (for the
/// dependency idioms); returns an address offset (always zero) the caller
/// folds into the second access, realizing ADDR/DATA deps.
#[inline(always)]
fn run_approach(b: Barrier, loaded: u64) -> u64 {
    match b {
        Barrier::None | Barrier::Ldar | Barrier::Stlr => 0,
        Barrier::DataDep | Barrier::AddrDep => deps::dep_zero(loaded),
        Barrier::Ctrl => {
            // A branch the compiler cannot elide; taken path is empty.
            if core::hint::black_box(loaded) == u64::MAX {
                core::hint::black_box(0u64);
            }
            0
        }
        Barrier::CtrlIsb => {
            if core::hint::black_box(loaded) != u64::MAX {
                native::isb();
            }
            0
        }
        f => {
            native::execute(f);
            0
        }
    }
}

/// Run the abstracted model on real threads: two threads take strict turns
/// over a shared arena of `lines` cache lines, each turn running
/// `iterations / turns` loop iterations. Returns the measuring thread's
/// aggregate rate.
///
/// # Panics
///
/// Panics if `iterations == 0`.
#[must_use]
pub fn run_hw_model(spec: HwSpec, iterations: u64) -> HwResult {
    assert!(iterations > 0);
    const LINES: usize = 4096; // 256 KiB arena: beyond L1, fits L2
    const TURNS: u64 = 8;
    let arena: Vec<AtomicU64> = (0..LINES * 8).map(|_| AtomicU64::new(0)).collect();
    // Strict alternation token: whose turn it is (0 or 1).
    let turn = AtomicUsize::new(0);
    let per_turn = (iterations / TURNS).max(1);

    let body = |me: usize, measure: bool| -> f64 {
        let mut idx = 0usize;
        let mut spent = 0.0f64;
        for _round in 0..TURNS {
            // Wait for our turn (the other thread just dirtied the arena).
            while turn.load(Ordering::Acquire) % 2 != me {
                std::hint::spin_loop();
            }
            let start = Instant::now();
            for i in 0..per_turn {
                // Two distinct lines per iteration (8 u64s = 1 line).
                let a1 = idx % (LINES * 8 / 2);
                let a2 = LINES * 8 / 2 + a1;
                idx += 8;
                let mut loaded = 0u64;
                match spec.ops {
                    HwOps::None => {}
                    HwOps::StoreStore => {
                        arena[a1].store(i, Ordering::Relaxed);
                    }
                    HwOps::LoadStore => {
                        loaded = if spec.barrier == Barrier::Ldar {
                            // SAFETY: arena cell is a live aligned AtomicU64.
                            unsafe { native::load_acquire_u64(arena[a1].as_ptr().cast_const()) }
                        } else {
                            arena[a1].load(Ordering::Relaxed)
                        };
                    }
                }
                let off = if spec.after_first {
                    run_approach(spec.barrier, loaded)
                } else {
                    0
                };
                nop_block(spec.nops);
                let off2 = if spec.after_first {
                    0
                } else {
                    run_approach(spec.barrier, loaded)
                };
                let slot = a2 + (off + off2) as usize;
                match spec.ops {
                    HwOps::None => {}
                    HwOps::StoreStore | HwOps::LoadStore => {
                        if spec.barrier == Barrier::Stlr {
                            // SAFETY: as above.
                            unsafe { native::store_release_u64(arena[slot].as_ptr(), i) }
                        } else {
                            arena[slot].store(i, Ordering::Relaxed);
                        }
                    }
                }
            }
            if measure {
                spent += start.elapsed().as_secs_f64();
            }
            turn.fetch_add(1, Ordering::AcqRel);
        }
        spent
    };

    let mut seconds = 0.0;
    std::thread::scope(|s| {
        let h = s.spawn(|| body(0, true));
        s.spawn(|| body(1, false));
        seconds = h.join().expect("measuring thread");
    });
    let iters = per_turn * TURNS;
    HwResult {
        iterations: iters,
        seconds,
        loops_per_sec: iters as f64 / seconds.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(spec: HwSpec) -> HwResult {
        run_hw_model(spec, 4_000)
    }

    #[test]
    fn all_shapes_and_barriers_run_to_completion() {
        for ops in [HwOps::None, HwOps::StoreStore, HwOps::LoadStore] {
            for barrier in [
                Barrier::None,
                Barrier::DmbFull,
                Barrier::DmbSt,
                Barrier::DmbLd,
                Barrier::DsbFull,
                Barrier::Isb,
                Barrier::Stlr,
                Barrier::Ldar,
                Barrier::DataDep,
                Barrier::AddrDep,
                Barrier::Ctrl,
                Barrier::CtrlIsb,
            ] {
                let r = quick(HwSpec {
                    ops,
                    barrier,
                    after_first: true,
                    nops: 5,
                });
                assert!(r.iterations > 0, "{ops:?}/{barrier}");
                assert!(r.loops_per_sec > 0.0);
            }
        }
    }

    #[test]
    fn results_scale_with_iterations() {
        let spec = HwSpec {
            ops: HwOps::StoreStore,
            barrier: Barrier::None,
            after_first: false,
            nops: 3,
        };
        let small = run_hw_model(spec, 2_000);
        let large = run_hw_model(spec, 16_000);
        assert!(large.iterations > small.iterations);
    }
}
