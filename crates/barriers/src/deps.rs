//! Bogus-dependency constructors (§2.2, "DATA Dep" / "ADDR Dep" / "CTRL").
//!
//! On ARM, a syntactic register dependency from a load to a later access
//! preserves their order even when the dependency is semantically vacuous
//! (`x ^ x == 0`). These helpers build such dependencies in a way the
//! optimizer cannot delete: the xor-with-self goes through
//! [`core::hint::black_box`], which keeps the data flow opaque while
//! compiling to (at most) a couple of ALU instructions — exactly the idiom
//! the paper describes.
//!
//! On non-ARM hosts the same functions are correct no-ops cost-wise: the
//! ordering they exist to enforce already holds under TSO, and the arithmetic
//! is still performed so cross-platform behaviour is identical.

use core::hint::black_box;

/// Zero derived from `loaded` in a way the compiler must treat as data flow.
///
/// This is the kernel of every bogus dependency: `dep_zero(x)` is always `0`,
/// but its value *depends on* `x` as far as the instruction stream is
/// concerned.
#[inline(always)]
#[must_use]
pub fn dep_zero(loaded: u64) -> u64 {
    black_box(loaded) ^ loaded
}

/// Build a **data dependency**: returns `to_store`, made dependent on
/// `loaded`. Storing the result orders the feeding load before the store.
#[inline(always)]
#[must_use]
pub fn data_dep(loaded: u64, to_store: u64) -> u64 {
    to_store.wrapping_add(dep_zero(loaded))
}

/// Build an **address dependency**: returns `addr`, made dependent on
/// `loaded`. Accessing through the result orders the feeding load before the
/// access (load *or* store).
///
/// The pointer value is unchanged; only its provenance-in-the-pipeline is.
#[inline(always)]
#[must_use]
pub fn addr_dep<T>(loaded: u64, addr: *mut T) -> *mut T {
    addr.wrapping_byte_add(dep_zero(loaded) as usize)
}

/// `addr_dep` for shared references.
#[inline(always)]
#[must_use]
pub fn addr_dep_ref<T>(loaded: u64, r: &T) -> &T {
    // SAFETY: the offset is always zero, so the pointer is unchanged and the
    // original borrow's validity carries over.
    unsafe { &*(r as *const T).wrapping_byte_add(dep_zero(loaded) as usize) }
}

/// Build a **control dependency**: runs `then` only when `cond(loaded)`
/// holds, through a branch the compiler cannot convert into straight-line
/// code. Orders the feeding load before *stores* inside `then`.
///
/// Returns whether the branch was taken.
#[inline(always)]
pub fn ctrl_dep<F: FnOnce()>(loaded: u64, expected: u64, then: F) -> bool {
    if black_box(loaded) == expected {
        then();
        true
    } else {
        false
    }
}

/// Control dependency plus `ISB`: additionally orders the feeding load before
/// later *loads* (the flush kills load speculation past the branch).
#[inline(always)]
pub fn ctrl_isb_dep<F: FnOnce()>(loaded: u64, expected: u64, then: F) -> bool {
    if black_box(loaded) == expected {
        crate::native::isb();
        then();
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_zero_is_always_zero() {
        for v in [0, 1, u64::MAX, 0x5555_5555_5555_5555, 23] {
            assert_eq!(dep_zero(v), 0);
        }
    }

    #[test]
    fn data_dep_preserves_value() {
        assert_eq!(data_dep(0xABCD, 42), 42);
        assert_eq!(data_dep(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(data_dep(7, 0), 0);
    }

    #[test]
    fn addr_dep_preserves_pointer() {
        let mut x = 5u32;
        let p = &mut x as *mut u32;
        let q = addr_dep(0xFFFF_0000, p);
        assert_eq!(p, q);
        // SAFETY: q == p, which points at live `x`.
        unsafe {
            *q = 9;
        }
        assert_eq!(x, 9);
    }

    #[test]
    fn addr_dep_ref_preserves_reference() {
        let x = [1u64, 2, 3];
        let r = addr_dep_ref(999, &x[1]);
        assert_eq!(*r, 2);
    }

    #[test]
    fn ctrl_dep_branches_correctly() {
        let mut hit = false;
        assert!(ctrl_dep(1, 1, || hit = true));
        assert!(hit);
        let mut hit2 = false;
        assert!(!ctrl_dep(1, 2, || hit2 = true));
        assert!(!hit2);
    }

    #[test]
    fn ctrl_isb_dep_branches_correctly() {
        let mut n = 0u32;
        assert!(ctrl_isb_dep(23, 23, || n += 1));
        assert!(!ctrl_isb_dep(23, 24, || n += 10));
        assert_eq!(n, 1);
    }
}
