//! The empirical overhead ranking of order-preserving approaches.
//!
//! The paper's headline list (§1):
//!
//! ```text
//! DSB > DMB full > DMB st > DMB ld ≈ LDAR ≥ Dep
//! ```
//!
//! with two riders: all DSB options perform alike, and **STLR is unstable** —
//! its measured overhead lies between DSB and DMB st and it sometimes loses
//! to the semantically *stronger* DMB full (Observation 3). [`CostRank`]
//! encodes that ranking so callers can reason about expected cost, and
//! [`cost_rank`] places every [`Barrier`] on it.

use crate::kind::{AccessType, Barrier};

/// Expected-overhead band of an order-preserving approach, cheapest first.
///
/// Ranks compare with `<` = cheaper. STLR gets its own band between
/// [`CostRank::StoreBarrier`] and [`CostRank::SyncBarrier`] because its
/// measured cost floats across that whole range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostRank {
    /// Free (no ordering): `No Barrier`.
    Free,
    /// Bogus dependencies: no bus traffic, no pipeline penalty.
    Dependency,
    /// RCpc acquire: `LDAPR` — in-core like `LDAR`, but never serializes
    /// against earlier store-releases draining, so it is strictly cheaper
    /// than the [`CostRank::LoadBarrier`] band whenever releases are in
    /// flight and never dearer.
    RcpcAcquire,
    /// Local load-ordering: `DMB ld`, `LDAR` (no bus traffic).
    LoadBarrier,
    /// Pipeline flush: `ISB`, `CTRL+ISB`.
    PipelineFlush,
    /// Store-ordering memory-barrier transaction: `DMB st`.
    StoreBarrier,
    /// Full memory-barrier transaction: `DMB full`.
    FullBarrier,
    /// Unstable: `STLR` — between `DMB st` and DSB, sometimes above
    /// `DMB full`.
    StoreRelease,
    /// Synchronization barrier transaction: all `DSB` options.
    SyncBarrier,
}

/// Place a barrier on the empirical cost ranking.
#[must_use]
pub fn cost_rank(b: Barrier) -> CostRank {
    match b {
        Barrier::None => CostRank::Free,
        Barrier::DataDep | Barrier::AddrDep | Barrier::Ctrl => CostRank::Dependency,
        Barrier::Ldapr => CostRank::RcpcAcquire,
        Barrier::DmbLd | Barrier::Ldar => CostRank::LoadBarrier,
        Barrier::Isb | Barrier::CtrlIsb => CostRank::PipelineFlush,
        Barrier::DmbSt => CostRank::StoreBarrier,
        Barrier::DmbFull => CostRank::FullBarrier,
        Barrier::Stlr => CostRank::StoreRelease,
        Barrier::DsbFull | Barrier::DsbSt | Barrier::DsbLd => CostRank::SyncBarrier,
    }
}

/// Convenience re-export of [`Barrier::orders`] as a free function, so the
/// explorer and the advisor share one source of truth for semantics.
#[must_use]
pub fn orders(b: Barrier, earlier: AccessType, later: AccessType) -> bool {
    b.orders(earlier, later)
}

/// Whether `b`'s expected cost is *stable* across platforms and placements.
///
/// Only STLR is flagged unstable: "Performance comparison with DMB full is
/// needed before using STLR" (Observation 3).
#[must_use]
pub fn is_stable(b: Barrier) -> bool {
    !matches!(b, Barrier::Stlr)
}

/// The cheapest approach (by [`cost_rank`]) among `candidates` that still
/// orders `earlier` before `later`. Ties break toward the earlier candidate.
#[must_use]
pub fn cheapest_ordering(
    candidates: &[Barrier],
    earlier: AccessType,
    later: AccessType,
) -> Option<Barrier> {
    candidates
        .iter()
        .copied()
        .filter(|b| b.orders(earlier, later))
        .min_by_key(|b| cost_rank(*b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessType::{Load, Store};

    #[test]
    fn headline_ranking_holds() {
        // DSB > DMB full > DMB st > DMB ld ≈ LDAR ≥ Dep
        assert!(cost_rank(Barrier::DsbFull) > cost_rank(Barrier::DmbFull));
        assert!(cost_rank(Barrier::DmbFull) > cost_rank(Barrier::DmbSt));
        assert!(cost_rank(Barrier::DmbSt) > cost_rank(Barrier::DmbLd));
        assert_eq!(cost_rank(Barrier::DmbLd), cost_rank(Barrier::Ldar));
        assert!(cost_rank(Barrier::DmbLd) >= cost_rank(Barrier::DataDep));
    }

    #[test]
    fn ldapr_sits_strictly_between_dependencies_and_ldar() {
        assert!(cost_rank(Barrier::Ldapr) < cost_rank(Barrier::Ldar));
        assert!(cost_rank(Barrier::Ldapr) > cost_rank(Barrier::DataDep));
        assert!(is_stable(Barrier::Ldapr));
    }

    #[test]
    fn dsb_options_rank_alike() {
        assert_eq!(cost_rank(Barrier::DsbFull), cost_rank(Barrier::DsbSt));
        assert_eq!(cost_rank(Barrier::DsbFull), cost_rank(Barrier::DsbLd));
    }

    #[test]
    fn stlr_is_between_dmb_st_and_dsb_and_unstable() {
        assert!(cost_rank(Barrier::Stlr) > cost_rank(Barrier::DmbSt));
        assert!(cost_rank(Barrier::Stlr) < cost_rank(Barrier::DsbFull));
        assert!(!is_stable(Barrier::Stlr));
        assert!(is_stable(Barrier::DmbFull));
    }

    #[test]
    fn cheapest_ordering_picks_dependency_for_load_store() {
        let got = cheapest_ordering(&Barrier::ALL, Load, Store).unwrap();
        assert_eq!(cost_rank(got), CostRank::Dependency);
    }

    #[test]
    fn cheapest_ordering_for_store_store_is_dmb_st() {
        assert_eq!(
            cheapest_ordering(&Barrier::ALL, Store, Store),
            Some(Barrier::DmbSt)
        );
    }

    #[test]
    fn cheapest_ordering_for_store_load_is_dmb_full() {
        // Only full barriers order store->load.
        assert_eq!(
            cheapest_ordering(&Barrier::ALL, Store, Load),
            Some(Barrier::DmbFull)
        );
    }

    #[test]
    fn cheapest_ordering_none_when_no_candidate_orders() {
        assert_eq!(cheapest_ordering(&[Barrier::DmbSt], Load, Load), None);
    }
}
