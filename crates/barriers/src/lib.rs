//! ARM barrier and order-preserving-approach abstraction.
//!
//! This crate models the order-preserving options ARMv8 offers under its
//! weakly-ordered memory model (WMM), as studied in *"No Barrier in the Road:
//! A Comprehensive Study and Optimization of ARM Barriers"* (PPoPP 2020):
//!
//! * **Barrier instructions** — `DMB` (data memory barrier, with `full`/`st`/
//!   `ld` access-type options), `DSB` (data synchronization barrier), `ISB`
//!   (instruction synchronization barrier), and the one-way `LDAR`
//!   (load-acquire) / `STLR` (store-release) pair.
//! * **Dependencies** — bogus data, address, and control dependencies
//!   (optionally with `ISB`), which preserve order without any instruction
//!   that could reach the bus.
//!
//! The crate provides:
//!
//! * [`Barrier`] — the complete taxonomy, with predicates describing each
//!   option's semantics (what it orders) and its typical implementation
//!   (whether an ACE bus transaction is required, whether it blocks
//!   non-memory instructions, …). The simulator crate consumes these.
//! * [`native`] — `asm!`-based implementations on aarch64 and a documented
//!   strongest-cheap mapping elsewhere, so the same code runs on the paper's
//!   hardware and on CI hosts.
//! * [`deps`] — constructors for bogus data/address/control dependencies that
//!   survive optimization.
//! * [`advisor`] — Table 3 of the paper as an executable decision procedure.
//! * [`strength`] — the empirical overhead ranking
//!   `DSB > DMB full > DMB st > DMB ld ≈ LDAR ≥ Dep` (with STLR unstable).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod advisor;
pub mod deps;
pub mod hwbench;
pub mod kind;
pub mod native;
pub mod strength;

pub use advisor::{recommend, Approach, OrderReq, Recommendation};
pub use kind::{AccessType, Acquire, Barrier, BusTransaction, ResponseMode};
pub use strength::{cost_rank, orders, CostRank};
