//! Table 3 as an executable decision procedure.
//!
//! Given which program-order-earlier access(es) must be ordered before which
//! later access(es), [`recommend`] returns the paper's suggestion: the
//! preferred approach (dependencies where constructible, else the cheapest
//! adequate barrier), alternatives, and the caveats the table footnotes
//! carry (STLR needs a measurement against DMB full; LDAR/DMB ld when
//! dependencies are hard to construct; RCpc as a future option).

use core::fmt;

use crate::kind::{AccessType, Barrier};
use crate::strength::cost_rank;

/// How many later accesses need ordering — Table 3 distinguishes `Load`
/// from `Loads` (one vs. many) because a single pair can use a finer
/// dependency than a fan-out can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multiplicity {
    /// A single access.
    One,
    /// Several accesses (e.g. all later loads in a critical section).
    Many,
}

/// An ordering requirement: "make `from` observable before `to`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderReq {
    /// The earlier side. `None` means "any access" (the table's `Any` row).
    pub from: Option<AccessType>,
    /// The later side. `None` means "any access" (the table's `Any` column).
    pub to: Option<AccessType>,
    /// Whether the later side is one access or many.
    pub to_multiplicity: Multiplicity,
    /// Whether the caller can realistically construct a bogus dependency
    /// (needs the earlier access to be a load whose value is in hand).
    pub deps_feasible: bool,
    /// Whether the acquiring side must be **RCsc** — sequentially consistent
    /// against store-releases across threads (e.g. Dekker-style mutual
    /// exclusion through release/acquire pairs) — rather than merely
    /// pairwise processor-consistent. When `false`, the cheaper RCpc
    /// `LDAPR` suffices and is preferred; when `true` it is never offered.
    pub sc_required: bool,
}

impl OrderReq {
    /// Requirement between two single accesses, dependencies feasible.
    /// Conservatively assumes RCsc is required; use [`OrderReq::allow_pc`]
    /// when pairwise release/acquire (RCpc) visibility is enough.
    #[must_use]
    pub fn pair(from: AccessType, to: AccessType) -> Self {
        OrderReq {
            from: Some(from),
            to: Some(to),
            to_multiplicity: Multiplicity::One,
            deps_feasible: true,
            sc_required: true,
        }
    }

    /// The same requirement, declaring that processor-consistent
    /// release/acquire ordering suffices (no SC-per-location demand across
    /// threads), which unlocks the RCpc `LDAPR` recommendation.
    #[must_use]
    pub fn allow_pc(self) -> Self {
        OrderReq {
            sc_required: false,
            ..self
        }
    }
}

/// A concrete order-preserving approach the advisor can suggest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Use the given barrier/idiom.
    Use(Barrier),
    /// Use the given barrier, but only after measuring it against the
    /// fallback (the STLR footnote: compare against DMB full first).
    MeasureAgainst {
        /// The candidate (e.g. STLR).
        candidate: Barrier,
        /// The safe fallback (e.g. DMB full).
        fallback: Barrier,
    },
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Approach::Use(b) => write!(f, "{b}"),
            Approach::MeasureAgainst {
                candidate,
                fallback,
            } => {
                write!(f, "{candidate} (measure against {fallback} first)")
            }
        }
    }
}

/// The advisor's output for one [`OrderReq`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// Best choice, cheapest first.
    pub preferred: Vec<Approach>,
    /// Correct but costlier alternatives, cheapest first.
    pub alternatives: Vec<Approach>,
    /// Human-readable rationale referencing the paper's observations.
    pub rationale: &'static str,
}

impl Recommendation {
    /// The single best approach.
    #[must_use]
    pub fn best(&self) -> Approach {
        self.preferred[0]
    }

    /// Every barrier mentioned anywhere in the recommendation.
    #[must_use]
    pub fn mentioned(&self) -> Vec<Barrier> {
        self.preferred
            .iter()
            .chain(&self.alternatives)
            .map(|a| match a {
                Approach::Use(b) | Approach::MeasureAgainst { candidate: b, .. } => *b,
            })
            .collect()
    }
}

/// Which dependency idioms can order `from` before `to` for the given
/// multiplicity. (Data/control dependencies feed exactly one store; an
/// address dependency can cover many accesses through a common base.)
fn feasible_deps(from: AccessType, to: AccessType, m: Multiplicity) -> Vec<Barrier> {
    let mut v = Vec::new();
    if from != AccessType::Load {
        return v;
    }
    // Address dependencies order load->load and load->store, one or many.
    v.push(Barrier::AddrDep);
    if to == AccessType::Store && m == Multiplicity::One {
        v.push(Barrier::DataDep);
        v.push(Barrier::Ctrl);
    }
    if to == AccessType::Load {
        v.push(Barrier::CtrlIsb);
    }
    v
}

/// Table 3: recommend order-preserving approaches for a requirement.
///
/// The decision procedure follows the paper's implications:
///
/// * earlier side is a **load** → prefer dependencies (Observation 6), then
///   `LDAR`/`DMB ld`; never pay for the bus.
/// * **store → store** → `DMB st` (the cheapest adequate barrier).
/// * anything involving **store → load**, or an unknown earlier side →
///   `DMB full`; `STLR` may replace it when the later side is a single store,
///   but only after measurement (Observation 3).
/// * `DSB` is never recommended: it is semantically stronger than any
///   ordering requirement needs and always costs the most (Observation 1).
#[must_use]
pub fn recommend(req: OrderReq) -> Recommendation {
    use AccessType::{Load, Store};

    // The "Any" row/column must satisfy the worst case of its members.
    let froms: &[AccessType] = match req.from {
        Some(Load) => &[Load],
        Some(Store) => &[Store],
        None => &AccessType::ALL,
    };
    let tos: &[AccessType] = match req.to {
        Some(Load) => &[Load],
        Some(Store) => &[Store],
        None => &AccessType::ALL,
    };

    let covers = |b: Barrier| froms.iter().all(|&e| tos.iter().all(|&l| b.orders(e, l)));

    // Load-rooted orderings never need the bus.
    if req.from == Some(Load) {
        let mut preferred: Vec<Approach> = Vec::new();
        if req.deps_feasible {
            let mut deps: Vec<Barrier> = tos
                .iter()
                .flat_map(|&t| feasible_deps(Load, t, req.to_multiplicity))
                .filter(|&b| covers(b))
                .collect();
            deps.sort_by_key(|b| cost_rank(*b));
            deps.dedup();
            preferred.extend(deps.into_iter().map(Approach::Use));
        }
        // LDAPR first when pairwise-PC ordering suffices (ARMv8.3, cheapest
        // acquire), then LDAR and DMB ld per the table's option columns.
        if !req.sc_required {
            preferred.push(Approach::Use(Barrier::Ldapr));
        }
        preferred.push(Approach::Use(Barrier::Ldar));
        preferred.push(Approach::Use(Barrier::DmbLd));
        let alternatives = vec![Approach::Use(Barrier::DmbFull)];
        let rationale = if !req.sc_required {
            "Load-rooted ordering where processor consistency suffices: the \
             RCpc LDAPR orders the load before everything younger without \
             ever waiting for earlier store-releases to drain; LDAR/DMB ld \
             remain the RCsc-safe fallbacks (Observation 6)."
        } else if req.deps_feasible {
            "Load-rooted ordering: bogus dependencies cost nothing and send \
             nothing to the bus (Observation 6); LDAR/DMB ld are the fallback \
             when dependencies are hard to construct."
        } else {
            "Load-rooted ordering without a constructible dependency: LDAR and \
             DMB ld are typically resolved in-core, without a bus transaction \
             (Observation 6)."
        };
        return Recommendation {
            preferred,
            alternatives,
            rationale,
        };
    }

    // Store -> Store(s): DMB st.
    if req.from == Some(Store) && req.to == Some(Store) {
        return Recommendation {
            preferred: vec![Approach::Use(Barrier::DmbSt)],
            alternatives: vec![Approach::Use(Barrier::DmbFull)],
            rationale: "Store-to-store ordering: DMB st is the cheapest adequate \
                        barrier; it never blocks non-store instructions, though it \
                        still stalls later stores after an RMR (Observation 2).",
        };
    }

    // Everything else needs a full barrier; STLR is a measured-only candidate
    // when the later side is a single store.
    let stlr_applies = req.to == Some(Store)
        && req.to_multiplicity == Multiplicity::One
        && froms.iter().all(|&e| Barrier::Stlr.orders(e, Store));
    let mut preferred = vec![Approach::Use(Barrier::DmbFull)];
    if stlr_applies {
        preferred.push(Approach::MeasureAgainst {
            candidate: Barrier::Stlr,
            fallback: Barrier::DmbFull,
        });
    }
    debug_assert!(covers(Barrier::DmbFull));
    Recommendation {
        preferred,
        alternatives: vec![Approach::Use(Barrier::DsbFull)],
        rationale: "Orderings rooted at a store (or unknown) toward a load need a \
                    full barrier; keep it away from RMRs (Observation 2). STLR is \
                    weaker on paper but unstable in practice — measure against \
                    DMB full before adopting it (Observation 3).",
    }
}

/// Render the full Table 3 grid as rows of `(from, to, best approach)`.
#[must_use]
pub fn table3() -> Vec<(String, String, Recommendation)> {
    use AccessType::{Load, Store};
    let rows: [(Option<AccessType>, Multiplicity, &str); 3] = [
        (Some(Load), Multiplicity::One, "Load"),
        (Some(Store), Multiplicity::One, "Store"),
        (None, Multiplicity::One, "Any"),
    ];
    let cols: [(Option<AccessType>, Multiplicity, &str); 4] = [
        (Some(Load), Multiplicity::One, "Load"),
        (Some(Load), Multiplicity::Many, "Loads"),
        (Some(Store), Multiplicity::One, "Store"),
        (Some(Store), Multiplicity::Many, "Stores"),
    ];
    let mut out = Vec::new();
    for (from, _, fname) in rows {
        for (to, mult, tname) in cols {
            let rec = recommend(OrderReq {
                from,
                to,
                to_multiplicity: mult,
                deps_feasible: true,
                sc_required: true,
            });
            out.push((fname.to_string(), tname.to_string(), rec));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessType::{Load, Store};

    fn best_barrier(req: OrderReq) -> Barrier {
        match recommend(req).best() {
            Approach::Use(b) => b,
            Approach::MeasureAgainst { candidate, .. } => candidate,
        }
    }

    #[test]
    fn load_rooted_prefers_dependencies() {
        let rec = recommend(OrderReq::pair(Load, Store));
        assert!(matches!(rec.best(), Approach::Use(b) if b.is_dependency()));
    }

    #[test]
    fn load_to_load_prefers_addr_dep_then_ldar() {
        let rec = recommend(OrderReq::pair(Load, Load));
        assert_eq!(rec.best(), Approach::Use(Barrier::AddrDep));
        assert!(rec.preferred.contains(&Approach::Use(Barrier::Ldar)));
        assert!(rec.preferred.contains(&Approach::Use(Barrier::DmbLd)));
    }

    #[test]
    fn load_rooted_without_deps_prefers_ldar() {
        let rec = recommend(OrderReq {
            deps_feasible: false,
            ..OrderReq::pair(Load, Store)
        });
        assert_eq!(rec.best(), Approach::Use(Barrier::Ldar));
    }

    #[test]
    fn store_store_gets_dmb_st() {
        assert_eq!(best_barrier(OrderReq::pair(Store, Store)), Barrier::DmbSt);
    }

    #[test]
    fn store_load_gets_dmb_full() {
        assert_eq!(best_barrier(OrderReq::pair(Store, Load)), Barrier::DmbFull);
    }

    #[test]
    fn any_to_store_offers_stlr_with_measurement_caveat() {
        let rec = recommend(OrderReq {
            from: None,
            to: Some(Store),
            to_multiplicity: Multiplicity::One,
            deps_feasible: false,
            sc_required: true,
        });
        assert_eq!(rec.best(), Approach::Use(Barrier::DmbFull));
        assert!(rec.preferred.iter().any(|a| matches!(
            a,
            Approach::MeasureAgainst {
                candidate: Barrier::Stlr,
                fallback: Barrier::DmbFull
            }
        )));
    }

    #[test]
    fn dsb_is_never_preferred() {
        for (_, _, rec) in table3() {
            for a in &rec.preferred {
                let b = match a {
                    Approach::Use(b) | Approach::MeasureAgainst { candidate: b, .. } => *b,
                };
                assert!(
                    !matches!(b, Barrier::DsbFull | Barrier::DsbSt | Barrier::DsbLd),
                    "DSB recommended as preferred"
                );
            }
        }
    }

    #[test]
    fn every_recommendation_is_semantically_sufficient() {
        // Any preferred approach must actually order the requested pair
        // (MeasureAgainst candidates too, by construction of the table).
        for from in [Some(Load), Some(Store), None] {
            for to in [Some(Load), Some(Store), None] {
                for m in [Multiplicity::One, Multiplicity::Many] {
                    for deps in [true, false] {
                        for sc in [true, false] {
                            let req = OrderReq {
                                from,
                                to,
                                to_multiplicity: m,
                                deps_feasible: deps,
                                sc_required: sc,
                            };
                            let rec = recommend(req);
                            assert!(!rec.preferred.is_empty());
                            let froms: &[AccessType] = match from {
                                Some(Load) => &[Load],
                                Some(Store) => &[Store],
                                None => &AccessType::ALL,
                            };
                            let tos: &[AccessType] = match to {
                                Some(Load) => &[Load],
                                Some(Store) => &[Store],
                                None => &AccessType::ALL,
                            };
                            for a in &rec.preferred {
                                let b = match a {
                                    Approach::Use(b) => *b,
                                    Approach::MeasureAgainst { candidate, .. } => *candidate,
                                };
                                for &e in froms {
                                    for &l in tos {
                                        assert!(
                                            b.orders(e, l),
                                            "{b} recommended for {e}->{l} but does not order it"
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pc_sufficient_load_rooted_cells_lead_with_ldapr() {
        for to in [Load, Store] {
            let rec = recommend(OrderReq {
                deps_feasible: false,
                ..OrderReq::pair(Load, to).allow_pc()
            });
            assert_eq!(rec.best(), Approach::Use(Barrier::Ldapr), "load->{to}");
            // The RCsc-safe fallbacks still follow, in cost order.
            assert!(rec.preferred.contains(&Approach::Use(Barrier::Ldar)));
            assert!(rec.preferred.contains(&Approach::Use(Barrier::DmbLd)));
        }
    }

    #[test]
    fn ldapr_is_never_offered_when_sc_is_required() {
        for from in [Some(Load), Some(Store), None] {
            for to in [Some(Load), Some(Store), None] {
                for m in [Multiplicity::One, Multiplicity::Many] {
                    for deps in [true, false] {
                        let rec = recommend(OrderReq {
                            from,
                            to,
                            to_multiplicity: m,
                            deps_feasible: deps,
                            sc_required: true,
                        });
                        assert!(
                            !rec.mentioned().contains(&Barrier::Ldapr),
                            "LDAPR offered for {from:?}->{to:?} despite SC requirement"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn table3_has_twelve_cells() {
        assert_eq!(table3().len(), 12);
    }
}
