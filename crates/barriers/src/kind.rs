//! The taxonomy of ARM order-preserving approaches.
//!
//! Each variant of [`Barrier`] is one of the options §2.2 of the paper lists.
//! The predicates on `Barrier` encode two distinct things:
//!
//! 1. **Architectural semantics** ([`Barrier::orders_before`] /
//!    [`Barrier::orders_after`]): which program-order-earlier accesses must be
//!    observable before which program-order-later accesses. These are what the
//!    exhaustive weak-memory explorer enforces.
//! 2. **Typical implementation behaviour** ([`Barrier::bus_transaction`],
//!    [`Barrier::blocks_issue_of_non_memory`], …): how a real core is likely
//!    to realize the semantics (§2.3). These drive the timing simulator and
//!    are *not* mandated by the architecture — the paper stresses that the
//!    ISA defines correctness only, and performance is vendor-defined.

use core::fmt;

/// The class of a memory access, used to describe what a barrier orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessType {
    /// A load (read) access.
    Load,
    /// A store (write) access.
    Store,
}

impl AccessType {
    /// All access types, convenient for exhaustive iteration in tests.
    pub const ALL: [AccessType; 2] = [AccessType::Load, AccessType::Store];
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Load => write!(f, "load"),
            AccessType::Store => write!(f, "store"),
        }
    }
}

/// The acquire annotation a load can carry.
///
/// Both acquire flavours order the annotated load before every
/// program-order-later access (the one-way barrier of [`Barrier::Ldar`]).
/// They differ only in how the load relates to program-order-*earlier*
/// store-releases:
///
/// * [`Acquire::Sc`] (`LDAR`, RCsc): an earlier `STLR` may **not** be
///   reordered past the load — releases and acquires are sequentially
///   consistent with each other.
/// * [`Acquire::Pc`] (`LDAPR`, RCpc, ARMv8.3): an earlier `STLR` **may**
///   drain after the load performs — releases and acquires are only
///   processor-consistent, which is exactly what C/C++ `memory_order_acquire`
///   requires.
///
/// The distinction involves *two* annotated accesses, so it cannot be
/// expressed through the pairwise [`Barrier::orders`] relation; the memory
/// model consults this enum directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Acquire {
    /// A plain load: no acquire ordering.
    No,
    /// RCpc acquire (`LDAPR`): orders the load before younger accesses only.
    Pc,
    /// RCsc acquire (`LDAR`): additionally ordered after earlier releases.
    Sc,
}

impl Acquire {
    /// Every annotation, weakest first (`No < Pc < Sc`).
    pub const ALL: [Acquire; 3] = [Acquire::No, Acquire::Pc, Acquire::Sc];

    /// Whether the load carries any acquire semantics at all.
    #[must_use]
    pub fn is_acquire(self) -> bool {
        self != Acquire::No
    }

    /// The [`Barrier`] taxonomy entry this annotation corresponds to.
    #[must_use]
    pub fn barrier(self) -> Option<Barrier> {
        match self {
            Acquire::No => None,
            Acquire::Pc => Some(Barrier::Ldapr),
            Acquire::Sc => Some(Barrier::Ldar),
        }
    }
}

/// The kind of ACE transaction a barrier's typical implementation sends.
///
/// §2.3: DMB normally translates to a *memory barrier transaction* and DSB to
/// a *synchronization barrier transaction*. The difference that matters for
/// performance (Observation 5) is how far the transaction must travel before
/// the interconnect may respond: a memory barrier transaction only needs to
/// reach the **inner bi-section boundary** when all snooping stays inside one
/// subset of masters (e.g. one NUMA node), while a synchronization barrier
/// transaction always reaches the **inner domain boundary**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusTransaction {
    /// No transaction: the core resolves the barrier locally (DMB ld, LDAR,
    /// dependencies). Observation 6: these significantly outperform the rest.
    None,
    /// ACE memory barrier transaction (DMB full / DMB st). May be answered at
    /// the bi-section boundary when no cross-node snooping is required.
    MemoryBarrier,
    /// ACE synchronization barrier transaction (DSB *, and — empirically — the
    /// conservative STLR implementations the paper measured). Must reach the
    /// domain boundary, so it never benefits from NUMA locality.
    SyncBarrier,
}

/// Every order-preserving approach the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Barrier {
    /// No ordering at all; the WMM baseline.
    None,
    /// `DMB ISH` — orders any earlier access against any later access.
    DmbFull,
    /// `DMB ISHST` — orders earlier stores against later stores.
    DmbSt,
    /// `DMB ISHLD` — orders earlier loads against later loads and stores.
    DmbLd,
    /// `DSB ISH` — DMB full ordering, plus blocks *all* later instructions
    /// until earlier accesses complete in the domain.
    DsbFull,
    /// `DSB ISHST` — store-to-store DSB.
    DsbSt,
    /// `DSB ISHLD` — load-to-any DSB.
    DsbLd,
    /// `ISB` — flushes the pipeline; orders nothing by itself but guarantees
    /// later instructions re-fetch after earlier context-changing effects.
    Isb,
    /// `LDAR` — RCsc load-acquire: the annotated load is ordered before
    /// every later access (one-way barrier) *and* after every earlier
    /// store-release.
    Ldar,
    /// `LDAPR` — RCpc load-acquire (ARMv8.3): ordered before every later
    /// access like `LDAR`, but an earlier `STLR` may still drain past it.
    /// The pairwise [`Barrier::orders`] relation cannot see that
    /// difference (it concerns two annotated accesses), so `Ldapr` and
    /// `Ldar` order identical pairs here; [`Acquire`] carries the RCsc/RCpc
    /// split for the memory model.
    Ldapr,
    /// `STLR` — store-release: every earlier access is ordered before the
    /// annotated store (one-way barrier).
    Stlr,
    /// A bogus **data dependency**: the stored value is computed from the
    /// loaded value (`x ^ x` trick), ordering that load before that store.
    DataDep,
    /// A bogus **address dependency**: a later access's address is computed
    /// from the loaded value, ordering the load before loads *and* stores.
    AddrDep,
    /// A bogus **control dependency**: a branch on the loaded value orders
    /// the load before later *stores* only (loads may still speculate).
    Ctrl,
    /// Control dependency followed by `ISB`, which also orders later loads
    /// (the pipeline flush kills the speculation).
    CtrlIsb,
}

impl Barrier {
    /// Every variant, for exhaustive sweeps in experiments and tests.
    pub const ALL: [Barrier; 15] = [
        Barrier::None,
        Barrier::DmbFull,
        Barrier::DmbSt,
        Barrier::DmbLd,
        Barrier::DsbFull,
        Barrier::DsbSt,
        Barrier::DsbLd,
        Barrier::Isb,
        Barrier::Ldar,
        Barrier::Ldapr,
        Barrier::Stlr,
        Barrier::DataDep,
        Barrier::AddrDep,
        Barrier::Ctrl,
        Barrier::CtrlIsb,
    ];

    /// The standalone barrier *instructions* (excludes `None`, the one-way
    /// access-attached LDAR/STLR, and the dependency idioms). These are the
    /// legal fillers for `BARRIER_LOC_1/2` in Algorithm 1.
    pub const INSTRUCTIONS: [Barrier; 7] = [
        Barrier::DmbFull,
        Barrier::DmbSt,
        Barrier::DmbLd,
        Barrier::DsbFull,
        Barrier::DsbSt,
        Barrier::DsbLd,
        Barrier::Isb,
    ];

    /// Does this approach order a program-order-earlier access of type
    /// `earlier` before a program-order-later access of type `later`?
    ///
    /// For the access-attached options (LDAR/STLR/dependencies), "earlier" or
    /// "later" is interpreted as the attached access itself:
    /// * `Ldar` — `earlier` must be `Load` (the acquiring load).
    /// * `Stlr` — `later` must be `Store` (the releasing store).
    /// * `DataDep` — orders the feeding `Load` before the fed `Store`.
    /// * `AddrDep` — orders the feeding `Load` before any fed access.
    /// * `Ctrl` — orders the tested `Load` before dependent `Store`s only.
    /// * `CtrlIsb` — orders the tested `Load` before any later access.
    #[must_use]
    pub fn orders(self, earlier: AccessType, later: AccessType) -> bool {
        use AccessType::{Load, Store};
        match self {
            Barrier::None | Barrier::Isb => false,
            Barrier::DmbFull | Barrier::DsbFull => true,
            Barrier::DmbSt | Barrier::DsbSt => earlier == Store && later == Store,
            Barrier::DmbLd | Barrier::DsbLd => earlier == Load,
            Barrier::Ldar | Barrier::Ldapr => earlier == Load,
            Barrier::Stlr => later == Store,
            Barrier::DataDep => earlier == Load && later == Store,
            Barrier::AddrDep => earlier == Load,
            Barrier::Ctrl => earlier == Load && later == Store,
            Barrier::CtrlIsb => earlier == Load,
        }
    }

    /// The ACE transaction this approach's *typical* implementation sends
    /// (§2.3 and footnote 6; Observations 3, 5, 6).
    #[must_use]
    pub fn bus_transaction(self) -> BusTransaction {
        match self {
            Barrier::DmbFull | Barrier::DmbSt => BusTransaction::MemoryBarrier,
            Barrier::DsbFull | Barrier::DsbSt | Barrier::DsbLd | Barrier::Stlr => {
                BusTransaction::SyncBarrier
            }
            _ => BusTransaction::None,
        }
    }

    /// Whether the typical implementation blocks the *issue* of all
    /// subsequent instructions (memory or not) until it completes.
    ///
    /// Only DSB does this architecturally; ISB does it transiently via the
    /// pipeline flush. DMB "does not block any non-memory access operations"
    /// (§2.2), although Observation 2 shows it can still throttle them
    /// indirectly through re-order-buffer pressure — that indirect effect is
    /// modelled separately by the simulator.
    #[must_use]
    pub fn blocks_issue_of_non_memory(self) -> bool {
        matches!(
            self,
            Barrier::DsbFull | Barrier::DsbSt | Barrier::DsbLd | Barrier::Isb | Barrier::CtrlIsb
        )
    }

    /// Whether the typical implementation holds its re-order-buffer slot
    /// until the bus responds, creating back-pressure on later instructions.
    ///
    /// The paper's explanation of Figure 4: DMB full "may cause some
    /// performance bottlenecks in the pipeline (e.g., saturating the reorder
    /// buffer)". DMB st is observed *not* to have the property ("a more
    /// radical implementation"), which is why it never halves nop throughput.
    #[must_use]
    pub fn occupies_rob_until_response(self) -> bool {
        matches!(
            self,
            Barrier::DmbFull | Barrier::DsbFull | Barrier::DsbSt | Barrier::DsbLd
        )
    }

    /// Whether this approach flushes the pipeline (fixed refill cost).
    #[must_use]
    pub fn flushes_pipeline(self) -> bool {
        matches!(self, Barrier::Isb | Barrier::CtrlIsb)
    }

    /// Whether the approach is a dependency idiom rather than an instruction.
    #[must_use]
    pub fn is_dependency(self) -> bool {
        matches!(
            self,
            Barrier::DataDep | Barrier::AddrDep | Barrier::Ctrl | Barrier::CtrlIsb
        )
    }

    /// Whether the approach is attached to a specific access rather than
    /// standing alone in the instruction stream (LDAR, STLR, dependencies).
    #[must_use]
    pub fn is_access_attached(self) -> bool {
        matches!(self, Barrier::Ldar | Barrier::Ldapr | Barrier::Stlr) || self.is_dependency()
    }

    /// The mnemonic used in the paper's figures (e.g. `DMB full`, `LDAR`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Barrier::None => "No Barrier",
            Barrier::DmbFull => "DMB full",
            Barrier::DmbSt => "DMB st",
            Barrier::DmbLd => "DMB ld",
            Barrier::DsbFull => "DSB full",
            Barrier::DsbSt => "DSB st",
            Barrier::DsbLd => "DSB ld",
            Barrier::Isb => "ISB",
            Barrier::Ldar => "LDAR",
            Barrier::Ldapr => "LDAPR",
            Barrier::Stlr => "STLR",
            Barrier::DataDep => "DATA DEP",
            Barrier::AddrDep => "ADDR DEP",
            Barrier::Ctrl => "CTRL",
            Barrier::CtrlIsb => "CTRL+ISB",
        }
    }
}

impl fmt::Display for Barrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// How a delegation server notifies a client that its request completed —
/// the choice between the paper's Algorithm 5 and Algorithm 6. Shared by
/// the real locks (`armbar-locks`) and the simulator workloads
/// (`armbar-simapps`), which implement the same two protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseMode {
    /// Algorithm 5: store `ret`, response barrier, flip the response flag.
    Flag,
    /// Algorithm 6 (Pilot): the (shuffled) `ret` store *is* the
    /// notification, with a per-client fallback flag for collisions.
    Pilot,
}

impl ResponseMode {
    /// Both modes, Flag first (the classic protocol).
    pub const ALL: [ResponseMode; 2] = [ResponseMode::Flag, ResponseMode::Pilot];

    /// Stable short label (CSV row names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ResponseMode::Flag => "flag",
            ResponseMode::Pilot => "pilot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessType::{Load, Store};

    #[test]
    fn full_barriers_order_everything() {
        for b in [Barrier::DmbFull, Barrier::DsbFull] {
            for e in AccessType::ALL {
                for l in AccessType::ALL {
                    assert!(b.orders(e, l), "{b} must order {e}->{l}");
                }
            }
        }
    }

    #[test]
    fn store_barriers_order_only_store_store() {
        for b in [Barrier::DmbSt, Barrier::DsbSt] {
            assert!(b.orders(Store, Store));
            assert!(!b.orders(Store, Load));
            assert!(!b.orders(Load, Store));
            assert!(!b.orders(Load, Load));
        }
    }

    #[test]
    fn load_barriers_order_load_to_anything() {
        for b in [
            Barrier::DmbLd,
            Barrier::DsbLd,
            Barrier::Ldar,
            Barrier::Ldapr,
            Barrier::CtrlIsb,
        ] {
            assert!(b.orders(Load, Load));
            assert!(b.orders(Load, Store));
            assert!(!b.orders(Store, Store));
            assert!(!b.orders(Store, Load));
        }
    }

    #[test]
    fn stlr_orders_anything_to_store() {
        assert!(Barrier::Stlr.orders(Load, Store));
        assert!(Barrier::Stlr.orders(Store, Store));
        assert!(!Barrier::Stlr.orders(Load, Load));
        assert!(!Barrier::Stlr.orders(Store, Load));
    }

    #[test]
    fn ctrl_and_data_dep_do_not_order_load_load() {
        for b in [Barrier::Ctrl, Barrier::DataDep] {
            assert!(b.orders(Load, Store));
            assert!(!b.orders(Load, Load), "{b} cannot order load->load");
        }
    }

    #[test]
    fn addr_dep_orders_load_to_any() {
        assert!(Barrier::AddrDep.orders(Load, Load));
        assert!(Barrier::AddrDep.orders(Load, Store));
        assert!(!Barrier::AddrDep.orders(Store, Store));
    }

    #[test]
    fn none_and_isb_order_nothing() {
        for b in [Barrier::None, Barrier::Isb] {
            for e in AccessType::ALL {
                for l in AccessType::ALL {
                    assert!(!b.orders(e, l));
                }
            }
        }
    }

    #[test]
    fn bus_involvement_matches_observation_6() {
        // Order-preserving approaches without involving the bus.
        for b in [
            Barrier::DmbLd,
            Barrier::Ldar,
            Barrier::Ldapr,
            Barrier::DataDep,
            Barrier::AddrDep,
            Barrier::Ctrl,
            Barrier::CtrlIsb,
            Barrier::None,
            Barrier::Isb,
        ] {
            assert_eq!(b.bus_transaction(), BusTransaction::None, "{b}");
        }
        assert_eq!(
            Barrier::DmbFull.bus_transaction(),
            BusTransaction::MemoryBarrier
        );
        assert_eq!(
            Barrier::DmbSt.bus_transaction(),
            BusTransaction::MemoryBarrier
        );
        for b in [
            Barrier::DsbFull,
            Barrier::DsbSt,
            Barrier::DsbLd,
            Barrier::Stlr,
        ] {
            assert_eq!(b.bus_transaction(), BusTransaction::SyncBarrier, "{b}");
        }
    }

    #[test]
    fn dsb_blocks_everything_dmb_does_not() {
        assert!(Barrier::DsbFull.blocks_issue_of_non_memory());
        assert!(Barrier::DsbSt.blocks_issue_of_non_memory());
        assert!(!Barrier::DmbFull.blocks_issue_of_non_memory());
        assert!(!Barrier::DmbSt.blocks_issue_of_non_memory());
        assert!(!Barrier::Stlr.blocks_issue_of_non_memory());
    }

    #[test]
    fn stronger_semantics_implies_superset_of_ordered_pairs() {
        // DSB full ⊇ DMB full ⊇ DMB st, DMB ld as semantic subsets.
        for e in AccessType::ALL {
            for l in AccessType::ALL {
                if Barrier::DmbSt.orders(e, l) {
                    assert!(Barrier::DmbFull.orders(e, l));
                }
                if Barrier::DmbLd.orders(e, l) {
                    assert!(Barrier::DmbFull.orders(e, l));
                }
                if Barrier::DmbFull.orders(e, l) {
                    assert!(Barrier::DsbFull.orders(e, l));
                }
            }
        }
    }

    #[test]
    fn ldapr_orders_the_same_pairs_as_ldar() {
        // The RCsc/RCpc split concerns *two* annotated accesses (an earlier
        // STLR and the acquiring load) and lives in `Acquire`, not here.
        for e in AccessType::ALL {
            for l in AccessType::ALL {
                assert_eq!(Barrier::Ldapr.orders(e, l), Barrier::Ldar.orders(e, l));
            }
        }
    }

    #[test]
    fn acquire_annotations_map_to_their_barriers() {
        assert_eq!(Acquire::No.barrier(), None);
        assert_eq!(Acquire::Pc.barrier(), Some(Barrier::Ldapr));
        assert_eq!(Acquire::Sc.barrier(), Some(Barrier::Ldar));
        assert!(!Acquire::No.is_acquire());
        assert!(Acquire::Pc.is_acquire());
        assert!(Acquire::Sc.is_acquire());
        // Strength order: No < Pc < Sc.
        assert!(Acquire::No < Acquire::Pc);
        assert!(Acquire::Pc < Acquire::Sc);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for b in Barrier::ALL {
            assert!(
                seen.insert(b.mnemonic()),
                "duplicate mnemonic {}",
                b.mnemonic()
            );
        }
    }
}
