//! Thread-placement configurations the figures sweep.
//!
//! Each configuration fixes a platform and where the communicating parties
//! sit: the measured core, its peer (or the phantom "previous owner" of the
//! abstracted models' buffers), and — for lock benchmarks — how many
//! competitor cores exist and where.

use armbar_sim::{CoreId, Platform, PlatformKind};

/// A named placement configuration, matching the paper's figure legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindConfig {
    /// Kunpeng916, both parties in one NUMA node (different clusters).
    KunpengSameNode,
    /// Kunpeng916, parties in different NUMA nodes ("crossing nodes is a
    /// killer").
    KunpengCrossNodes,
    /// Kirin960, both parties in the big cluster.
    Kirin960,
    /// Kirin970, both parties in the big cluster.
    Kirin970,
    /// Raspberry Pi 4, different cores.
    RaspberryPi4,
}

impl BindConfig {
    /// The five producer-consumer configurations of Figure 6, in display
    /// order.
    pub const ALL: [BindConfig; 5] = [
        BindConfig::KunpengSameNode,
        BindConfig::KunpengCrossNodes,
        BindConfig::Kirin960,
        BindConfig::Kirin970,
        BindConfig::RaspberryPi4,
    ];

    /// Display label matching the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BindConfig::KunpengSameNode => "Kunpeng916 Same Node",
            BindConfig::KunpengCrossNodes => "Kunpeng916 Cross Nodes",
            BindConfig::Kirin960 => "Kirin960",
            BindConfig::Kirin970 => "Kirin970",
            BindConfig::RaspberryPi4 => "Raspberry Pi 4",
        }
    }

    /// Build the platform.
    #[must_use]
    pub fn platform(self) -> Platform {
        match self {
            BindConfig::KunpengSameNode | BindConfig::KunpengCrossNodes => Platform::kunpeng916(),
            BindConfig::Kirin960 => Platform::kirin960(),
            BindConfig::Kirin970 => Platform::kirin970(),
            BindConfig::RaspberryPi4 => Platform::raspberry_pi4(),
        }
    }

    /// The measured core.
    #[must_use]
    pub fn primary_core(self) -> CoreId {
        0
    }

    /// The peer core (consumer / phantom previous owner).
    #[must_use]
    pub fn peer_core(self) -> CoreId {
        match self {
            // Another cluster of node 0.
            BindConfig::KunpengSameNode => 4,
            // Node 1.
            BindConfig::KunpengCrossNodes => 32,
            // Sibling big-cluster core (the paper binds to the big cluster).
            BindConfig::Kirin960 | BindConfig::Kirin970 => 1,
            BindConfig::RaspberryPi4 => 1,
        }
    }

    /// Whether this is a server-platform configuration (Observation 4's
    /// "more significant and dramatically varies" side).
    #[must_use]
    pub fn is_server(self) -> bool {
        self.platform().kind == PlatformKind::Kunpeng916
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_sim::DistanceClass;

    #[test]
    fn peer_distances_match_the_names() {
        let same = BindConfig::KunpengSameNode;
        let cross = BindConfig::KunpengCrossNodes;
        assert_eq!(
            same.platform()
                .topology
                .distance(same.primary_core(), same.peer_core()),
            DistanceClass::CrossCluster
        );
        assert_eq!(
            cross
                .platform()
                .topology
                .distance(cross.primary_core(), cross.peer_core()),
            DistanceClass::CrossNode
        );
        for c in [
            BindConfig::Kirin960,
            BindConfig::Kirin970,
            BindConfig::RaspberryPi4,
        ] {
            assert_eq!(
                c.platform()
                    .topology
                    .distance(c.primary_core(), c.peer_core()),
                DistanceClass::SameCluster,
                "{c:?}"
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            BindConfig::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), BindConfig::ALL.len());
    }

    #[test]
    fn server_flag() {
        assert!(BindConfig::KunpengSameNode.is_server());
        assert!(BindConfig::KunpengCrossNodes.is_server());
        assert!(!BindConfig::Kirin960.is_server());
        assert!(!BindConfig::RaspberryPi4.is_server());
    }
}
