//! Simulator workloads for every experiment in the paper.
//!
//! Each module turns one of the paper's benchmark programs into
//! [`SimThread`](armbar_sim::SimThread) state machines and a runner that
//! reports throughput on a chosen [`Platform`](armbar_sim::Platform):
//!
//! * [`abstract_model`] — Algorithm 1 (§3.2): the barrier micro-model
//!   behind Figures 2, 3, 4, 5.
//! * [`prodcons`] — Algorithm 2 + Pilot (§4): Figures 6(a), 6(b), 6(c).
//! * [`ticket_sim`] — the in-place ticket lock benchmark: Figure 7(a).
//! * [`mcs_sim`] — the MCS queue lock, the second in-place baseline for
//!   the delegation-lock suite.
//! * [`delegation_sim`] — delegation lock server/clients (Algorithms 5 & 6)
//!   in dedicated (FFWD, RCL) and migratory (DSynch, flat-combining,
//!   CC-Synch) flavours: Figures 7(b), 7(c), 8(a–c) and `exp-dlock`.
//! * [`metrics`] — response-time science shared by the lock benchmarks:
//!   latency histograms, Jain's fairness index, combiner subversion.
//! * [`bind`] — the thread-placement configurations the figures sweep
//!   (same NUMA node, cross node, mobile big cluster, …).
//! * [`barrier_sim`] — the many-core barrier-synchronization family
//!   (centralized / combining-tree / hierarchical) behind `exp-manycore`.
//!
//! Calibration tests at the bottom of each module assert the paper's
//! *observations* hold on the simulator — they are the contract between
//! the latency profiles in `armbar-sim` and the figures the experiment
//! harness regenerates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abstract_model;
pub mod barrier_sim;
pub mod bind;
pub mod delegation_sim;
pub mod mcs_sim;
pub mod metrics;
pub mod prodcons;
pub mod ticket_sim;

pub use abstract_model::{run_model, BarrierLoc, MemOpKind, ModelSpec};
pub use barrier_sim::{run_barrier, BarrierConfig, BarrierFamily, BarrierResult};
pub use bind::BindConfig;
pub use mcs_sim::{run_mcs, run_mcs_metrics, McsConfig};
pub use metrics::{jain_index, DlockMetrics};
