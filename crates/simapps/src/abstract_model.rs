//! Algorithm 1 — the abstracted barrier model (§3.2).
//!
//! A loop that touches two fresh cache lines per iteration (lines last
//! owned by a remote peer, so each access is an RMR), with a configurable
//! barrier at one of two locations:
//!
//! ```text
//! Loop:  advance both buffer pointers (ALU work)
//!        ldr/str [buf1]        ← the RMR
//!        BARRIER_LOC_1
//!        NOPs                  ← frequency knob
//!        BARRIER_LOC_2
//!        ldr/str [buf2]
//!        bookkeeping, branch
//! ```
//!
//! The figures vary: which memory ops are present (none for Figure 2, two
//! stores for Figure 3, load+store for Figure 5), the barrier kind, its
//! location, and the nop count.

use armbar_barriers::{Acquire, Barrier};
use armbar_sim::{Machine, Op, Platform, SimThread, ThreadCtx};

use crate::bind::BindConfig;

/// Which access Algorithm 1's line 4 / line 8 performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// `ldr` (fire-and-forget; the value is unused).
    Load,
    /// `str`.
    Store,
}

/// Where the barrier goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierLoc {
    /// `BARRIER_LOC_1`: strictly after the first memory op (the `X-1`
    /// series in the figures).
    AfterOp1,
    /// `BARRIER_LOC_2`: after the nops, right before the second op (`X-2`).
    BeforeOp2,
}

/// One abstracted-model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    /// Line 4's access (`None` drops it, as in Figure 2).
    pub op1: Option<MemOpKind>,
    /// Line 8's access.
    pub op2: Option<MemOpKind>,
    /// The order-preserving approach under test.
    pub barrier: Barrier,
    /// Placement of a standalone barrier instruction (ignored for
    /// access-attached approaches like LDAR/STLR/dependencies).
    pub location: BarrierLoc,
    /// Nops between the two ops (the "occurrence frequency" knob).
    pub nops: u32,
}

impl ModelSpec {
    /// Figure 2's shape: no memory operations, barrier between nop blocks.
    #[must_use]
    pub fn no_mem(barrier: Barrier, nops: u32) -> ModelSpec {
        ModelSpec {
            op1: None,
            op2: None,
            barrier,
            location: BarrierLoc::AfterOp1,
            nops,
        }
    }

    /// Figure 3's shape: store → store.
    #[must_use]
    pub fn store_store(barrier: Barrier, location: BarrierLoc, nops: u32) -> ModelSpec {
        ModelSpec {
            op1: Some(MemOpKind::Store),
            op2: Some(MemOpKind::Store),
            barrier,
            location,
            nops,
        }
    }

    /// Figure 5's shape: load → store.
    #[must_use]
    pub fn load_store(barrier: Barrier, location: BarrierLoc, nops: u32) -> ModelSpec {
        ModelSpec {
            op1: Some(MemOpKind::Load),
            op2: Some(MemOpKind::Store),
            barrier,
            location,
            nops,
        }
    }
}

/// Loop bookkeeping cost in ALU instructions (two pointer advances, a
/// counter increment, compare + branch — Algorithm 1 lines 2, 3, 9, 10).
const LOOP_ALU_OPS: u32 = 5;

/// Base addresses of the two walked buffers.
const BUF1_BASE: u64 = 0x1000_0000;
const BUF2_BASE: u64 = 0x2000_0000;

/// The Algorithm 1 thread.
struct ModelThread {
    spec: ModelSpec,
    iterations: u64,
    done: u64,
    step: u8,
}

impl ModelThread {
    fn new(spec: ModelSpec, iterations: u64) -> ModelThread {
        ModelThread {
            spec,
            iterations,
            done: 0,
            step: 0,
        }
    }

    fn mem_op(&self, which: u8) -> Option<Op> {
        let (kind, base) = match which {
            1 => (self.spec.op1?, BUF1_BASE),
            _ => (self.spec.op2?, BUF2_BASE),
        };
        let addr = base + self.done * 64;
        Some(match kind {
            MemOpKind::Load => {
                if which == 1 && self.spec.barrier == Barrier::Ldar {
                    // LDAR attaches to the first access.
                    Op::Load {
                        addr,
                        use_value: false,
                        acquire: Acquire::Sc,
                        dep_on_last_load: false,
                    }
                } else {
                    Op::load(addr)
                }
            }
            MemOpKind::Store => {
                let release = which == 2 && self.spec.barrier == Barrier::Stlr;
                let dep = which == 2
                    && matches!(
                        self.spec.barrier,
                        Barrier::DataDep | Barrier::AddrDep | Barrier::Ctrl
                    );
                Op::Store {
                    addr,
                    value: self.done + 1,
                    release,
                    dep_on_last_load: dep,
                }
            }
        })
    }

    /// Standalone barrier instruction for the given location, if the spec
    /// places one there.
    fn fence_at(&self, loc: BarrierLoc) -> Option<Op> {
        if self.spec.location != loc {
            return None;
        }
        match self.spec.barrier {
            Barrier::None
            | Barrier::Ldar
            | Barrier::Stlr
            | Barrier::DataDep
            | Barrier::AddrDep
            | Barrier::Ctrl => None,
            // CTRL+ISB: the ISB sits where the barrier would.
            f => Some(Op::Fence(f)),
        }
    }
}

impl SimThread for ModelThread {
    fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
        loop {
            let op = match self.step {
                0 => Some(Op::Nops(LOOP_ALU_OPS)),
                1 => self.mem_op(1),
                2 => self.fence_at(BarrierLoc::AfterOp1),
                3 => {
                    if self.spec.nops > 0 {
                        Some(Op::Nops(self.spec.nops))
                    } else {
                        None
                    }
                }
                4 => self.fence_at(BarrierLoc::BeforeOp2),
                5 => self.mem_op(2),
                _ => {
                    self.step = 0;
                    self.done += 1;
                    if self.done >= self.iterations {
                        return Op::Halt;
                    }
                    return Op::IterationMark;
                }
            };
            self.step += 1;
            if let Some(op) = op {
                return op;
            }
        }
    }
}

/// Result of one model run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelResult {
    /// Completed loop iterations.
    pub iterations: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Loops per second at the platform's clock (the figures' y-axis).
    pub loops_per_sec: f64,
}

/// Run one abstracted-model configuration under a placement.
///
/// The buffers' lines are homed at the peer core, making every access an
/// RMR at the placement's distance — the effect of §3.2's two alternating
/// threads, without simulating the idle half of the hand-off.
#[must_use]
pub fn run_model(bind: BindConfig, spec: ModelSpec, iterations: u64) -> ModelResult {
    run_model_on(
        &bind.platform(),
        bind.primary_core(),
        bind.peer_core(),
        spec,
        iterations,
    )
}

/// As [`run_model`], with an explicit platform and core pair.
#[must_use]
pub fn run_model_on(
    platform: &Platform,
    core: usize,
    peer: usize,
    spec: ModelSpec,
    iterations: u64,
) -> ModelResult {
    let mut m = Machine::new(platform.clone());
    let span = iterations * 64 + 64;
    m.set_region_home(BUF1_BASE, BUF1_BASE + span, peer);
    m.set_region_home(BUF2_BASE, BUF2_BASE + span, peer);
    m.add_thread_on(core, Box::new(ModelThread::new(spec, iterations)));
    // Generous budget: the heaviest spec is DSB with huge nop counts.
    let max_cycles = iterations * (u64::from(spec.nops) + 4096) + 100_000;
    let stats = m.run(max_cycles);
    assert!(stats.halted, "model must finish within the cycle budget");
    let s = m.core_stats(core);
    ModelResult {
        iterations: s.iterations,
        cycles: s.cycles,
        loops_per_sec: platform.iterations_per_second(s.iterations, s.cycles),
    }
}

/// Find the tipping point (Figure 4): the smallest nop count, scanning
/// `candidates`, at which `DMB full-2` reaches ≥ `threshold` of the
/// no-barrier throughput. Returns `(nops, full1/full2 throughput ratio)`.
#[must_use]
pub fn tipping_point(bind: BindConfig, candidates: &[u32], threshold: f64) -> Option<(u32, f64)> {
    for &n in candidates {
        let none = run_model(
            bind,
            ModelSpec::store_store(Barrier::None, BarrierLoc::BeforeOp2, n),
            600,
        );
        let full2 = run_model(
            bind,
            ModelSpec::store_store(Barrier::DmbFull, BarrierLoc::BeforeOp2, n),
            600,
        );
        if full2.loops_per_sec >= threshold * none.loops_per_sec {
            let full1 = run_model(
                bind,
                ModelSpec::store_store(Barrier::DmbFull, BarrierLoc::AfterOp1, n),
                600,
            );
            return Some((n, full1.loops_per_sec / full2.loops_per_sec));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITERS: u64 = 400;

    fn tput(bind: BindConfig, spec: ModelSpec) -> f64 {
        run_model(bind, spec, ITERS).loops_per_sec
    }

    // ---------------------------------------------------------- Figure 2

    #[test]
    fn observation1_intrinsic_overhead_is_stable_and_intuitive() {
        // DMB lightest, ISB flushes, DSB heaviest; options of one family
        // perform alike when no memory ops are around.
        for bind in [
            BindConfig::KunpengCrossNodes,
            BindConfig::Kirin960,
            BindConfig::RaspberryPi4,
        ] {
            let at = |b| tput(bind, ModelSpec::no_mem(b, 30));
            let none = at(Barrier::None);
            let dmb = at(Barrier::DmbFull);
            let isb = at(Barrier::Isb);
            let dsb = at(Barrier::DsbFull);
            assert!(dmb <= none * 1.01, "{bind:?}: DMB {dmb} vs none {none}");
            assert!(dmb > none * 0.5, "{bind:?}: DMB must be light");
            assert!(isb < dmb, "{bind:?}: ISB flushes the pipeline");
            assert!(dsb < isb, "{bind:?}: DSB heaviest");
            // Options within a family are equivalent without memory ops.
            let dmb_st = at(Barrier::DmbSt);
            let dmb_ld = at(Barrier::DmbLd);
            assert!((dmb_st - dmb).abs() / dmb < 0.1);
            assert!((dmb_ld - dmb).abs() / dmb < 0.1);
            let dsb_st = at(Barrier::DsbSt);
            assert!((dsb_st - dsb).abs() / dsb < 0.1, "{bind:?}");
        }
    }

    // ---------------------------------------------------------- Figure 3

    #[test]
    fn observation2_barrier_after_rmr_is_the_expensive_location() {
        // At the cross-node tipping region, DMB full-1 is much slower than
        // DMB full-2.
        let bind = BindConfig::KunpengCrossNodes;
        let nops = 700;
        let full1 = tput(
            bind,
            ModelSpec::store_store(Barrier::DmbFull, BarrierLoc::AfterOp1, nops),
        );
        let full2 = tput(
            bind,
            ModelSpec::store_store(Barrier::DmbFull, BarrierLoc::BeforeOp2, nops),
        );
        let none = tput(
            bind,
            ModelSpec::store_store(Barrier::None, BarrierLoc::BeforeOp2, nops),
        );
        assert!(full1 < 0.75 * full2, "X-1 {full1} must trail X-2 {full2}");
        assert!(full2 > 0.85 * none, "enough nops hide X-2 entirely");
    }

    #[test]
    fn figure4_tipping_point_ratio_is_about_one_half() {
        let (nops, ratio) = tipping_point(
            BindConfig::KunpengCrossNodes,
            &[100, 200, 300, 500, 700, 1000, 1500],
            0.9,
        )
        .expect("a tipping point must exist");
        assert!(nops >= 100);
        assert!(
            (0.35..=0.7).contains(&ratio),
            "DMB full-1 ≈ half of DMB full-2 at the tipping point, got {ratio}"
        );
    }

    #[test]
    fn observation3_stlr_can_lose_to_dmb_full() {
        // Kunpeng, generous nops: STLR stays below DMB full-2 (the paper's
        // surprise), and between DSB and DMB st.
        let bind = BindConfig::KunpengCrossNodes;
        let nops = 700;
        let stlr = tput(
            bind,
            ModelSpec::store_store(Barrier::Stlr, BarrierLoc::BeforeOp2, nops),
        );
        let full2 = tput(
            bind,
            ModelSpec::store_store(Barrier::DmbFull, BarrierLoc::BeforeOp2, nops),
        );
        let st2 = tput(
            bind,
            ModelSpec::store_store(Barrier::DmbSt, BarrierLoc::BeforeOp2, nops),
        );
        let dsb = tput(
            bind,
            ModelSpec::store_store(Barrier::DsbFull, BarrierLoc::BeforeOp2, nops),
        );
        assert!(
            stlr < full2,
            "STLR {stlr} loses to the stronger DMB full {full2}"
        );
        assert!(stlr < st2, "STLR below DMB st");
        assert!(stlr > dsb, "STLR above DSB");
    }

    #[test]
    fn observation4_server_variation_dwarfs_mobile() {
        // Relative spread between the best and worst barrier choice is far
        // larger on the server than on mobile at matched nop counts.
        fn spread(bind: BindConfig, nops: u32) -> f64 {
            let none = run_model(
                bind,
                ModelSpec::store_store(Barrier::None, BarrierLoc::BeforeOp2, nops),
                ITERS,
            )
            .loops_per_sec;
            let dsb = run_model(
                bind,
                ModelSpec::store_store(Barrier::DsbFull, BarrierLoc::BeforeOp2, nops),
                ITERS,
            )
            .loops_per_sec;
            none / dsb
        }
        let server = spread(BindConfig::KunpengCrossNodes, 60);
        let kirin = spread(BindConfig::Kirin960, 60);
        let rpi = spread(BindConfig::RaspberryPi4, 60);
        assert!(
            server > 2.0 * kirin,
            "server spread {server} vs kirin {kirin}"
        );
        assert!(server > 2.0 * rpi, "server spread {server} vs rpi {rpi}");
    }

    #[test]
    fn observation5_crossing_nodes_is_a_killer_but_not_for_dsb() {
        let nops = 150;
        let same = |b| {
            tput(
                BindConfig::KunpengSameNode,
                ModelSpec::store_store(b, BarrierLoc::AfterOp1, nops),
            )
        };
        let cross = |b| {
            tput(
                BindConfig::KunpengCrossNodes,
                ModelSpec::store_store(b, BarrierLoc::AfterOp1, nops),
            )
        };
        // DMB full benefits strongly from locality…
        let dmb_gain = same(Barrier::DmbFull) / cross(Barrier::DmbFull);
        // …DSB does not (the sync transaction always reaches the domain
        // boundary).
        let dsb_gain = same(Barrier::DsbFull) / cross(Barrier::DsbFull);
        assert!(dmb_gain > 1.5, "DMB locality gain {dmb_gain}");
        assert!(dsb_gain < 1.3, "DSB must not benefit much, got {dsb_gain}");
    }

    #[test]
    fn dmb_st_does_not_throttle_nops() {
        // DMB st never holds the ROB, so with plentiful nops it tracks
        // No Barrier closely even at location 1 (unlike DMB full).
        let bind = BindConfig::KunpengCrossNodes;
        let nops = 1500;
        let st1 = tput(
            bind,
            ModelSpec::store_store(Barrier::DmbSt, BarrierLoc::AfterOp1, nops),
        );
        let st2 = tput(
            bind,
            ModelSpec::store_store(Barrier::DmbSt, BarrierLoc::BeforeOp2, nops),
        );
        let none = tput(
            bind,
            ModelSpec::store_store(Barrier::None, BarrierLoc::BeforeOp2, nops),
        );
        assert!(st1 > 0.85 * none, "DMB st-1 {st1} ≈ No Barrier {none}");
        assert!((st1 - st2).abs() / st2 < 0.15, "st-1 ≈ st-2");
    }

    // ---------------------------------------------------------- Figure 5

    #[test]
    fn observation6_bus_free_approaches_win_load_store() {
        let bind = BindConfig::KunpengCrossNodes;
        let nops = 300;
        let at = |b, loc| tput(bind, ModelSpec::load_store(b, loc, nops));
        let none = at(Barrier::None, BarrierLoc::BeforeOp2);
        let dep = at(Barrier::DataDep, BarrierLoc::BeforeOp2);
        let addr = at(Barrier::AddrDep, BarrierLoc::BeforeOp2);
        let ctrl = at(Barrier::Ctrl, BarrierLoc::BeforeOp2);
        let ldar = at(Barrier::Ldar, BarrierLoc::AfterOp1);
        let full1 = at(Barrier::DmbFull, BarrierLoc::AfterOp1);
        let dsb1 = at(Barrier::DsbFull, BarrierLoc::AfterOp1);
        // Dependencies are free.
        for (name, v) in [("data", dep), ("addr", addr), ("ctrl", ctrl)] {
            assert!(v > 0.9 * none, "{name} dep {v} ≈ no barrier {none}");
        }
        // Bus-involving barriers at location 1 pay heavily.
        assert!(
            full1 < 0.9 * none,
            "DMB full-1 {full1} below no barrier {none}"
        );
        assert!(dsb1 < full1, "DSB worst");
        // LDAR does not involve the bus: beats DMB full-1.
        assert!(ldar > full1, "LDAR {ldar} over DMB full-1 {full1}");
    }

    #[test]
    fn load_barriers_at_loc1_trail_loc2() {
        // DMB ld-1 waits for the outstanding remote load; DMB ld-2 issues
        // after the nops hid it.
        let bind = BindConfig::KunpengCrossNodes;
        let nops = 300;
        let ld1 = tput(
            bind,
            ModelSpec::load_store(Barrier::DmbLd, BarrierLoc::AfterOp1, nops),
        );
        let ld2 = tput(
            bind,
            ModelSpec::load_store(Barrier::DmbLd, BarrierLoc::BeforeOp2, nops),
        );
        assert!(ld1 <= ld2 * 1.02, "ld-1 {ld1} <= ld-2 {ld2}");
    }

    #[test]
    fn ctrl_isb_pays_the_flush() {
        let bind = BindConfig::KunpengCrossNodes;
        let nops = 300;
        let ctrl_isb = tput(
            bind,
            ModelSpec::load_store(Barrier::CtrlIsb, BarrierLoc::AfterOp1, nops),
        );
        let dep = tput(
            bind,
            ModelSpec::load_store(Barrier::AddrDep, BarrierLoc::BeforeOp2, nops),
        );
        assert!(ctrl_isb < dep, "CTRL+ISB {ctrl_isb} below pure deps {dep}");
    }

    #[test]
    fn results_are_deterministic() {
        let spec = ModelSpec::store_store(Barrier::DmbFull, BarrierLoc::AfterOp1, 150);
        let a = run_model(BindConfig::KunpengSameNode, spec, 200);
        let b = run_model(BindConfig::KunpengSameNode, spec, 200);
        assert_eq!(a.cycles, b.cycles);
    }
}
