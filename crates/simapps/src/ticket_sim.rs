//! Ticket lock on the simulator (Figure 7(a)).
//!
//! Competitor cores take tickets with an atomic fetch-add, spin on the
//! owner counter, run a critical section that reads and modifies a
//! configurable number of *global* cache lines plus a private counter, run
//! the configurable release-side barrier, and advance the owner.
//!
//! The figure's knob: when the critical section touches global lines, the
//! unlock barrier sits strictly after RMRs and its overhead becomes visible
//! (Observation 2); with zero global lines it is nearly free.

use armbar_barriers::Barrier;
use armbar_sim::{
    Engine, LatencyHistogram, Machine, Op, Platform, SimThread, StallBreakdown, ThreadCtx, Trace,
};

use crate::metrics::{jain_index, DlockMetrics};

/// Shared-memory layout.
const NEXT_TICKET: u64 = 0x100;
const OWNER: u64 = 0x180;
const GLOBALS_BASE: u64 = 0x1000;
/// Per-thread private counters (distinct lines far from shared state).
const PRIVATE_BASE: u64 = 0x10_0000;

/// One competitor.
struct TicketThread {
    id: u64,
    iterations: u64,
    done: u64,
    global_lines: u32,
    cs_nops: u32,
    post_nops: u32,
    release_barrier: Barrier,
    state: u8,
    ticket: u64,
    cs_step: u32,
}

impl TicketThread {
    fn global_addr(&self, i: u32) -> u64 {
        GLOBALS_BASE + u64::from(i) * 64
    }
}

impl SimThread for TicketThread {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // lock: take a ticket.
                0 => {
                    self.state = 1;
                    return Op::Rmw {
                        addr: NEXT_TICKET,
                        kind: armbar_sim::RmwKind::FetchAdd,
                        operand: 1,
                        acquire: false,
                        release: false,
                    };
                }
                1 => {
                    self.ticket = ctx.last_value();
                    self.state = 2;
                }
                // Spin on the owner counter.
                2 => {
                    self.state = 3;
                    return Op::load_use(OWNER);
                }
                3 => {
                    if ctx.last_value() != self.ticket {
                        self.state = 2;
                        return Op::Nops(1);
                    }
                    // Acquire-side ordering (cheap, LDAR-class).
                    self.state = 4;
                    return Op::Fence(Barrier::DmbLd);
                }
                // Critical section: read+modify each global line…
                4 => {
                    if self.cs_step < self.global_lines {
                        let addr = self.global_addr(self.cs_step);
                        self.state = 5;
                        return Op::load_use(addr);
                    }
                    self.state = 6;
                }
                5 => {
                    let addr = self.global_addr(self.cs_step);
                    let v = ctx.last_value();
                    self.cs_step += 1;
                    self.state = 4;
                    return Op::store_dep(addr, v.wrapping_add(1));
                }
                // …plus the private counter and any local work.
                6 => {
                    self.cs_step = 0;
                    self.state = 7;
                    return Op::store(PRIVATE_BASE + self.id * 64, self.done + 1);
                }
                7 => {
                    self.state = 8;
                    if self.cs_nops > 0 {
                        return Op::Nops(self.cs_nops);
                    }
                }
                // unlock: the configurable barrier, then advance the owner.
                8 => {
                    self.state = 9;
                    match self.release_barrier {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                9 => {
                    self.state = 10;
                    return Op::store(OWNER, self.ticket + 1);
                }
                11 => {
                    self.state = 0;
                    return Op::IterationMark;
                }
                _ => {
                    self.state = 0;
                    self.done += 1;
                    if self.done >= self.iterations {
                        return Op::Halt;
                    }
                    if self.post_nops > 0 {
                        // Contention knob (Figure 7(c)'s interval).
                        self.state = 11;
                        return Op::Nops(self.post_nops);
                    }
                    return Op::IterationMark;
                }
            }
        }
    }
}

/// Configuration of one ticket-lock run.
#[derive(Debug, Clone, Copy)]
pub struct TicketConfig {
    /// Competitor cores.
    pub threads: usize,
    /// Global cache lines read+written per critical section (Figure 7(a)'s
    /// x-axis: 0, 1, 2).
    pub global_lines: u32,
    /// Extra local work inside the critical section.
    pub cs_nops: u32,
    /// Work between releases (contention knob).
    pub post_nops: u32,
    /// The unlock-side barrier.
    pub release_barrier: Barrier,
    /// Acquisitions per thread.
    pub per_thread: u64,
}

impl Default for TicketConfig {
    fn default() -> TicketConfig {
        TicketConfig {
            threads: 8,
            global_lines: 1,
            cs_nops: 10,
            post_nops: 20,
            release_barrier: Barrier::DmbSt,
            per_thread: 60,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockResult {
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Cycles until the last thread finished.
    pub cycles: u64,
    /// Acquisitions per second at the platform's clock.
    pub locks_per_sec: f64,
    /// Barrier-stall decomposition summed over all competitor cores.
    pub stall: StallBreakdown,
}

/// Cores used for a lock benchmark: spread across the machine the way the
/// paper binds threads (one per physical core, filling node 0 first).
fn competitor_cores(platform: &Platform, threads: usize) -> Vec<usize> {
    assert!(
        threads <= platform.topology.core_count(),
        "not enough cores"
    );
    (0..threads).collect()
}

/// Run the ticket-lock benchmark.
#[must_use]
pub fn run_ticket(platform: &Platform, cfg: TicketConfig) -> LockResult {
    run_ticket_inner(platform, cfg, None, None).0
}

/// [`run_ticket`] pinned to a specific scheduling [`Engine`] — the hook the
/// differential harness uses to compare the event-driven engine against the
/// lockstep oracle on identical workloads.
#[must_use]
pub fn run_ticket_with_engine(
    platform: &Platform,
    cfg: TicketConfig,
    engine: Engine,
) -> LockResult {
    run_ticket_inner(platform, cfg, None, Some(engine)).0
}

/// [`run_ticket`] with event tracing enabled at `trace_capacity` events.
/// The returned [`Trace`] holds one timeline per competitor core — a good
/// multi-track demo for the Chrome-trace exporter, since every core takes
/// the acquire fence and the release gate.
#[must_use]
pub fn run_ticket_traced(
    platform: &Platform,
    cfg: TicketConfig,
    trace_capacity: usize,
) -> (LockResult, Trace) {
    let (result, trace, _) = run_ticket_inner(platform, cfg, Some(trace_capacity), None);
    (result, trace)
}

/// Run the ticket benchmark with full response-time metrics (latency
/// histogram, Jain's fairness), optionally pinned to an [`Engine`]. The
/// subversion counter is zero by construction: in-place locks never
/// execute another thread's critical section.
#[must_use]
pub fn run_ticket_metrics(
    platform: &Platform,
    cfg: TicketConfig,
    engine: Option<Engine>,
) -> DlockMetrics {
    run_ticket_inner(platform, cfg, None, engine).2
}

fn run_ticket_inner(
    platform: &Platform,
    cfg: TicketConfig,
    trace_capacity: Option<usize>,
    engine: Option<Engine>,
) -> (LockResult, Trace, DlockMetrics) {
    let mut m = Machine::new(platform.clone());
    if let Some(e) = engine {
        m.set_engine(e);
    }
    if let Some(capacity) = trace_capacity {
        m.enable_trace(capacity);
    }
    let cores = competitor_cores(platform, cfg.threads);
    for (i, &c) in cores.iter().enumerate() {
        m.add_thread_on(
            c,
            Box::new(TicketThread {
                id: i as u64,
                iterations: cfg.per_thread,
                done: 0,
                global_lines: cfg.global_lines,
                cs_nops: cfg.cs_nops,
                post_nops: cfg.post_nops,
                release_barrier: cfg.release_barrier,
                state: 0,
                ticket: 0,
                cs_step: 0,
            }),
        );
    }
    let total = cfg.per_thread * cfg.threads as u64;
    let max_cycles = total * 200_000 + 1_000_000;
    let stats = m.run(max_cycles);
    assert!(
        stats.halted,
        "ticket benchmark must finish (deadlock otherwise)"
    );
    // Sanity: the lock really serialized every acquisition.
    assert_eq!(m.read_memory(NEXT_TICKET), total);
    assert_eq!(m.read_memory(OWNER), total);
    let cycles = stats.cycles;
    let mut stall = StallBreakdown::default();
    let mut latency = LatencyHistogram::default();
    let mut throughputs = Vec::with_capacity(cores.len());
    for &c in &cores {
        let cs = m.core_stats(c);
        stall.merge(&cs.stall);
        latency.merge(&cs.latency);
        let halted_at = cs.halted_at.expect("halted run must stamp every core");
        #[allow(clippy::cast_precision_loss)]
        throughputs.push(cs.iterations as f64 / halted_at.max(1) as f64);
    }
    let result = LockResult {
        acquisitions: total,
        cycles,
        locks_per_sec: platform.iterations_per_second(total, cycles),
        stall,
    };
    let metrics = DlockMetrics {
        result,
        latency,
        fairness: jain_index(&throughputs),
        subverted: 0,
        total_ops: total,
    };
    (result, m.take_trace(), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_serializes_and_counts() {
        let p = Platform::kunpeng916();
        let r = run_ticket(
            &p,
            TicketConfig {
                threads: 4,
                per_thread: 30,
                ..Default::default()
            },
        );
        assert_eq!(r.acquisitions, 120);
        assert!(r.locks_per_sec > 0.0);
    }

    #[test]
    fn fig7a_unlock_barrier_costs_with_global_lines() {
        // With global lines in the CS, removing the unlock barrier helps
        // noticeably (the paper's ~23%); with none it barely matters.
        let p = Platform::kunpeng916();
        let run = |lines, barrier| {
            run_ticket(
                &p,
                TicketConfig {
                    threads: 8,
                    global_lines: lines,
                    release_barrier: barrier,
                    per_thread: 40,
                    ..Default::default()
                },
            )
            .locks_per_sec
        };
        let with_lines_normal = run(2, Barrier::DmbSt);
        let with_lines_removed = run(2, Barrier::None);
        let gain_lines = with_lines_removed / with_lines_normal;
        let no_lines_normal = run(0, Barrier::DmbSt);
        let no_lines_removed = run(0, Barrier::None);
        let gain_none = no_lines_removed / no_lines_normal;
        assert!(
            gain_lines > 1.05,
            "barrier after RMRs must cost, gain {gain_lines}"
        );
        assert!(gain_lines > gain_none, "{gain_lines} vs {gain_none}");
    }

    #[test]
    fn fig7a_effect_is_muted_on_mobile() {
        let gain = |p: &Platform| {
            let normal = run_ticket(
                p,
                TicketConfig {
                    threads: 4,
                    global_lines: 2,
                    release_barrier: Barrier::DmbSt,
                    per_thread: 40,
                    ..Default::default()
                },
            )
            .locks_per_sec;
            let removed = run_ticket(
                p,
                TicketConfig {
                    threads: 4,
                    global_lines: 2,
                    release_barrier: Barrier::None,
                    per_thread: 40,
                    ..Default::default()
                },
            )
            .locks_per_sec;
            removed / normal
        };
        let server = gain(&Platform::kunpeng916());
        let mobile = gain(&Platform::kirin960());
        assert!(
            server > mobile,
            "server gain {server} vs mobile {mobile} (Observation 4)"
        );
    }

    #[test]
    fn dsb_release_is_the_worst() {
        let p = Platform::kunpeng916();
        let run = |barrier| {
            run_ticket(
                &p,
                TicketConfig {
                    threads: 4,
                    release_barrier: barrier,
                    per_thread: 30,
                    ..Default::default()
                },
            )
            .locks_per_sec
        };
        let st = run(Barrier::DmbSt);
        let dsb = run(Barrier::DsbFull);
        assert!(dsb < st, "DSB release {dsb} below DMB st {st}");
    }

    #[test]
    fn determinism() {
        let p = Platform::kirin970();
        let cfg = TicketConfig {
            threads: 3,
            per_thread: 25,
            ..Default::default()
        };
        assert_eq!(run_ticket(&p, cfg).cycles, run_ticket(&p, cfg).cycles);
    }
}
