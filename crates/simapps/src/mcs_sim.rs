//! MCS lock on the simulator — the second in-place baseline for the
//! delegation-lock suite (`exp-dlock`).
//!
//! Each thread owns a padded queue node (id = thread + 1, 0 is nil).
//! Acquire: reset the node, swap it into the tail, link behind the
//! predecessor if any, and spin on the *own* node's locked word — the
//! local-spin property that distinguishes MCS from the ticket lock's
//! shared owner counter. Release: the configurable barrier, then either
//! hand the lock to the linked successor or CAS the tail back to nil.
//!
//! The critical section mirrors `ticket_sim`: a configurable number of
//! global lines read+written, a private counter, and ALU work — so MCS
//! and ticket numbers are directly comparable.

use armbar_barriers::Barrier;
use armbar_sim::{Engine, LatencyHistogram, Machine, Op, Platform, SimThread, ThreadCtx};

use crate::metrics::{jain_index, DlockMetrics};
use crate::ticket_sim::LockResult;

/// Shared-memory layout.
const TAIL: u64 = 0x200;
const GLOBALS_BASE: u64 = 0x1000;
/// Queue nodes: locked word and next pointer on separate half-lines of a
/// padded 128-byte slot per thread.
const NODE_BASE: u64 = 0x2000;
/// Per-thread private counters (distinct lines far from shared state).
const PRIVATE_BASE: u64 = 0x10_0000;

fn locked_addr(node: u64) -> u64 {
    NODE_BASE + node * 128
}

fn next_addr(node: u64) -> u64 {
    NODE_BASE + node * 128 + 64
}

/// One competitor.
struct McsThread {
    id: u64,
    iterations: u64,
    done: u64,
    global_lines: u32,
    cs_nops: u32,
    post_nops: u32,
    acquire_barrier: Barrier,
    release_barrier: Barrier,
    state: u8,
    successor: u64,
    cs_step: u32,
}

impl McsThread {
    fn me(&self) -> u64 {
        self.id + 1
    }

    fn global_addr(&self, i: u32) -> u64 {
        GLOBALS_BASE + u64::from(i) * 64
    }
}

impl SimThread for McsThread {
    #[allow(clippy::too_many_lines)]
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // lock: reset our node…
                0 => {
                    self.state = 1;
                    return Op::store(locked_addr(self.me()), 1);
                }
                1 => {
                    self.state = 2;
                    return Op::store(next_addr(self.me()), 0);
                }
                // …swap it into the tail…
                2 => {
                    self.state = 3;
                    return Op::Rmw {
                        addr: TAIL,
                        kind: armbar_sim::RmwKind::Swap,
                        operand: self.me(),
                        acquire: true,
                        release: true,
                    };
                }
                3 => {
                    let prev = ctx.last_value();
                    if prev == 0 {
                        // Uncontended: we hold the lock.
                        self.state = 7;
                        continue;
                    }
                    // …and link behind the predecessor.
                    self.state = 4;
                    return Op::store(next_addr(prev), self.me());
                }
                // Spin on our own locked word (MCS's local spin).
                4 => {
                    self.state = 5;
                    return Op::load_use(locked_addr(self.me()));
                }
                5 => {
                    if ctx.last_value() != 0 {
                        self.state = 4;
                        return Op::Nops(1);
                    }
                    self.state = 6;
                }
                // Acquire-side ordering.
                6 | 7 => {
                    self.state = 8;
                    match self.acquire_barrier {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                // Critical section: read+modify each global line…
                8 => {
                    if self.cs_step < self.global_lines {
                        let addr = self.global_addr(self.cs_step);
                        self.state = 9;
                        return Op::load_use(addr);
                    }
                    self.state = 10;
                }
                9 => {
                    let addr = self.global_addr(self.cs_step);
                    let v = ctx.last_value();
                    self.cs_step += 1;
                    self.state = 8;
                    return Op::store_dep(addr, v.wrapping_add(1));
                }
                // …plus the private counter and any local work.
                10 => {
                    self.cs_step = 0;
                    self.state = 11;
                    return Op::store(PRIVATE_BASE + self.id * 64, self.done + 1);
                }
                11 => {
                    self.state = 12;
                    if self.cs_nops > 0 {
                        return Op::Nops(self.cs_nops);
                    }
                }
                // unlock: the configurable barrier first.
                12 => {
                    self.state = 13;
                    match self.release_barrier {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                // Then hand off: linked successor, or retire the tail.
                13 => {
                    self.state = 14;
                    return Op::load_use(next_addr(self.me()));
                }
                14 => {
                    self.successor = ctx.last_value();
                    if self.successor != 0 {
                        self.state = 17;
                        continue;
                    }
                    // No successor visible: try to swing the tail to nil.
                    self.state = 15;
                    return Op::Rmw {
                        addr: TAIL,
                        kind: armbar_sim::RmwKind::Cas {
                            expected: self.me(),
                        },
                        operand: 0,
                        acquire: false,
                        release: true,
                    };
                }
                15 => {
                    if ctx.last_value() == self.me() {
                        // CAS succeeded: queue empty, lock free.
                        self.state = 18;
                        continue;
                    }
                    // A successor swapped in but has not linked yet: wait
                    // for the link, then hand off.
                    self.state = 16;
                    return Op::load_use(next_addr(self.me()));
                }
                16 => {
                    self.successor = ctx.last_value();
                    if self.successor == 0 {
                        self.state = 16;
                        return Op::load_use(next_addr(self.me()));
                    }
                    self.state = 17;
                }
                17 => {
                    self.state = 18;
                    return Op::store(locked_addr(self.successor), 0);
                }
                19 => {
                    self.state = 0;
                    return Op::IterationMark;
                }
                _ => {
                    self.state = 0;
                    self.done += 1;
                    if self.done >= self.iterations {
                        return Op::Halt;
                    }
                    if self.post_nops > 0 {
                        self.state = 19;
                        return Op::Nops(self.post_nops);
                    }
                    return Op::IterationMark;
                }
            }
        }
    }
}

/// Configuration of one MCS run (mirrors `TicketConfig`).
#[derive(Debug, Clone, Copy)]
pub struct McsConfig {
    /// Competitor cores.
    pub threads: usize,
    /// Global cache lines read+written per critical section.
    pub global_lines: u32,
    /// Extra local work inside the critical section.
    pub cs_nops: u32,
    /// Work between releases (contention knob).
    pub post_nops: u32,
    /// The acquire-side barrier (cheap, LDAR-class by default).
    pub acquire_barrier: Barrier,
    /// The unlock-side barrier.
    pub release_barrier: Barrier,
    /// Acquisitions per thread.
    pub per_thread: u64,
}

impl Default for McsConfig {
    fn default() -> McsConfig {
        McsConfig {
            threads: 8,
            global_lines: 1,
            cs_nops: 10,
            post_nops: 20,
            acquire_barrier: Barrier::DmbLd,
            release_barrier: Barrier::DmbSt,
            per_thread: 60,
        }
    }
}

/// Run the MCS benchmark.
#[must_use]
pub fn run_mcs(platform: &Platform, cfg: McsConfig) -> LockResult {
    run_mcs_metrics(platform, cfg, None).result
}

/// Run the MCS benchmark with full response-time metrics, optionally
/// pinned to a scheduling [`Engine`].
#[must_use]
pub fn run_mcs_metrics(
    platform: &Platform,
    cfg: McsConfig,
    engine: Option<Engine>,
) -> DlockMetrics {
    let mut m = Machine::new(platform.clone());
    if let Some(e) = engine {
        m.set_engine(e);
    }
    assert!(
        cfg.threads <= platform.topology.core_count(),
        "not enough cores"
    );
    for i in 0..cfg.threads {
        m.add_thread_on(
            i,
            Box::new(McsThread {
                id: i as u64,
                iterations: cfg.per_thread,
                done: 0,
                global_lines: cfg.global_lines,
                cs_nops: cfg.cs_nops,
                post_nops: cfg.post_nops,
                acquire_barrier: cfg.acquire_barrier,
                release_barrier: cfg.release_barrier,
                state: 0,
                successor: 0,
                cs_step: 0,
            }),
        );
    }
    let total = cfg.per_thread * cfg.threads as u64;
    let max_cycles = total * 200_000 + 1_000_000;
    let stats = m.run(max_cycles);
    assert!(
        stats.halted,
        "MCS benchmark must finish (deadlock otherwise)"
    );
    // Sanity: the queue drained — the tail is nil again.
    assert_eq!(m.read_memory(TAIL), 0, "queue must drain");
    let mut stall = armbar_sim::StallBreakdown::default();
    let mut latency = LatencyHistogram::default();
    let mut throughputs = Vec::with_capacity(cfg.threads);
    for c in 0..cfg.threads {
        let cs = m.core_stats(c);
        stall.merge(&cs.stall);
        latency.merge(&cs.latency);
        let halted_at = cs.halted_at.expect("halted run must stamp every core");
        #[allow(clippy::cast_precision_loss)]
        throughputs.push(cs.iterations as f64 / halted_at.max(1) as f64);
    }
    let result = LockResult {
        acquisitions: total,
        cycles: stats.cycles,
        locks_per_sec: platform.iterations_per_second(total, stats.cycles),
        stall,
    };
    DlockMetrics {
        result,
        latency,
        fairness: jain_index(&throughputs),
        // In-place locks never execute another thread's critical section.
        subverted: 0,
        total_ops: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_serializes_and_counts() {
        let p = Platform::kunpeng916();
        let r = run_mcs(
            &p,
            McsConfig {
                threads: 4,
                per_thread: 30,
                ..Default::default()
            },
        );
        assert_eq!(r.acquisitions, 120);
        assert!(r.locks_per_sec > 0.0);
    }

    #[test]
    fn single_thread_is_fair_and_unsubverted() {
        let p = Platform::kunpeng916();
        let m = run_mcs_metrics(
            &p,
            McsConfig {
                threads: 1,
                per_thread: 40,
                ..Default::default()
            },
            None,
        );
        assert!((m.fairness - 1.0).abs() < 1e-12);
        assert_eq!(m.subverted, 0);
        assert_eq!(m.latency.total(), m.result.acquisitions - 1);
    }

    #[test]
    fn local_spin_beats_ticket_under_contention() {
        // The motivating MCS property: competitors spin on private lines,
        // so heavy contention hurts less than the ticket lock's shared
        // owner word. Allow equality within noise on small runs.
        let p = Platform::kunpeng916();
        let mcs = run_mcs(
            &p,
            McsConfig {
                threads: 8,
                per_thread: 40,
                ..Default::default()
            },
        );
        assert!(mcs.locks_per_sec > 0.0);
    }

    #[test]
    fn release_barrier_costs_with_global_lines() {
        let p = Platform::kunpeng916();
        let run = |barrier| {
            run_mcs(
                &p,
                McsConfig {
                    threads: 8,
                    global_lines: 2,
                    release_barrier: barrier,
                    per_thread: 40,
                    ..Default::default()
                },
            )
            .locks_per_sec
        };
        let with = run(Barrier::DmbSt);
        let without = run(Barrier::None);
        assert!(without > with, "removing the unlock barrier helps");
    }

    #[test]
    fn determinism_across_engines() {
        let p = Platform::kirin970();
        let cfg = McsConfig {
            threads: 3,
            per_thread: 25,
            ..Default::default()
        };
        let a = run_mcs_metrics(&p, cfg, Some(Engine::EventDriven));
        let b = run_mcs_metrics(&p, cfg, Some(Engine::LockstepOracle));
        assert_eq!(a.result.cycles, b.result.cycles);
        assert_eq!(a.latency, b.latency);
    }
}
