//! Barrier-synchronization workloads for the many-core study.
//!
//! Three classic software-barrier shapes, each built from the same
//! primitives (an arrival fetch-add, a `DMB st`-published generation flag,
//! and a parked [`Op::wait_change`] spin), so their cost differences are
//! purely structural:
//!
//! * **Centralized** sense-free generation barrier: every arrival hits one
//!   counter line, every release invalidates one flag line watched by all
//!   waiters. O(n) contention on both sides — the textbook victim.
//! * **Combining tree** (radix [`TREE_RADIX`]): arrivals combine up a tree
//!   of counter lines, so each line sees at most [`TREE_RADIX`] RMWs per
//!   round; the release is still one global flag.
//! * **Hierarchical** (cluster-then-system): arrivals combine per physical
//!   cluster, one representative per cluster ascends to a system counter,
//!   and the release fans out through *per-cluster* flag lines homed in
//!   their own cluster — wake-up invalidations stay cluster-local.
//!
//! The crossover this family exposes: centralized wins at small core
//! counts (fewest instructions per episode) and collapses as the counter
//! line serializes hundreds of RMWs; hierarchical pays two levels of
//! latency but scales with cluster count, overtaking at a few hundred
//! cores (`exp-manycore` sweeps the grid).

use armbar_barriers::Barrier;
use armbar_sim::{Engine, Machine, Op, Platform, SimThread, StallBreakdown, ThreadCtx};

/// Arity of the combining tree.
pub const TREE_RADIX: usize = 4;

/// System-wide generation flag (the root release line).
const GEN: u64 = 0x180;
/// System-level arrival counter (centralized / hierarchical top level).
const SYS_COUNT: u64 = 0x100;
/// Combining-tree node counters, one line per node.
const TREE_BASE: u64 = 0x1_0000;
/// Per-cluster arrival counters (hierarchical).
const CL_COUNT_BASE: u64 = 0x2_0000;
/// Per-cluster release flags (hierarchical).
const CL_FLAG_BASE: u64 = 0x3_0000;

/// Which software barrier shape to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierFamily {
    /// One counter, one flag, everyone spins on it.
    Centralized,
    /// Radix-[`TREE_RADIX`] arrival tree, single release flag.
    CombiningTree,
    /// Per-cluster arrival + release, cluster representatives meet at a
    /// system counter.
    Hierarchical,
}

impl BarrierFamily {
    /// Every family, in sweep order.
    pub const ALL: [BarrierFamily; 3] = [
        BarrierFamily::Centralized,
        BarrierFamily::CombiningTree,
        BarrierFamily::Hierarchical,
    ];

    /// Stable label for CSVs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BarrierFamily::Centralized => "centralized",
            BarrierFamily::CombiningTree => "tree",
            BarrierFamily::Hierarchical => "hierarchical",
        }
    }
}

/// Configuration of one barrier run.
#[derive(Debug, Clone, Copy)]
pub struct BarrierConfig {
    /// Barrier shape.
    pub family: BarrierFamily,
    /// Participating cores (ids `0..threads`).
    pub threads: usize,
    /// Barrier episodes each thread passes.
    pub rounds: u64,
    /// Local work between episodes.
    pub work_nops: u32,
}

impl Default for BarrierConfig {
    fn default() -> BarrierConfig {
        BarrierConfig {
            family: BarrierFamily::Centralized,
            threads: 8,
            rounds: 20,
            work_nops: 20,
        }
    }
}

/// Result of one barrier run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierResult {
    /// Episodes completed (== `rounds`).
    pub rounds: u64,
    /// Cycles until the last thread finished.
    pub cycles: u64,
    /// Mean cycles per episode — the barrier latency the sweep plots.
    pub cycles_per_round: f64,
    /// Episodes per second at the platform's clock.
    pub barriers_per_sec: f64,
    /// Barrier-instruction stall decomposition summed over all threads.
    pub stall: StallBreakdown,
}

/// One participant. The per-round protocol, uniform across families:
///
/// 1. `work_nops` of local work, then ascend the arrival `path`: at each
///    level a `fetch_add` (acq+rel) on the level's counter; only the last
///    arriver of the round continues upward.
/// 2. The last arriver at the root is the *releaser*: a `DMB st`, then a
///    store of the new generation to the root flag and to any `fanout`
///    flags (hierarchical reps push their cluster flag after waking).
/// 3. Everyone else parks on the flag of the level that absorbed them
///    ([`Op::wait_change`] — the event engine delivers the line wake), then
///    orders the pass with a `DMB ld`.
struct BarrierThread {
    rounds: u64,
    work_nops: u32,
    /// Arrival ladder, leaf to root: `(counter line, arrivals per round)`.
    path: Vec<(u64, u64)>,
    /// Flag parked on when absorbed at the matching `path` level.
    wait_flags: Vec<u64>,
    /// Flags this thread re-publishes after passing level `i` (a
    /// hierarchical representative fans the release out to its cluster).
    fanout: Vec<Vec<u64>>,
    /// Completed rounds.
    round: u64,
    /// Current ascent level.
    depth: usize,
    /// Pending fanout writes for this round's release.
    writes: Vec<u64>,
    state: u8,
}

impl SimThread for BarrierThread {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // New round: local work, then start the ascent.
                0 => {
                    self.depth = 0;
                    self.state = 1;
                    if self.work_nops > 0 {
                        return Op::Nops(self.work_nops);
                    }
                }
                1 => {
                    self.state = 2;
                    return Op::fetch_add_acq_rel(self.path[self.depth].0, 1);
                }
                // Arrival outcome: last of the round at this level?
                2 => {
                    let (_, arrivals) = self.path[self.depth];
                    if ctx.last_value() + 1 == (self.round + 1) * arrivals {
                        self.depth += 1;
                        if self.depth == self.path.len() {
                            // Global releaser: publish root flag + own fanout.
                            self.writes = self.fanout[self.depth - 1].clone();
                            self.writes.push(self.wait_flags[self.depth - 1]);
                            self.state = 4;
                            return Op::Fence(Barrier::DmbSt);
                        }
                        self.state = 1;
                    } else {
                        self.state = 3;
                        return Op::wait_change(self.wait_flags[self.depth], self.round);
                    }
                }
                // Woken: order the pass, then fan the release downward.
                3 => {
                    self.writes = self.fanout[self.depth].clone();
                    self.state = 4;
                    return Op::Fence(Barrier::DmbLd);
                }
                4 => match self.writes.pop() {
                    Some(flag) => return Op::store(flag, self.round + 1),
                    None => {
                        self.round += 1;
                        self.state = if self.round >= self.rounds { 6 } else { 5 };
                        return Op::IterationMark;
                    }
                },
                5 => {
                    self.state = 0;
                }
                _ => return Op::Halt,
            }
        }
    }
}

/// Group participating cores `0..threads` by physical cluster, in core-id
/// order: `(first member core, member cores)` per cluster.
fn cluster_groups(platform: &Platform, threads: usize) -> Vec<Vec<usize>> {
    let topo = &platform.topology;
    let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
    for core in 0..threads {
        let p = topo.placement(core);
        let key = (p.node, p.cluster);
        match groups.last_mut() {
            Some((k, members)) if *k == key => members.push(core),
            _ => groups.push((key, vec![core])),
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// The combining tree over `threads` leaves, bottom-up: node count per
/// level, each level's first global node index, and every node's fan-in.
/// Groups are [`TREE_RADIX`] consecutive units; the last level is the
/// single root (a lone participant still gets a root to arrive at).
fn tree_structure(threads: usize) -> (Vec<usize>, Vec<usize>, Vec<u64>) {
    let mut sizes = Vec::new();
    let mut units = threads;
    loop {
        let nodes = units.div_ceil(TREE_RADIX).max(1);
        sizes.push(nodes);
        if nodes == 1 {
            break;
        }
        units = nodes;
    }
    let mut offsets = vec![0usize; sizes.len()];
    for l in 1..sizes.len() {
        offsets[l] = offsets[l - 1] + sizes[l - 1];
    }
    let mut fan_in = vec![0u64; sizes.iter().sum()];
    let mut units = threads;
    for (l, &sz) in sizes.iter().enumerate() {
        for u in 0..units {
            fan_in[offsets[l] + u / TREE_RADIX] += 1;
        }
        units = sz;
    }
    (sizes, offsets, fan_in)
}

/// Run a barrier configuration on the default (event-driven) engine.
///
/// # Panics
///
/// Panics if the configuration is infeasible (`threads` exceeding the
/// platform, zero rounds) or the run deadlocks — a barrier that fails to
/// release every thread every round is a correctness bug, not a data point.
#[must_use]
pub fn run_barrier(platform: &Platform, cfg: BarrierConfig) -> BarrierResult {
    run_barrier_inner(platform, cfg, None)
}

/// [`run_barrier`] pinned to a specific scheduling [`Engine`] — the hook
/// the differential harness uses to compare engines on identical workloads.
#[must_use]
pub fn run_barrier_with_engine(
    platform: &Platform,
    cfg: BarrierConfig,
    engine: Engine,
) -> BarrierResult {
    run_barrier_inner(platform, cfg, Some(engine))
}

fn run_barrier_inner(
    platform: &Platform,
    cfg: BarrierConfig,
    engine: Option<Engine>,
) -> BarrierResult {
    assert!(cfg.threads >= 1, "a barrier needs at least one participant");
    assert!(
        cfg.threads <= platform.topology.core_count(),
        "not enough cores: {} > {}",
        cfg.threads,
        platform.topology.core_count()
    );
    assert!(cfg.rounds >= 1, "zero rounds measures nothing");
    let mut m = Machine::new(platform.clone());
    if let Some(e) = engine {
        m.set_engine(e);
    }
    // Root lines live with core 0 (the usual allocator behaviour: the
    // thread that initializes the barrier owns its lines).
    m.set_region_home(SYS_COUNT, GEN + 64, 0);

    let n = cfg.threads as u64;
    match cfg.family {
        BarrierFamily::Centralized => {
            for core in 0..cfg.threads {
                m.add_thread_on(core, Box::new(thread_for(cfg, vec![(SYS_COUNT, n)])));
            }
        }
        BarrierFamily::CombiningTree => {
            let (sizes, offsets, fan_in) = tree_structure(cfg.threads);
            let nodes = fan_in.len();
            m.set_region_home(TREE_BASE, TREE_BASE + nodes as u64 * 64, 0);
            for core in 0..cfg.threads {
                // The core's ascent: its leaf group's node, then the node
                // its group feeds at each higher level.
                let mut path = Vec::with_capacity(sizes.len());
                let mut unit = core;
                for &off in &offsets {
                    let local = unit / TREE_RADIX;
                    let node = off + local;
                    path.push((TREE_BASE + node as u64 * 64, fan_in[node]));
                    unit = local;
                }
                m.add_thread_on(core, Box::new(thread_for(cfg, path)));
            }
        }
        BarrierFamily::Hierarchical => {
            let groups = cluster_groups(platform, cfg.threads);
            let top = groups.len() as u64;
            for (gi, members) in groups.iter().enumerate() {
                let count = CL_COUNT_BASE + gi as u64 * 64;
                let flag = CL_FLAG_BASE + gi as u64 * 64;
                // Cluster lines are homed in their own cluster, so member
                // wake-ups are cluster-local invalidations.
                m.set_region_home(count, count + 64, members[0]);
                m.set_region_home(flag, flag + 64, members[0]);
                for &core in members {
                    let mut t =
                        thread_for(cfg, vec![(count, members.len() as u64), (SYS_COUNT, top)]);
                    t.wait_flags = vec![flag, GEN];
                    // A representative woken at the system level re-publishes
                    // the release to its own cluster's flag.
                    t.fanout = vec![vec![], vec![flag]];
                    m.add_thread_on(core, Box::new(t));
                }
            }
        }
    }

    let max_cycles = cfg.rounds * 500_000 + 10_000_000;
    let stats = m.run(max_cycles);
    assert!(
        stats.halted,
        "{:?} barrier must release every thread every round",
        cfg.family
    );
    // Every thread passed every round.
    for core in 0..cfg.threads {
        assert_eq!(
            m.core_stats(core).iterations,
            cfg.rounds,
            "core {core} missed rounds"
        );
    }
    let mut stall = StallBreakdown::default();
    for core in 0..cfg.threads {
        stall.merge(&m.core_stats(core).stall);
    }
    let cycles = stats.cycles;
    BarrierResult {
        rounds: cfg.rounds,
        cycles,
        cycles_per_round: cycles as f64 / cfg.rounds as f64,
        barriers_per_sec: platform.iterations_per_second(cfg.rounds, cycles),
        stall,
    }
}

/// A thread with a single-flag release (centralized / tree): everyone
/// parks on [`GEN`] whatever level absorbed them, nobody fans out.
fn thread_for(cfg: BarrierConfig, path: Vec<(u64, u64)>) -> BarrierThread {
    let depth = path.len();
    BarrierThread {
        rounds: cfg.rounds,
        work_nops: cfg.work_nops,
        path,
        wait_flags: vec![GEN; depth],
        fanout: vec![Vec::new(); depth],
        round: 0,
        depth: 0,
        writes: Vec::new(),
        state: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_structure_shape() {
        // 16 leaves at radix 4: 4 leaf nodes, then 1 root, each fan-in 4.
        let (sizes, offsets, fan_in) = tree_structure(16);
        assert_eq!(sizes, vec![4, 1]);
        assert_eq!(offsets, vec![0, 4]);
        assert_eq!(fan_in, vec![4, 4, 4, 4, 4]);
        // Uneven counts still cover everyone.
        let (sizes, _, fan_in) = tree_structure(6);
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(fan_in, vec![4, 2, 2]);
        // Degenerate single participant: a lone root with fan-in 1.
        let (sizes, offsets, fan_in) = tree_structure(1);
        assert_eq!(sizes, vec![1]);
        assert_eq!(offsets, vec![0]);
        assert_eq!(fan_in, vec![1]);
    }

    #[test]
    fn all_families_release_every_round() {
        let p = Platform::kunpeng916();
        for family in BarrierFamily::ALL {
            for threads in [1, 2, 5, 16] {
                let r = run_barrier(
                    &p,
                    BarrierConfig {
                        family,
                        threads,
                        rounds: 10,
                        work_nops: 15,
                    },
                );
                assert_eq!(r.rounds, 10, "{family:?}/{threads}");
                assert!(r.cycles_per_round > 0.0);
                assert!(r.barriers_per_sec > 0.0);
            }
        }
    }

    #[test]
    fn engines_agree_on_every_family() {
        let p = Platform::kunpeng916();
        for family in BarrierFamily::ALL {
            for threads in [3, 9] {
                let cfg = BarrierConfig {
                    family,
                    threads,
                    rounds: 8,
                    work_nops: 10,
                };
                let ev = run_barrier_with_engine(&p, cfg, Engine::EventDriven);
                let or = run_barrier_with_engine(&p, cfg, Engine::LockstepOracle);
                assert_eq!(ev, or, "{family:?}/{threads}: engines must agree");
            }
        }
    }

    #[test]
    fn determinism() {
        let p = Platform::kirin970();
        let cfg = BarrierConfig {
            family: BarrierFamily::CombiningTree,
            threads: 7,
            rounds: 12,
            work_nops: 8,
        };
        assert_eq!(run_barrier(&p, cfg), run_barrier(&p, cfg));
    }

    #[test]
    fn hierarchical_wins_at_scale() {
        // The family's reason to exist: at 512+ cores the centralized
        // counter line serializes, the cluster-split arrival does not.
        let p = Platform::manycore(512);
        let cfg = |family| BarrierConfig {
            family,
            threads: 512,
            rounds: 4,
            work_nops: 10,
        };
        let central = run_barrier(&p, cfg(BarrierFamily::Centralized));
        let hier = run_barrier(&p, cfg(BarrierFamily::Hierarchical));
        assert!(
            hier.cycles_per_round < central.cycles_per_round,
            "hierarchical {} must beat centralized {} at 512 cores",
            hier.cycles_per_round,
            central.cycles_per_round
        );
    }

    #[test]
    fn centralized_wins_when_small() {
        let p = Platform::kunpeng916();
        let cfg = |family| BarrierConfig {
            family,
            threads: 4,
            rounds: 10,
            work_nops: 10,
        };
        let central = run_barrier(&p, cfg(BarrierFamily::Centralized));
        let hier = run_barrier(&p, cfg(BarrierFamily::Hierarchical));
        assert!(
            central.cycles_per_round <= hier.cycles_per_round,
            "centralized {} must not lose to hierarchical {} at 4 cores",
            central.cycles_per_round,
            hier.cycles_per_round
        );
    }
}
