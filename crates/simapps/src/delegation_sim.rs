//! Delegation locks on the simulator (Figures 7(b), 7(c), 8(a–c)).
//!
//! Two server flavours over the same request/response protocol:
//!
//! * **FFWD** — a dedicated server core sweeps per-client request lines
//!   (Algorithm 5), executing critical sections and publishing responses.
//!   Responses of one sweep share the response barrier — FFWD's batching.
//! * **DSynch** — a migratory combiner of the CC-Synch/DSM-Synch family:
//!   a client that finds the baton free serves every pending request
//!   (including its own), then releases the baton. No core is dedicated.
//!
//! Both publish responses either the classic way — store `ret`, response
//! barrier (strictly after the critical section's RMRs), flip the response
//! flag — or via **Pilot** (Algorithm 6): `ret ^ hash` *is* the
//! notification, with a per-client fallback flag.
//!
//! Critical sections are parameterized by a [`CsProfile`] so the
//! data-structure benchmarks of Figure 8 (queue/stack/list/hash table) map
//! onto the same machinery: how many shared lines the CS touches, how long
//! the dependent pointer-chase is, and how much ALU work it does.

use armbar_barriers::{Acquire, Barrier};
use armbar_sim::{Engine, LatencyHistogram, Machine, Op, Platform, SimThread, ThreadCtx};

use crate::metrics::{jain_index, DlockMetrics};
use crate::ticket_sim::{run_ticket, LockResult, TicketConfig};

/// Shared layout: per-client slots are fully padded; request and response
/// live on different lines.
const REQ_BASE: u64 = 0x2_0000;
const RESP_BASE: u64 = 0x4_0000;
const RESP_FLAG_BASE: u64 = 0x6_0000;
/// The DSynch baton (combiner role).
const BATON: u64 = 0x8_0000;
/// The flat-combining combiner lock (test-and-test-and-set word).
const FC_LOCK: u64 = 0x9_0000;
/// The CC-Synch queue tail (holds a node id, never 0).
const CC_TAIL: u64 = 0x9_8000;
/// Shared data-structure lines the critical sections touch.
const DATA_BASE: u64 = 0xA_0000;
/// Per-client served-round markers (shared between migrating combiners).
const SERVED_ROUND_BASE: u64 = 0xE_0000;
/// Total served-request counter (server-private line, used for results).
const SERVED: u64 = 0xC_0000;
/// CC-Synch node pool: four padded lines per node (request round, return
/// value, status word, successor pointer). Node ids start at 1.
const NODE_BASE: u64 = 0x10_0000;
/// Per-core combiner-subversion counters: critical sections this core
/// executed *on behalf of other threads*, published before `Halt`.
const SUBV_BASE: u64 = 0x12_0000;

/// CC-Synch status word values (0 = completed in flag mode; pilot packs
/// `round * 4 + 3` so the tag never collides with these).
const CC_WAIT: u64 = 1;
const CC_COMBINER: u64 = 2;
/// Requests one CC-Synch combiner serves before handing off.
const CC_COMBINE_BOUND: u32 = 64;
/// Publication-list passes one flat-combining tenure performs.
const FC_SCAN_PASSES: u32 = 2;

fn req_addr(client: usize) -> u64 {
    REQ_BASE + client as u64 * 128
}

fn resp_addr(client: usize) -> u64 {
    RESP_BASE + client as u64 * 128
}

fn resp_flag_addr(client: usize) -> u64 {
    RESP_FLAG_BASE + client as u64 * 128
}

fn served_round_addr(client: usize) -> u64 {
    SERVED_ROUND_BASE + client as u64 * 128
}

fn subv_addr(core: usize) -> u64 {
    SUBV_BASE + core as u64 * 128
}

fn node_req(node: u64) -> u64 {
    NODE_BASE + node * 256
}

fn node_ret(node: u64) -> u64 {
    NODE_BASE + node * 256 + 64
}

fn node_status(node: u64) -> u64 {
    NODE_BASE + node * 256 + 128
}

fn node_next(node: u64) -> u64 {
    NODE_BASE + node * 256 + 192
}

pub use armbar_barriers::ResponseMode;

/// Shape of the delegated critical section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CsProfile {
    /// Independent shared lines read+written (e.g. queue head + tail).
    pub lines: u32,
    /// Length of a *dependent* load chain (sorted-list walk).
    pub chase: u32,
    /// ALU work.
    pub nops: u32,
}

impl CsProfile {
    /// A bump-a-counter critical section (Figure 7(b)/(c)).
    #[must_use]
    pub fn counter() -> CsProfile {
        CsProfile {
            lines: 1,
            chase: 0,
            nops: 4,
        }
    }

    /// Queue/stack insert+remove pair: head/tail line plus an element line.
    #[must_use]
    pub fn queue_or_stack() -> CsProfile {
        CsProfile {
            lines: 2,
            chase: 0,
            nops: 8,
        }
    }

    /// Sorted-list operation over `preload` members (walks half on
    /// average).
    #[must_use]
    pub fn sorted_list(preload: u32) -> CsProfile {
        CsProfile {
            lines: 1,
            chase: preload / 2,
            nops: 8,
        }
    }
}

/// Barrier pair of Algorithm 5 (`X-Y` in Figure 7(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelegationBarriers {
    /// Line 4: after detecting the request.
    pub req: Barrier,
    /// Line 7: after the critical section, before the response flag.
    pub resp: Barrier,
}

/// The Figure 7(b) combinations, in the legend's order.
pub const FIG7B_COMBOS: [(&str, DelegationBarriers); 7] = [
    (
        "DMB full-DMB st",
        DelegationBarriers {
            req: Barrier::DmbFull,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "DMB ld-DMB st",
        DelegationBarriers {
            req: Barrier::DmbLd,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "LDAR-DMB st",
        DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "CTRL+ISB-DMB st",
        DelegationBarriers {
            req: Barrier::CtrlIsb,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "ADDR-DMB st",
        DelegationBarriers {
            req: Barrier::AddrDep,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "LDAR-No Barrier",
        DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::None,
        },
    ),
    (
        "Ideal",
        DelegationBarriers {
            req: Barrier::None,
            resp: Barrier::None,
        },
    ),
];

/// Ops issued to execute one critical section, shared by both servers.
/// Returns the op for `cs_step`, or `None` when the CS is finished.
///
/// The dependent chase reads `DATA_BASE + k*64` with an address dependency
/// on the previous load; independent lines are read+written.
fn cs_op(profile: CsProfile, cs_step: &mut u32, last_value: u64, served: u64) -> Option<Op> {
    let lines_phase = profile.lines * 2; // load+store per line
    let step = *cs_step;
    *cs_step += 1;
    if step < lines_phase {
        let line = u64::from(step / 2);
        let addr = DATA_BASE + line * 64;
        if step.is_multiple_of(2) {
            return Some(Op::load_use(addr));
        }
        return Some(Op::store_dep(addr, last_value.wrapping_add(1)));
    }
    let chase_step = step - lines_phase;
    if chase_step < profile.chase {
        // Pointer chase: each node is a distinct line; the address depends
        // on the previous load.
        let addr = DATA_BASE + 0x1000 + u64::from(chase_step) * 64 + (served % 4) * 0x4000;
        return Some(Op::load_dep(addr, true));
    }
    if chase_step == profile.chase && profile.nops > 0 {
        return Some(Op::Nops(profile.nops));
    }
    None
}

// ----------------------------------------------------------------- clients

/// A delegation client: posts a request, awaits the response, repeats.
struct Client {
    id: usize,
    iterations: u64,
    done: u64,
    interval_nops: u32,
    mode: ResponseMode,
    old_resp: u64,
    old_flag: u64,
    round: u64,
    state: u8,
}

impl SimThread for Client {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Post the request: one store carrying round+payload.
                0 => {
                    self.round += 1;
                    self.state = 1;
                    return Op::store(req_addr(self.id), self.round);
                }
                // Await the response.
                1 => {
                    self.state = 2;
                    return Op::load_use(resp_addr(self.id));
                }
                2 => {
                    let v = ctx.last_value();
                    match self.mode {
                        ResponseMode::Flag => {
                            // The flag word signals; re-read it.
                            self.state = 3;
                            return Op::load_use(resp_flag_addr(self.id));
                        }
                        ResponseMode::Pilot => {
                            if v != self.old_resp {
                                self.old_resp = v;
                                self.state = 5;
                                continue;
                            }
                            self.state = 3;
                            return Op::load_use(resp_flag_addr(self.id));
                        }
                    }
                }
                3 => {
                    let f = ctx.last_value();
                    match self.mode {
                        ResponseMode::Flag => {
                            if f == self.round {
                                self.state = 4;
                                continue;
                            }
                        }
                        ResponseMode::Pilot => {
                            if f != self.old_flag {
                                self.old_flag = f;
                                self.state = 5;
                                continue;
                            }
                        }
                    }
                    self.state = 1;
                    return Op::Nops(1);
                }
                // Flag mode: order the flag before reading ret (cheap side).
                4 => {
                    self.state = 6;
                    return Op::Load {
                        addr: resp_addr(self.id),
                        use_value: true,
                        acquire: Acquire::No,
                        dep_on_last_load: true,
                    };
                }
                5 | 6 => {
                    self.state = 7;
                }
                8 => {
                    self.state = 0;
                    return Op::Nops(self.interval_nops);
                }
                _ => {
                    self.done += 1;
                    if self.done >= self.iterations {
                        return Op::Halt;
                    }
                    self.state = if self.interval_nops > 0 { 8 } else { 0 };
                    return Op::IterationMark;
                }
            }
        }
    }
}

// ------------------------------------------------------------ FFWD server

/// The dedicated FFWD server: sweeps request lines round-robin.
struct FfwdServer {
    clients: usize,
    seen: Vec<u64>,
    total: u64,
    served: u64,
    barriers: DelegationBarriers,
    mode: ResponseMode,
    profile: CsProfile,
    scan_at: usize,
    cs_step: u32,
    state: u8,
}

impl SimThread for FfwdServer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Poll the next client's request line.
                0 => {
                    if self.served >= self.total {
                        // Every critical section a dedicated server runs is
                        // on behalf of someone else: publish the subversion
                        // counter, then retire.
                        self.state = 8;
                        return Op::store(subv_addr(0), self.served);
                    }
                    self.state = 1;
                    return Op::load_use(req_addr(self.scan_at));
                }
                1 => {
                    let round = ctx.last_value();
                    if round == self.seen[self.scan_at] {
                        self.scan_at = (self.scan_at + 1) % self.clients;
                        self.state = 0;
                        continue;
                    }
                    self.seen[self.scan_at] = round;
                    // Line 4: the request barrier.
                    self.state = 2;
                    match self.barriers.req {
                        Barrier::None => {}
                        Barrier::Ldar => {
                            return Op::Load {
                                addr: req_addr(self.scan_at),
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {
                            // Dependencies attach to the CS's first access;
                            // nothing standalone to issue.
                        }
                        f => return Op::Fence(f),
                    }
                }
                // Line 6: the critical section.
                2 => {
                    match cs_op(
                        self.profile,
                        &mut self.cs_step,
                        ctx.last_value(),
                        self.served,
                    ) {
                        Some(op) => return op,
                        None => {
                            self.cs_step = 0;
                            self.state = 3;
                        }
                    }
                }
                // Lines 7-8 / Algorithm 6: publish the response.
                3 => {
                    let client = self.scan_at;
                    let round = self.seen[client];
                    self.served += 1;
                    match self.mode {
                        ResponseMode::Flag => {
                            self.state = 4;
                            return Op::store(resp_addr(client), round.wrapping_mul(3));
                        }
                        ResponseMode::Pilot => {
                            // The shuffled ret is the notification; hashing
                            // is two local ALU ops.
                            self.state = 6;
                            return Op::Nops(2);
                        }
                    }
                }
                4 => {
                    self.state = 5;
                    match self.barriers.resp {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                5 => {
                    let client = self.scan_at;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.state = 7;
                    return Op::store(resp_flag_addr(client), self.seen[client]);
                }
                6 => {
                    let client = self.scan_at;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.state = 7;
                    // Shuffled value differs from the previous round's by
                    // construction (round counter folded in).
                    return Op::store(resp_addr(client), self.seen[client].wrapping_mul(7) | 1);
                }
                7 => {
                    self.state = 0;
                    return Op::store(SERVED, self.served);
                }
                _ => return Op::Halt,
            }
        }
    }
}

// -------------------------------------------------------- DSynch combiner

/// A DSynch-family client: posts its request, then either waits for
/// service or grabs the baton and combines.
struct CombinerClient {
    id: usize,
    clients: usize,
    iterations: u64,
    done: u64,
    interval_nops: u32,
    barriers: DelegationBarriers,
    mode: ResponseMode,
    profile: CsProfile,
    old_resp: u64,
    old_flag: u64,
    round: u64,
    served_total: u64,
    /// Critical sections executed on behalf of *other* clients while we
    /// held the baton (the combiner-subversion counter).
    for_others: u64,
    scan_at: usize,
    scanned: usize,
    cs_step: u32,
    serving_round: u64,
    poll_misses: u64,
    state: u8,
}

impl SimThread for CombinerClient {
    #[allow(clippy::too_many_lines)]
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Post own request.
                0 => {
                    self.round += 1;
                    self.state = 1;
                    return Op::store(req_addr(self.id), self.round);
                }
                // Try to become the combiner (baton CAS), else wait.
                1 => {
                    self.state = 2;
                    return Op::Rmw {
                        addr: BATON,
                        kind: armbar_sim::RmwKind::Cas { expected: 0 },
                        operand: 1,
                        acquire: true,
                        release: false,
                    };
                }
                2 => {
                    if ctx.last_value() == 0 {
                        // We hold the baton: combine.
                        self.scan_at = 0;
                        self.scanned = 0;
                        self.state = 10;
                    } else {
                        // Someone is combining; wait for our response.
                        self.state = 3;
                    }
                }
                // ---------------- waiting side ----------------
                // Spinning is local: the polled lines are ours, so until a
                // combiner writes them the loads hit in our cache.
                3 => match self.mode {
                    ResponseMode::Flag => {
                        self.state = 4;
                        return Op::load_use(resp_flag_addr(self.id));
                    }
                    ResponseMode::Pilot => {
                        self.state = 6;
                        return Op::load_use(resp_addr(self.id));
                    }
                },
                // Flag mode: the flag carries the served round (absolute
                // test — immune to stale delta state).
                4 => {
                    if ctx.last_value() == self.round {
                        // Served: read the return value behind a dependency.
                        self.state = 30;
                        return Op::Load {
                            addr: resp_addr(self.id),
                            use_value: true,
                            acquire: Acquire::No,
                            dep_on_last_load: true,
                        };
                    }
                    self.state = 5;
                    continue;
                }
                // Not served yet: spin locally, retrying the baton only
                // occasionally so a released lock cannot strand us.
                5 => {
                    self.poll_misses += 1;
                    self.state = if self.poll_misses.is_multiple_of(8) {
                        1
                    } else {
                        3
                    };
                    return Op::Nops(2);
                }
                // Pilot mode: Algorithm 4 on the response word.
                6 => {
                    let v = ctx.last_value();
                    if v != self.old_resp {
                        self.old_resp = v;
                        self.state = 30;
                        continue;
                    }
                    self.state = 7;
                    return Op::load_use(resp_flag_addr(self.id));
                }
                7 => {
                    if ctx.last_value() != self.old_flag {
                        self.old_flag = ctx.last_value();
                        self.state = 30;
                        continue;
                    }
                    self.state = 5;
                    continue;
                }
                // ---------------- combiner side ----------------
                // Scan all clients once, serving pending requests.
                10 => {
                    if self.scanned >= self.clients {
                        // Sweep done: release the baton.
                        self.state = 20;
                        continue;
                    }
                    self.state = 11;
                    return Op::load_use(req_addr(self.scan_at));
                }
                11 => {
                    self.serving_round = ctx.last_value();
                    // The served-round marker is shared state: combiners
                    // migrate, so progress must live in memory, not in a
                    // core-local array.
                    self.state = 25;
                    return Op::load_use(served_round_addr(self.scan_at));
                }
                25 => {
                    if self.serving_round == ctx.last_value() {
                        self.scan_at = (self.scan_at + 1) % self.clients;
                        self.scanned += 1;
                        self.state = 10;
                        continue;
                    }
                    self.state = 26;
                    return Op::store(served_round_addr(self.scan_at), self.serving_round);
                }
                26 => {
                    self.state = 12;
                    match self.barriers.req {
                        Barrier::None | Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {}
                        Barrier::Ldar => {
                            return Op::Load {
                                addr: req_addr(self.scan_at),
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        f => return Op::Fence(f),
                    }
                }
                12 => {
                    match cs_op(
                        self.profile,
                        &mut self.cs_step,
                        ctx.last_value(),
                        self.served_total,
                    ) {
                        Some(op) => return op,
                        None => {
                            self.cs_step = 0;
                            self.served_total += 1;
                            if self.scan_at != self.id {
                                self.for_others += 1;
                            }
                            self.state = 13;
                        }
                    }
                }
                // Publish the response (to ourselves too: uniform path).
                13 => {
                    let client = self.scan_at;
                    let round = self.serving_round;
                    match self.mode {
                        ResponseMode::Flag => {
                            self.state = 14;
                            return Op::store(resp_addr(client), round.wrapping_mul(3));
                        }
                        ResponseMode::Pilot => {
                            self.state = 16;
                            return Op::Nops(2);
                        }
                    }
                }
                14 => {
                    self.state = 15;
                    match self.barriers.resp {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                15 => {
                    let client = self.scan_at;
                    let round = self.serving_round;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.scanned += 1;
                    self.state = 10;
                    return Op::store(resp_flag_addr(client), round);
                }
                16 => {
                    let client = self.scan_at;
                    let round = self.serving_round;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.scanned += 1;
                    self.state = 10;
                    return Op::store(resp_addr(client), round.wrapping_mul(7) | 1);
                }
                // Release the baton (store-release keeps the protocol
                // sound; its cost is shared across the whole sweep).
                20 => {
                    self.state = 21;
                    return Op::store_release(BATON, 0);
                }
                21 => {
                    // Our own request was served during the sweep (we always
                    // serve ourselves); synchronize decode state.
                    self.old_resp = match self.mode {
                        ResponseMode::Flag => self.old_resp,
                        ResponseMode::Pilot => self.round.wrapping_mul(7) | 1,
                    };
                    self.old_flag = match self.mode {
                        ResponseMode::Flag => self.round,
                        ResponseMode::Pilot => self.old_flag,
                    };
                    self.state = 30;
                }
                // ---------------- iteration done ----------------
                31 => {
                    self.state = 0;
                    return Op::Nops(self.interval_nops);
                }
                32 => {
                    self.state = 33;
                    return Op::store(subv_addr(self.id), self.for_others);
                }
                33 => return Op::Halt,
                _ => {
                    self.done += 1;
                    if self.done >= self.iterations {
                        self.state = 32;
                        continue;
                    }
                    self.state = if self.interval_nops > 0 { 31 } else { 0 };
                    return Op::IterationMark;
                }
            }
        }
    }
}

// --------------------------------------------------------------- RCL pair

/// An RCL client: the request word it spins on is also the completion
/// channel, so one padded line round-trips per operation.
struct RclClient {
    id: usize,
    iterations: u64,
    done: u64,
    interval_nops: u32,
    mode: ResponseMode,
    round: u64,
    state: u8,
}

impl SimThread for RclClient {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Post the request: an even, non-zero word (round * 2).
                0 => {
                    self.round += 1;
                    self.state = 1;
                    return Op::store(req_addr(self.id), self.round * 2);
                }
                // Spin on the same word.
                1 => {
                    self.state = 2;
                    return Op::load_use(req_addr(self.id));
                }
                2 => {
                    let v = ctx.last_value();
                    match self.mode {
                        ResponseMode::Flag => {
                            if v == 0 {
                                // Served: read ret behind a dependency
                                // (cheap client-side ordering).
                                self.state = 5;
                                return Op::Load {
                                    addr: resp_addr(self.id),
                                    use_value: true,
                                    acquire: Acquire::No,
                                    dep_on_last_load: true,
                                };
                            }
                        }
                        ResponseMode::Pilot => {
                            // Odd = packed response: notification and
                            // payload in the word we already hold.
                            if v & 1 == 1 {
                                self.state = 5;
                                continue;
                            }
                        }
                    }
                    self.state = 1;
                    return Op::Nops(1);
                }
                4 => {
                    self.state = 0;
                    return Op::Nops(self.interval_nops);
                }
                _ => {
                    self.done += 1;
                    if self.done >= self.iterations {
                        return Op::Halt;
                    }
                    self.state = if self.interval_nops > 0 { 4 } else { 0 };
                    return Op::IterationMark;
                }
            }
        }
    }
}

/// The dedicated RCL server: like FFWD's sweep, but completion is a store
/// back into the request word (clear in flag mode, packed odd in pilot).
struct RclServer {
    clients: usize,
    total: u64,
    served: u64,
    barriers: DelegationBarriers,
    mode: ResponseMode,
    profile: CsProfile,
    scan_at: usize,
    cs_step: u32,
    serving_round: u64,
    state: u8,
}

impl SimThread for RclServer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                0 => {
                    if self.served >= self.total {
                        self.state = 8;
                        return Op::store(subv_addr(0), self.served);
                    }
                    self.state = 1;
                    return Op::load_use(req_addr(self.scan_at));
                }
                1 => {
                    let v = ctx.last_value();
                    // Pending requests are even and non-zero; zero or odd
                    // means empty or our own earlier response.
                    if v == 0 || v & 1 == 1 {
                        self.scan_at = (self.scan_at + 1) % self.clients;
                        self.state = 0;
                        continue;
                    }
                    self.serving_round = v / 2;
                    // Line 4: the request barrier.
                    self.state = 2;
                    match self.barriers.req {
                        Barrier::None => {}
                        Barrier::Ldar => {
                            return Op::Load {
                                addr: req_addr(self.scan_at),
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {}
                        f => return Op::Fence(f),
                    }
                }
                // Line 6: the critical section.
                2 => {
                    match cs_op(
                        self.profile,
                        &mut self.cs_step,
                        ctx.last_value(),
                        self.served,
                    ) {
                        Some(op) => return op,
                        None => {
                            self.cs_step = 0;
                            self.state = 3;
                        }
                    }
                }
                // Publish the response into the request word.
                3 => {
                    self.served += 1;
                    match self.mode {
                        ResponseMode::Flag => {
                            self.state = 4;
                            return Op::store(
                                resp_addr(self.scan_at),
                                self.serving_round.wrapping_mul(3),
                            );
                        }
                        ResponseMode::Pilot => {
                            // Hashing the return value is two local ALU ops;
                            // the packed word (odd) is the only store.
                            self.state = 6;
                            return Op::Nops(2);
                        }
                    }
                }
                4 => {
                    self.state = 5;
                    match self.barriers.resp {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                5 => {
                    let client = self.scan_at;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.state = 7;
                    return Op::store(req_addr(client), 0);
                }
                6 => {
                    let client = self.scan_at;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.state = 7;
                    return Op::store(req_addr(client), self.serving_round.wrapping_mul(7) | 1);
                }
                7 => {
                    self.state = 0;
                    return Op::store(SERVED, self.served);
                }
                _ => return Op::Halt,
            }
        }
    }
}

// ------------------------------------------------------- flat combining

/// A flat-combining client: checks its own publication record first, then
/// tries the combiner lock (test-and-test-and-set) and scans all records.
struct FcClient {
    id: usize,
    clients: usize,
    iterations: u64,
    done: u64,
    interval_nops: u32,
    barriers: DelegationBarriers,
    mode: ResponseMode,
    profile: CsProfile,
    old_resp: u64,
    old_flag: u64,
    round: u64,
    served_total: u64,
    for_others: u64,
    scan_at: usize,
    pass: u32,
    pass_served: u32,
    own_served: bool,
    cs_step: u32,
    serving_round: u64,
    state: u8,
}

impl SimThread for FcClient {
    #[allow(clippy::too_many_lines)]
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Post own request into the publication record.
                0 => {
                    self.round += 1;
                    self.own_served = false;
                    self.state = 1;
                    return Op::store(req_addr(self.id), self.round);
                }
                // Check own response before fighting for the lock.
                1 => match self.mode {
                    ResponseMode::Flag => {
                        self.state = 2;
                        return Op::load_use(resp_flag_addr(self.id));
                    }
                    ResponseMode::Pilot => {
                        self.state = 3;
                        return Op::load_use(resp_addr(self.id));
                    }
                },
                2 => {
                    if ctx.last_value() == self.round {
                        // Served: read ret behind a dependency.
                        self.state = 30;
                        return Op::Load {
                            addr: resp_addr(self.id),
                            use_value: true,
                            acquire: Acquire::No,
                            dep_on_last_load: true,
                        };
                    }
                    self.state = 8;
                    continue;
                }
                3 => {
                    let v = ctx.last_value();
                    if v != self.old_resp {
                        self.old_resp = v;
                        self.state = 30;
                        continue;
                    }
                    self.state = 4;
                    return Op::load_use(resp_flag_addr(self.id));
                }
                4 => {
                    if ctx.last_value() != self.old_flag {
                        self.old_flag = ctx.last_value();
                        self.state = 30;
                        continue;
                    }
                    self.state = 8;
                    continue;
                }
                // Test-and-test-and-set on the combiner lock.
                8 => {
                    self.state = 9;
                    return Op::load_use(FC_LOCK);
                }
                9 => {
                    if ctx.last_value() != 0 {
                        self.state = 1;
                        return Op::Nops(2);
                    }
                    self.state = 10;
                    return Op::Rmw {
                        addr: FC_LOCK,
                        kind: armbar_sim::RmwKind::Cas { expected: 0 },
                        operand: 1,
                        acquire: true,
                        release: false,
                    };
                }
                10 => {
                    if ctx.last_value() == 0 {
                        self.pass = 0;
                        self.pass_served = 0;
                        self.scan_at = 0;
                        self.state = 11;
                    } else {
                        self.state = 1;
                        return Op::Nops(2);
                    }
                }
                // ---------------- combiner scan ----------------
                11 => {
                    if self.scan_at >= self.clients {
                        // Pass done: go again only if this one served
                        // anything and passes remain.
                        if self.pass_served == 0 || self.pass + 1 >= FC_SCAN_PASSES {
                            self.state = 20;
                        } else {
                            self.pass += 1;
                            self.pass_served = 0;
                            self.scan_at = 0;
                        }
                        continue;
                    }
                    self.state = 12;
                    return Op::load_use(req_addr(self.scan_at));
                }
                12 => {
                    self.serving_round = ctx.last_value();
                    self.state = 13;
                    return Op::load_use(served_round_addr(self.scan_at));
                }
                13 => {
                    if self.serving_round == ctx.last_value() {
                        self.scan_at += 1;
                        self.state = 11;
                        continue;
                    }
                    self.state = 14;
                    return Op::store(served_round_addr(self.scan_at), self.serving_round);
                }
                14 => {
                    self.state = 15;
                    match self.barriers.req {
                        Barrier::None | Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {}
                        Barrier::Ldar => {
                            return Op::Load {
                                addr: req_addr(self.scan_at),
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        f => return Op::Fence(f),
                    }
                }
                15 => {
                    match cs_op(
                        self.profile,
                        &mut self.cs_step,
                        ctx.last_value(),
                        self.served_total,
                    ) {
                        Some(op) => return op,
                        None => {
                            self.cs_step = 0;
                            self.served_total += 1;
                            self.pass_served += 1;
                            if self.scan_at == self.id {
                                self.own_served = true;
                            } else {
                                self.for_others += 1;
                            }
                            self.state = 16;
                        }
                    }
                }
                16 => {
                    let round = self.serving_round;
                    match self.mode {
                        ResponseMode::Flag => {
                            self.state = 17;
                            return Op::store(resp_addr(self.scan_at), round.wrapping_mul(3));
                        }
                        ResponseMode::Pilot => {
                            self.state = 19;
                            return Op::Nops(2);
                        }
                    }
                }
                17 => {
                    self.state = 18;
                    match self.barriers.resp {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                18 => {
                    let client = self.scan_at;
                    self.scan_at += 1;
                    self.state = 11;
                    return Op::store(resp_flag_addr(client), self.serving_round);
                }
                19 => {
                    let client = self.scan_at;
                    self.scan_at += 1;
                    self.state = 11;
                    return Op::store(resp_addr(client), self.serving_round.wrapping_mul(7) | 1);
                }
                // Release the combiner lock.
                20 => {
                    self.state = 21;
                    return Op::store_release(FC_LOCK, 0);
                }
                21 => {
                    if self.own_served {
                        // We served ourselves: synchronize decode state.
                        if self.mode == ResponseMode::Pilot {
                            self.old_resp = self.round.wrapping_mul(7) | 1;
                        }
                        self.state = 30;
                    } else {
                        // Someone else got to us first (or nobody yet):
                        // back to watching our record.
                        self.state = 1;
                    }
                    continue;
                }
                // ---------------- iteration done ----------------
                31 => {
                    self.state = 0;
                    return Op::Nops(self.interval_nops);
                }
                32 => {
                    self.state = 33;
                    return Op::store(subv_addr(self.id), self.for_others);
                }
                33 => return Op::Halt,
                _ => {
                    self.done += 1;
                    if self.done >= self.iterations {
                        self.state = 32;
                        continue;
                    }
                    self.state = if self.interval_nops > 0 { 31 } else { 0 };
                    return Op::IterationMark;
                }
            }
        }
    }
}

// ------------------------------------------------------------- CC-Synch

/// A CC-Synch client: swaps its spare node into the shared tail, adopts
/// the old tail as its request node, and spins on that node's status word
/// alone. The head of the queue combines.
struct CcClient {
    id: usize,
    iterations: u64,
    done: u64,
    interval_nops: u32,
    barriers: DelegationBarriers,
    mode: ResponseMode,
    profile: CsProfile,
    /// Node currently owned (spare before enqueue, request node after).
    node: u64,
    /// The node we just pushed as the new tail dummy.
    enqueued: u64,
    round: u64,
    served_total: u64,
    for_others: u64,
    walk_at: u64,
    walk_next: u64,
    walk_round: u64,
    bound_served: u32,
    cs_step: u32,
    state: u8,
}

impl SimThread for CcClient {
    #[allow(clippy::too_many_lines)]
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Reset the spare node before exposing it as the new tail.
                0 => {
                    self.round += 1;
                    self.state = 1;
                    return Op::store(node_status(self.node), CC_WAIT);
                }
                1 => {
                    self.state = 2;
                    return Op::store(node_next(self.node), 0);
                }
                // Swap it in; the old tail becomes our request node.
                2 => {
                    self.state = 3;
                    return Op::Rmw {
                        addr: CC_TAIL,
                        kind: armbar_sim::RmwKind::Swap,
                        operand: self.node,
                        acquire: true,
                        release: true,
                    };
                }
                3 => {
                    self.enqueued = self.node;
                    self.node = ctx.last_value();
                    self.state = 4;
                    return Op::store(node_req(self.node), self.round);
                }
                // Linking publishes the request to the combiner.
                4 => {
                    self.state = 5;
                    return Op::store_release(node_next(self.node), self.enqueued);
                }
                // Spin on our node's status word only.
                5 => {
                    self.state = 6;
                    return Op::load_use(node_status(self.node));
                }
                6 => {
                    let s = ctx.last_value();
                    if s == CC_COMBINER {
                        self.walk_at = self.node;
                        self.bound_served = 0;
                        self.state = 10;
                        continue;
                    }
                    match self.mode {
                        ResponseMode::Flag => {
                            if s == 0 {
                                // Served: read ret behind a dependency.
                                self.state = 30;
                                return Op::Load {
                                    addr: node_ret(self.node),
                                    use_value: true,
                                    acquire: Acquire::No,
                                    dep_on_last_load: true,
                                };
                            }
                        }
                        ResponseMode::Pilot => {
                            // Absolute test: the packed response for round r
                            // is r*4+3, never WAIT (1) or COMBINER (2).
                            if s == self.round * 4 + 3 {
                                self.state = 30;
                                continue;
                            }
                        }
                    }
                    self.state = 5;
                    return Op::Nops(2);
                }
                // ---------------- combiner walk ----------------
                10 => {
                    self.state = 11;
                    return Op::load_use(node_next(self.walk_at));
                }
                11 => {
                    let nxt = ctx.last_value();
                    if nxt == 0 || self.bound_served >= CC_COMBINE_BOUND {
                        // Tail dummy (no request) or bound hit: hand the
                        // combiner role to this node's owner.
                        self.state = 12;
                        continue;
                    }
                    self.walk_next = nxt;
                    // Request barrier: order the link detection before the
                    // request read and the critical section.
                    self.state = 13;
                    match self.barriers.req {
                        Barrier::None | Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {}
                        Barrier::Ldar => {
                            return Op::Load {
                                addr: node_next(self.walk_at),
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        f => return Op::Fence(f),
                    }
                }
                12 => {
                    // Hand off, then our own request (served first in this
                    // walk) is complete.
                    self.state = 30;
                    return Op::store_release(node_status(self.walk_at), CC_COMBINER);
                }
                13 => {
                    self.state = 14;
                    return Op::load_use(node_req(self.walk_at));
                }
                14 => {
                    self.walk_round = ctx.last_value();
                    self.state = 15;
                }
                15 => {
                    match cs_op(
                        self.profile,
                        &mut self.cs_step,
                        ctx.last_value(),
                        self.served_total,
                    ) {
                        Some(op) => return op,
                        None => {
                            self.cs_step = 0;
                            self.served_total += 1;
                            self.bound_served += 1;
                            if self.walk_at == self.node {
                                // Our own request: the result is local, no
                                // notification needed.
                                self.state = 22;
                            } else {
                                self.for_others += 1;
                                self.state = 16;
                            }
                        }
                    }
                }
                16 => {
                    let round = self.walk_round;
                    match self.mode {
                        ResponseMode::Flag => {
                            self.state = 17;
                            return Op::store(node_ret(self.walk_at), round.wrapping_mul(3));
                        }
                        ResponseMode::Pilot => {
                            self.state = 19;
                            return Op::Nops(2);
                        }
                    }
                }
                17 => {
                    self.state = 18;
                    match self.barriers.resp {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                18 => {
                    self.state = 22;
                    return Op::store(node_status(self.walk_at), 0);
                }
                19 => {
                    self.state = 22;
                    return Op::store(node_status(self.walk_at), self.walk_round * 4 + 3);
                }
                22 => {
                    self.walk_at = self.walk_next;
                    self.state = 10;
                    continue;
                }
                // ---------------- iteration done ----------------
                31 => {
                    self.state = 0;
                    return Op::Nops(self.interval_nops);
                }
                32 => {
                    self.state = 33;
                    return Op::store(subv_addr(self.id), self.for_others);
                }
                33 => return Op::Halt,
                _ => {
                    self.done += 1;
                    if self.done >= self.iterations {
                        self.state = 32;
                        continue;
                    }
                    self.state = if self.interval_nops > 0 { 31 } else { 0 };
                    return Op::IterationMark;
                }
            }
        }
    }
}

// ------------------------------------------------------------- run harness

/// Which delegation lock to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelegationKind {
    /// Dedicated-server FFWD.
    Ffwd,
    /// Migratory combiner (CC-Synch/DSM-Synch family).
    DSynch,
    /// Remote core locking: a dedicated server whose request word doubles
    /// as the completion channel (one line round-trip per operation).
    Rcl,
    /// Flat combining: publication list + elected combiner
    /// (test-and-test-and-set lock, bounded scan passes).
    FlatCombining,
    /// Textbook CC-Synch: swap-based FIFO of recycled nodes, each waiter
    /// spinning on a single packed status word.
    CcSynch,
}

impl DelegationKind {
    /// All delegation designs, in the order the experiments sweep them.
    pub const ALL: [DelegationKind; 5] = [
        DelegationKind::Ffwd,
        DelegationKind::DSynch,
        DelegationKind::Rcl,
        DelegationKind::FlatCombining,
        DelegationKind::CcSynch,
    ];

    /// Short label used in CSV rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DelegationKind::Ffwd => "ffwd",
            DelegationKind::DSynch => "dsynch",
            DelegationKind::Rcl => "rcl",
            DelegationKind::FlatCombining => "flatcomb",
            DelegationKind::CcSynch => "ccsynch",
        }
    }

    /// Does this design dedicate a server core on top of the clients?
    #[must_use]
    pub fn has_server_core(self) -> bool {
        matches!(self, DelegationKind::Ffwd | DelegationKind::Rcl)
    }
}

/// Configuration of one delegation run.
#[derive(Debug, Clone, Copy)]
pub struct DelegationConfig {
    /// Which lock.
    pub kind: DelegationKind,
    /// Client cores (FFWD adds one server core on top).
    pub clients: usize,
    /// Barrier pair.
    pub barriers: DelegationBarriers,
    /// Flag or Pilot responses.
    pub mode: ResponseMode,
    /// Critical-section shape.
    pub profile: CsProfile,
    /// Requests per client.
    pub per_client: u64,
    /// Nops between a client's requests (Figure 7(c)'s interval).
    pub interval_nops: u32,
}

impl DelegationConfig {
    /// A reasonable default: FFWD, 8 clients, best barriers, counter CS.
    #[must_use]
    pub fn default_ffwd() -> DelegationConfig {
        DelegationConfig {
            kind: DelegationKind::Ffwd,
            clients: 8,
            barriers: DelegationBarriers {
                req: Barrier::Ldar,
                resp: Barrier::DmbSt,
            },
            mode: ResponseMode::Flag,
            profile: CsProfile::counter(),
            per_client: 40,
            interval_nops: 0,
        }
    }
}

/// Run a delegation benchmark; returns total served requests / second.
#[must_use]
pub fn run_delegation(platform: &Platform, cfg: DelegationConfig) -> LockResult {
    run_delegation_metrics(platform, cfg, None).result
}

/// [`run_delegation`] pinned to a specific scheduling [`Engine`] — the hook
/// the differential harness uses to compare the event-driven engine against
/// the lockstep oracle on identical workloads.
#[must_use]
pub fn run_delegation_with_engine(
    platform: &Platform,
    cfg: DelegationConfig,
    engine: Engine,
) -> LockResult {
    run_delegation_metrics(platform, cfg, Some(engine)).result
}

/// Run a delegation benchmark and collect the full response-time science:
/// per-operation latency histogram (merged over clients), Jain's fairness
/// index over per-client throughput, and the combiner-subversion counter.
#[must_use]
pub fn run_delegation_metrics(
    platform: &Platform,
    cfg: DelegationConfig,
    engine: Option<Engine>,
) -> DlockMetrics {
    let mut m = Machine::new(platform.clone());
    if let Some(e) = engine {
        m.set_engine(e);
    }
    let total = cfg.per_client * cfg.clients as u64;
    match cfg.kind {
        DelegationKind::Ffwd => {
            // Server on core 0; clients fill the following cores.
            m.add_thread_on(
                0,
                Box::new(FfwdServer {
                    clients: cfg.clients,
                    seen: vec![0; cfg.clients],
                    total,
                    served: 0,
                    barriers: cfg.barriers,
                    mode: cfg.mode,
                    profile: cfg.profile,
                    scan_at: 0,
                    cs_step: 0,
                    state: 0,
                }),
            );
            for c in 0..cfg.clients {
                m.add_thread_on(
                    c + 1,
                    Box::new(Client {
                        id: c,
                        iterations: cfg.per_client,
                        done: 0,
                        interval_nops: cfg.interval_nops,
                        mode: cfg.mode,
                        old_resp: 0,
                        old_flag: 0,
                        round: 0,
                        state: 0,
                    }),
                );
            }
        }
        DelegationKind::Rcl => {
            m.add_thread_on(
                0,
                Box::new(RclServer {
                    clients: cfg.clients,
                    total,
                    served: 0,
                    barriers: cfg.barriers,
                    mode: cfg.mode,
                    profile: cfg.profile,
                    scan_at: 0,
                    cs_step: 0,
                    serving_round: 0,
                    state: 0,
                }),
            );
            for c in 0..cfg.clients {
                m.add_thread_on(
                    c + 1,
                    Box::new(RclClient {
                        id: c,
                        iterations: cfg.per_client,
                        done: 0,
                        interval_nops: cfg.interval_nops,
                        mode: cfg.mode,
                        round: 0,
                        state: 0,
                    }),
                );
            }
        }
        DelegationKind::DSynch => {
            for c in 0..cfg.clients {
                m.add_thread_on(
                    c,
                    Box::new(CombinerClient {
                        id: c,
                        clients: cfg.clients,
                        iterations: cfg.per_client,
                        done: 0,
                        interval_nops: cfg.interval_nops,
                        barriers: cfg.barriers,
                        mode: cfg.mode,
                        profile: cfg.profile,
                        old_resp: 0,
                        old_flag: 0,
                        round: 0,
                        served_total: 0,
                        for_others: 0,
                        scan_at: 0,
                        scanned: 0,
                        cs_step: 0,
                        serving_round: 0,
                        poll_misses: 0,
                        state: 0,
                    }),
                );
            }
        }
        DelegationKind::FlatCombining => {
            for c in 0..cfg.clients {
                m.add_thread_on(
                    c,
                    Box::new(FcClient {
                        id: c,
                        clients: cfg.clients,
                        iterations: cfg.per_client,
                        done: 0,
                        interval_nops: cfg.interval_nops,
                        barriers: cfg.barriers,
                        mode: cfg.mode,
                        profile: cfg.profile,
                        old_resp: 0,
                        old_flag: 0,
                        round: 0,
                        served_total: 0,
                        for_others: 0,
                        scan_at: 0,
                        pass: 0,
                        pass_served: 0,
                        own_served: false,
                        cs_step: 0,
                        serving_round: 0,
                        state: 0,
                    }),
                );
            }
        }
        DelegationKind::CcSynch => {
            // Node ids 1..=clients are the clients' initial spares; node
            // clients+1 is the initial tail dummy holding the combiner role.
            let dummy = cfg.clients as u64 + 1;
            m.preset_memory(CC_TAIL, dummy);
            m.preset_memory(node_status(dummy), CC_COMBINER);
            for c in 0..cfg.clients {
                m.add_thread_on(
                    c,
                    Box::new(CcClient {
                        id: c,
                        iterations: cfg.per_client,
                        done: 0,
                        interval_nops: cfg.interval_nops,
                        barriers: cfg.barriers,
                        mode: cfg.mode,
                        profile: cfg.profile,
                        node: c as u64 + 1,
                        enqueued: 0,
                        round: 0,
                        served_total: 0,
                        for_others: 0,
                        walk_at: 0,
                        walk_next: 0,
                        walk_round: 0,
                        bound_served: 0,
                        cs_step: 0,
                        state: 0,
                    }),
                );
            }
        }
    }
    let max_cycles = total * 400_000 + 2_000_000;
    let stats = m.run(max_cycles);
    assert!(stats.halted, "delegation benchmark must finish");
    // Sum the stall decomposition over every core that participated:
    // dedicated-server layouts use core 0 for the server plus one core per
    // client, combiner layouts place the clients on cores 0..clients.
    let active_cores = if cfg.kind.has_server_core() {
        cfg.clients + 1
    } else {
        cfg.clients
    };
    let client_cores: Vec<usize> = if cfg.kind.has_server_core() {
        (1..=cfg.clients).collect()
    } else {
        (0..cfg.clients).collect()
    };
    let mut stall = armbar_sim::StallBreakdown::default();
    let mut latency = LatencyHistogram::default();
    let mut throughputs = Vec::with_capacity(client_cores.len());
    for c in 0..active_cores {
        stall.merge(&m.core_stats(c).stall);
    }
    for &c in &client_cores {
        let cs = m.core_stats(c);
        latency.merge(&cs.latency);
        let halted_at = cs
            .halted_at
            .expect("halted run must stamp every client core");
        #[allow(clippy::cast_precision_loss)]
        throughputs.push(cs.iterations as f64 / halted_at.max(1) as f64);
    }
    let subverted = (0..active_cores).map(|c| m.read_memory(subv_addr(c))).sum();
    let result = LockResult {
        acquisitions: total,
        cycles: stats.cycles,
        locks_per_sec: platform.iterations_per_second(total, stats.cycles),
        stall,
    };
    DlockMetrics {
        result,
        latency,
        fairness: jain_index(&throughputs),
        subverted,
        total_ops: total,
    }
}

/// Figure 7(c): throughput of the five lock variants at one contention
/// interval (`10^n × 128` nops).
#[must_use]
pub fn fig7c_point(
    platform: &Platform,
    clients: usize,
    interval_nops: u32,
    per: u64,
) -> [(String, f64); 5] {
    let best = DelegationBarriers {
        req: Barrier::Ldar,
        resp: Barrier::DmbSt,
    };
    let mk = |kind, mode| DelegationConfig {
        kind,
        clients,
        barriers: best,
        mode,
        profile: CsProfile::counter(),
        per_client: per,
        interval_nops,
    };
    let ticket = run_ticket(
        platform,
        TicketConfig {
            threads: clients,
            global_lines: 1,
            cs_nops: 4,
            post_nops: interval_nops,
            release_barrier: Barrier::DmbSt,
            per_thread: per,
        },
    );
    [
        ("Ticket".into(), ticket.locks_per_sec),
        (
            "DSynch".into(),
            run_delegation(platform, mk(DelegationKind::DSynch, ResponseMode::Flag)).locks_per_sec,
        ),
        (
            "DSynch-P".into(),
            run_delegation(platform, mk(DelegationKind::DSynch, ResponseMode::Pilot)).locks_per_sec,
        ),
        (
            "FFWD".into(),
            run_delegation(platform, mk(DelegationKind::Ffwd, ResponseMode::Flag)).locks_per_sec,
        ),
        (
            "FFWD-P".into(),
            run_delegation(platform, mk(DelegationKind::Ffwd, ResponseMode::Pilot)).locks_per_sec,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kunpeng() -> Platform {
        Platform::kunpeng916()
    }

    #[test]
    fn ffwd_serves_every_request() {
        let r = run_delegation(&kunpeng(), DelegationConfig::default_ffwd());
        assert_eq!(r.acquisitions, 8 * 40);
        assert!(r.locks_per_sec > 0.0);
    }

    #[test]
    fn ffwd_pilot_serves_every_request() {
        let cfg = DelegationConfig {
            mode: ResponseMode::Pilot,
            ..DelegationConfig::default_ffwd()
        };
        let r = run_delegation(&kunpeng(), cfg);
        assert_eq!(r.acquisitions, 8 * 40);
    }

    #[test]
    fn dsynch_serves_every_request() {
        for mode in [ResponseMode::Flag, ResponseMode::Pilot] {
            let cfg = DelegationConfig {
                kind: DelegationKind::DSynch,
                clients: 6,
                per_client: 30,
                mode,
                ..DelegationConfig::default_ffwd()
            };
            let r = run_delegation(&kunpeng(), cfg);
            assert_eq!(r.acquisitions, 180, "{mode:?}");
        }
    }

    #[test]
    fn fig7b_bus_free_request_barriers_beat_dmb_full() {
        let run = |barriers| {
            run_delegation(
                &kunpeng(),
                DelegationConfig {
                    barriers,
                    clients: 8,
                    per_client: 40,
                    ..DelegationConfig::default_ffwd()
                },
            )
            .locks_per_sec
        };
        let full = run(DelegationBarriers {
            req: Barrier::DmbFull,
            resp: Barrier::DmbSt,
        });
        let ldar = run(DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::DmbSt,
        });
        let addr = run(DelegationBarriers {
            req: Barrier::AddrDep,
            resp: Barrier::DmbSt,
        });
        assert!(
            ldar > full,
            "LDAR {ldar} over DMB full {full} (Observation 6)"
        );
        assert!(addr >= ldar * 0.95, "deps at least as good as LDAR");
    }

    #[test]
    fn fig7b_removing_the_response_barrier_helps() {
        let run = |barriers| {
            run_delegation(
                &kunpeng(),
                DelegationConfig {
                    barriers,
                    clients: 8,
                    per_client: 40,
                    profile: CsProfile::queue_or_stack(),
                    ..DelegationConfig::default_ffwd()
                },
            )
            .locks_per_sec
        };
        let with = run(DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::DmbSt,
        });
        let without = run(DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::None,
        });
        assert!(
            without > with * 1.05,
            "no-resp {without} vs {with} (the paper's ~22%)"
        );
    }

    #[test]
    fn fig7c_pilot_helps_both_delegation_locks_at_high_contention() {
        let p = kunpeng();
        let point = fig7c_point(&p, 8, 0, 30);
        let get = |name: &str| {
            point
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .expect("variant present")
        };
        assert!(get("DSynch-P") > get("DSynch"), "{point:?}");
        assert!(get("FFWD-P") > get("FFWD"), "{point:?}");
    }

    #[test]
    fn fig7c_pilot_gain_fades_at_low_contention() {
        let p = kunpeng();
        let gain_at = |interval| {
            let point = fig7c_point(&p, 6, interval, 20);
            let get = |name: &str| {
                point
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .expect("present")
            };
            get("DSynch-P") / get("DSynch")
        };
        let high = gain_at(0);
        let low = gain_at(12_800);
        assert!(high > low, "gain at high contention {high} > at low {low}");
        assert!(
            low > 0.9,
            "Pilot never degrades much below baseline, got {low}"
        );
    }

    #[test]
    fn determinism() {
        let cfg = DelegationConfig {
            kind: DelegationKind::DSynch,
            clients: 4,
            per_client: 20,
            ..DelegationConfig::default_ffwd()
        };
        let a = run_delegation(&kunpeng(), cfg);
        let b = run_delegation(&kunpeng(), cfg);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn rcl_serves_every_request() {
        for mode in [ResponseMode::Flag, ResponseMode::Pilot] {
            let cfg = DelegationConfig {
                kind: DelegationKind::Rcl,
                clients: 6,
                per_client: 30,
                mode,
                ..DelegationConfig::default_ffwd()
            };
            let r = run_delegation(&kunpeng(), cfg);
            assert_eq!(r.acquisitions, 180, "{mode:?}");
            assert!(r.locks_per_sec > 0.0);
        }
    }

    #[test]
    fn flat_combining_serves_every_request() {
        for mode in [ResponseMode::Flag, ResponseMode::Pilot] {
            let cfg = DelegationConfig {
                kind: DelegationKind::FlatCombining,
                clients: 6,
                per_client: 30,
                mode,
                ..DelegationConfig::default_ffwd()
            };
            let r = run_delegation(&kunpeng(), cfg);
            assert_eq!(r.acquisitions, 180, "{mode:?}");
        }
    }

    #[test]
    fn ccsynch_serves_every_request() {
        for mode in [ResponseMode::Flag, ResponseMode::Pilot] {
            let cfg = DelegationConfig {
                kind: DelegationKind::CcSynch,
                clients: 6,
                per_client: 30,
                mode,
                ..DelegationConfig::default_ffwd()
            };
            let r = run_delegation(&kunpeng(), cfg);
            assert_eq!(r.acquisitions, 180, "{mode:?}");
        }
    }

    #[test]
    fn dedicated_servers_subvert_everything() {
        // FFWD and RCL run every critical section on the server core.
        for kind in [DelegationKind::Ffwd, DelegationKind::Rcl] {
            let cfg = DelegationConfig {
                kind,
                clients: 4,
                per_client: 20,
                ..DelegationConfig::default_ffwd()
            };
            let m = run_delegation_metrics(&kunpeng(), cfg, None);
            assert_eq!(m.subverted, m.total_ops, "{kind:?}");
            assert!((m.subverted_share() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn combiners_subvert_some_but_not_all() {
        // A migratory combiner serves its own request too, so subversion
        // sits strictly between 0 and the total.
        for kind in [
            DelegationKind::DSynch,
            DelegationKind::FlatCombining,
            DelegationKind::CcSynch,
        ] {
            let cfg = DelegationConfig {
                kind,
                clients: 6,
                per_client: 30,
                ..DelegationConfig::default_ffwd()
            };
            let m = run_delegation_metrics(&kunpeng(), cfg, None);
            assert!(m.subverted > 0, "{kind:?}: combining must serve others");
            assert!(
                m.subverted < m.total_ops,
                "{kind:?}: every client serves itself at least once"
            );
        }
    }

    #[test]
    fn metrics_are_coherent_for_every_kind() {
        for kind in DelegationKind::ALL {
            let cfg = DelegationConfig {
                kind,
                clients: 4,
                per_client: 20,
                ..DelegationConfig::default_ffwd()
            };
            let m = run_delegation_metrics(&kunpeng(), cfg, None);
            // One latency sample per IterationMark: each client marks all
            // but its final completion (the final one halts instead).
            assert_eq!(m.latency.total(), 4 * (20 - 1), "{kind:?}");
            let (p50, p99, p999, max) = m.latency.summary();
            assert!(p50 <= p99 && p99 <= p999 && p999 <= max, "{kind:?}");
            assert!(max > 0, "{kind:?}: operations take time");
            assert!(
                m.fairness > 0.0 && m.fairness <= 1.0,
                "{kind:?}: Jain in (0,1], got {}",
                m.fairness
            );
        }
    }

    #[test]
    fn engines_agree_on_every_kind() {
        for kind in DelegationKind::ALL {
            let cfg = DelegationConfig {
                kind,
                clients: 3,
                per_client: 15,
                ..DelegationConfig::default_ffwd()
            };
            let a = run_delegation_metrics(&kunpeng(), cfg, Some(Engine::EventDriven));
            let b = run_delegation_metrics(&kunpeng(), cfg, Some(Engine::LockstepOracle));
            assert_eq!(a.result.cycles, b.result.cycles, "{kind:?}");
            assert_eq!(a.latency, b.latency, "{kind:?}");
            assert_eq!(a.subverted, b.subverted, "{kind:?}");
        }
    }
}
