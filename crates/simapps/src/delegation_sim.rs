//! Delegation locks on the simulator (Figures 7(b), 7(c), 8(a–c)).
//!
//! Two server flavours over the same request/response protocol:
//!
//! * **FFWD** — a dedicated server core sweeps per-client request lines
//!   (Algorithm 5), executing critical sections and publishing responses.
//!   Responses of one sweep share the response barrier — FFWD's batching.
//! * **DSynch** — a migratory combiner of the CC-Synch/DSM-Synch family:
//!   a client that finds the baton free serves every pending request
//!   (including its own), then releases the baton. No core is dedicated.
//!
//! Both publish responses either the classic way — store `ret`, response
//! barrier (strictly after the critical section's RMRs), flip the response
//! flag — or via **Pilot** (Algorithm 6): `ret ^ hash` *is* the
//! notification, with a per-client fallback flag.
//!
//! Critical sections are parameterized by a [`CsProfile`] so the
//! data-structure benchmarks of Figure 8 (queue/stack/list/hash table) map
//! onto the same machinery: how many shared lines the CS touches, how long
//! the dependent pointer-chase is, and how much ALU work it does.

use armbar_barriers::{Acquire, Barrier};
use armbar_sim::{Machine, Op, Platform, SimThread, ThreadCtx};

use crate::ticket_sim::{run_ticket, LockResult, TicketConfig};

/// Shared layout: per-client slots are fully padded; request and response
/// live on different lines.
const REQ_BASE: u64 = 0x2_0000;
const RESP_BASE: u64 = 0x4_0000;
const RESP_FLAG_BASE: u64 = 0x6_0000;
/// The DSynch baton (combiner role).
const BATON: u64 = 0x8_0000;
/// Shared data-structure lines the critical sections touch.
const DATA_BASE: u64 = 0xA_0000;
/// Per-client served-round markers (shared between migrating combiners).
const SERVED_ROUND_BASE: u64 = 0xE_0000;
/// Total served-request counter (server-private line, used for results).
const SERVED: u64 = 0xC_0000;

fn req_addr(client: usize) -> u64 {
    REQ_BASE + client as u64 * 128
}

fn resp_addr(client: usize) -> u64 {
    RESP_BASE + client as u64 * 128
}

fn resp_flag_addr(client: usize) -> u64 {
    RESP_FLAG_BASE + client as u64 * 128
}

fn served_round_addr(client: usize) -> u64 {
    SERVED_ROUND_BASE + client as u64 * 128
}

/// How the server notifies a client (Algorithm 5 vs Algorithm 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RespMode {
    /// Store ret; response barrier; flip the flag.
    Flag,
    /// Pilot: the (shuffled) ret store is the notification.
    Pilot,
}

/// Shape of the delegated critical section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CsProfile {
    /// Independent shared lines read+written (e.g. queue head + tail).
    pub lines: u32,
    /// Length of a *dependent* load chain (sorted-list walk).
    pub chase: u32,
    /// ALU work.
    pub nops: u32,
}

impl CsProfile {
    /// A bump-a-counter critical section (Figure 7(b)/(c)).
    #[must_use]
    pub fn counter() -> CsProfile {
        CsProfile {
            lines: 1,
            chase: 0,
            nops: 4,
        }
    }

    /// Queue/stack insert+remove pair: head/tail line plus an element line.
    #[must_use]
    pub fn queue_or_stack() -> CsProfile {
        CsProfile {
            lines: 2,
            chase: 0,
            nops: 8,
        }
    }

    /// Sorted-list operation over `preload` members (walks half on
    /// average).
    #[must_use]
    pub fn sorted_list(preload: u32) -> CsProfile {
        CsProfile {
            lines: 1,
            chase: preload / 2,
            nops: 8,
        }
    }
}

/// Barrier pair of Algorithm 5 (`X-Y` in Figure 7(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelegationBarriers {
    /// Line 4: after detecting the request.
    pub req: Barrier,
    /// Line 7: after the critical section, before the response flag.
    pub resp: Barrier,
}

/// The Figure 7(b) combinations, in the legend's order.
pub const FIG7B_COMBOS: [(&str, DelegationBarriers); 7] = [
    (
        "DMB full-DMB st",
        DelegationBarriers {
            req: Barrier::DmbFull,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "DMB ld-DMB st",
        DelegationBarriers {
            req: Barrier::DmbLd,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "LDAR-DMB st",
        DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "CTRL+ISB-DMB st",
        DelegationBarriers {
            req: Barrier::CtrlIsb,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "ADDR-DMB st",
        DelegationBarriers {
            req: Barrier::AddrDep,
            resp: Barrier::DmbSt,
        },
    ),
    (
        "LDAR-No Barrier",
        DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::None,
        },
    ),
    (
        "Ideal",
        DelegationBarriers {
            req: Barrier::None,
            resp: Barrier::None,
        },
    ),
];

/// Ops issued to execute one critical section, shared by both servers.
/// Returns the op for `cs_step`, or `None` when the CS is finished.
///
/// The dependent chase reads `DATA_BASE + k*64` with an address dependency
/// on the previous load; independent lines are read+written.
fn cs_op(profile: CsProfile, cs_step: &mut u32, last_value: u64, served: u64) -> Option<Op> {
    let lines_phase = profile.lines * 2; // load+store per line
    let step = *cs_step;
    *cs_step += 1;
    if step < lines_phase {
        let line = u64::from(step / 2);
        let addr = DATA_BASE + line * 64;
        if step.is_multiple_of(2) {
            return Some(Op::load_use(addr));
        }
        return Some(Op::store_dep(addr, last_value.wrapping_add(1)));
    }
    let chase_step = step - lines_phase;
    if chase_step < profile.chase {
        // Pointer chase: each node is a distinct line; the address depends
        // on the previous load.
        let addr = DATA_BASE + 0x1000 + u64::from(chase_step) * 64 + (served % 4) * 0x4000;
        return Some(Op::load_dep(addr, true));
    }
    if chase_step == profile.chase && profile.nops > 0 {
        return Some(Op::Nops(profile.nops));
    }
    None
}

// ----------------------------------------------------------------- clients

/// A delegation client: posts a request, awaits the response, repeats.
struct Client {
    id: usize,
    iterations: u64,
    done: u64,
    interval_nops: u32,
    mode: RespMode,
    old_resp: u64,
    old_flag: u64,
    round: u64,
    state: u8,
}

impl SimThread for Client {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Post the request: one store carrying round+payload.
                0 => {
                    self.round += 1;
                    self.state = 1;
                    return Op::store(req_addr(self.id), self.round);
                }
                // Await the response.
                1 => {
                    self.state = 2;
                    return Op::load_use(resp_addr(self.id));
                }
                2 => {
                    let v = ctx.last_value();
                    match self.mode {
                        RespMode::Flag => {
                            // The flag word signals; re-read it.
                            self.state = 3;
                            return Op::load_use(resp_flag_addr(self.id));
                        }
                        RespMode::Pilot => {
                            if v != self.old_resp {
                                self.old_resp = v;
                                self.state = 5;
                                continue;
                            }
                            self.state = 3;
                            return Op::load_use(resp_flag_addr(self.id));
                        }
                    }
                }
                3 => {
                    let f = ctx.last_value();
                    match self.mode {
                        RespMode::Flag => {
                            if f == self.round {
                                self.state = 4;
                                continue;
                            }
                        }
                        RespMode::Pilot => {
                            if f != self.old_flag {
                                self.old_flag = f;
                                self.state = 5;
                                continue;
                            }
                        }
                    }
                    self.state = 1;
                    return Op::Nops(1);
                }
                // Flag mode: order the flag before reading ret (cheap side).
                4 => {
                    self.state = 6;
                    return Op::Load {
                        addr: resp_addr(self.id),
                        use_value: true,
                        acquire: Acquire::No,
                        dep_on_last_load: true,
                    };
                }
                5 | 6 => {
                    self.state = 7;
                }
                8 => {
                    self.state = 0;
                    return Op::Nops(self.interval_nops);
                }
                _ => {
                    self.done += 1;
                    if self.done >= self.iterations {
                        return Op::Halt;
                    }
                    self.state = if self.interval_nops > 0 { 8 } else { 0 };
                    return Op::IterationMark;
                }
            }
        }
    }
}

// ------------------------------------------------------------ FFWD server

/// The dedicated FFWD server: sweeps request lines round-robin.
struct FfwdServer {
    clients: usize,
    seen: Vec<u64>,
    total: u64,
    served: u64,
    barriers: DelegationBarriers,
    mode: RespMode,
    profile: CsProfile,
    scan_at: usize,
    cs_step: u32,
    state: u8,
}

impl SimThread for FfwdServer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Poll the next client's request line.
                0 => {
                    if self.served >= self.total {
                        return Op::Halt;
                    }
                    self.state = 1;
                    return Op::load_use(req_addr(self.scan_at));
                }
                1 => {
                    let round = ctx.last_value();
                    if round == self.seen[self.scan_at] {
                        self.scan_at = (self.scan_at + 1) % self.clients;
                        self.state = 0;
                        continue;
                    }
                    self.seen[self.scan_at] = round;
                    // Line 4: the request barrier.
                    self.state = 2;
                    match self.barriers.req {
                        Barrier::None => {}
                        Barrier::Ldar => {
                            return Op::Load {
                                addr: req_addr(self.scan_at),
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {
                            // Dependencies attach to the CS's first access;
                            // nothing standalone to issue.
                        }
                        f => return Op::Fence(f),
                    }
                }
                // Line 6: the critical section.
                2 => {
                    match cs_op(
                        self.profile,
                        &mut self.cs_step,
                        ctx.last_value(),
                        self.served,
                    ) {
                        Some(op) => return op,
                        None => {
                            self.cs_step = 0;
                            self.state = 3;
                        }
                    }
                }
                // Lines 7-8 / Algorithm 6: publish the response.
                3 => {
                    let client = self.scan_at;
                    let round = self.seen[client];
                    self.served += 1;
                    match self.mode {
                        RespMode::Flag => {
                            self.state = 4;
                            return Op::store(resp_addr(client), round.wrapping_mul(3));
                        }
                        RespMode::Pilot => {
                            // The shuffled ret is the notification; hashing
                            // is two local ALU ops.
                            self.state = 6;
                            return Op::Nops(2);
                        }
                    }
                }
                4 => {
                    self.state = 5;
                    match self.barriers.resp {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                5 => {
                    let client = self.scan_at;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.state = 7;
                    return Op::store(resp_flag_addr(client), self.seen[client]);
                }
                6 => {
                    let client = self.scan_at;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.state = 7;
                    // Shuffled value differs from the previous round's by
                    // construction (round counter folded in).
                    return Op::store(resp_addr(client), self.seen[client].wrapping_mul(7) | 1);
                }
                _ => {
                    self.state = 0;
                    return Op::store(SERVED, self.served);
                }
            }
        }
    }
}

// -------------------------------------------------------- DSynch combiner

/// A DSynch-family client: posts its request, then either waits for
/// service or grabs the baton and combines.
struct CombinerClient {
    id: usize,
    clients: usize,
    iterations: u64,
    done: u64,
    interval_nops: u32,
    barriers: DelegationBarriers,
    mode: RespMode,
    profile: CsProfile,
    old_resp: u64,
    old_flag: u64,
    round: u64,
    served_total: u64,
    scan_at: usize,
    scanned: usize,
    cs_step: u32,
    serving_round: u64,
    poll_misses: u64,
    state: u8,
}

impl SimThread for CombinerClient {
    #[allow(clippy::too_many_lines)]
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Post own request.
                0 => {
                    self.round += 1;
                    self.state = 1;
                    return Op::store(req_addr(self.id), self.round);
                }
                // Try to become the combiner (baton CAS), else wait.
                1 => {
                    self.state = 2;
                    return Op::Rmw {
                        addr: BATON,
                        kind: armbar_sim::RmwKind::Cas { expected: 0 },
                        operand: 1,
                        acquire: true,
                        release: false,
                    };
                }
                2 => {
                    if ctx.last_value() == 0 {
                        // We hold the baton: combine.
                        self.scan_at = 0;
                        self.scanned = 0;
                        self.state = 10;
                    } else {
                        // Someone is combining; wait for our response.
                        self.state = 3;
                    }
                }
                // ---------------- waiting side ----------------
                // Spinning is local: the polled lines are ours, so until a
                // combiner writes them the loads hit in our cache.
                3 => match self.mode {
                    RespMode::Flag => {
                        self.state = 4;
                        return Op::load_use(resp_flag_addr(self.id));
                    }
                    RespMode::Pilot => {
                        self.state = 6;
                        return Op::load_use(resp_addr(self.id));
                    }
                },
                // Flag mode: the flag carries the served round (absolute
                // test — immune to stale delta state).
                4 => {
                    if ctx.last_value() == self.round {
                        // Served: read the return value behind a dependency.
                        self.state = 30;
                        return Op::Load {
                            addr: resp_addr(self.id),
                            use_value: true,
                            acquire: Acquire::No,
                            dep_on_last_load: true,
                        };
                    }
                    self.state = 5;
                    continue;
                }
                // Not served yet: spin locally, retrying the baton only
                // occasionally so a released lock cannot strand us.
                5 => {
                    self.poll_misses += 1;
                    self.state = if self.poll_misses.is_multiple_of(8) {
                        1
                    } else {
                        3
                    };
                    return Op::Nops(2);
                }
                // Pilot mode: Algorithm 4 on the response word.
                6 => {
                    let v = ctx.last_value();
                    if v != self.old_resp {
                        self.old_resp = v;
                        self.state = 30;
                        continue;
                    }
                    self.state = 7;
                    return Op::load_use(resp_flag_addr(self.id));
                }
                7 => {
                    if ctx.last_value() != self.old_flag {
                        self.old_flag = ctx.last_value();
                        self.state = 30;
                        continue;
                    }
                    self.state = 5;
                    continue;
                }
                // ---------------- combiner side ----------------
                // Scan all clients once, serving pending requests.
                10 => {
                    if self.scanned >= self.clients {
                        // Sweep done: release the baton.
                        self.state = 20;
                        continue;
                    }
                    self.state = 11;
                    return Op::load_use(req_addr(self.scan_at));
                }
                11 => {
                    self.serving_round = ctx.last_value();
                    // The served-round marker is shared state: combiners
                    // migrate, so progress must live in memory, not in a
                    // core-local array.
                    self.state = 25;
                    return Op::load_use(served_round_addr(self.scan_at));
                }
                25 => {
                    if self.serving_round == ctx.last_value() {
                        self.scan_at = (self.scan_at + 1) % self.clients;
                        self.scanned += 1;
                        self.state = 10;
                        continue;
                    }
                    self.state = 26;
                    return Op::store(served_round_addr(self.scan_at), self.serving_round);
                }
                26 => {
                    self.state = 12;
                    match self.barriers.req {
                        Barrier::None | Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {}
                        Barrier::Ldar => {
                            return Op::Load {
                                addr: req_addr(self.scan_at),
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        f => return Op::Fence(f),
                    }
                }
                12 => {
                    match cs_op(
                        self.profile,
                        &mut self.cs_step,
                        ctx.last_value(),
                        self.served_total,
                    ) {
                        Some(op) => return op,
                        None => {
                            self.cs_step = 0;
                            self.served_total += 1;
                            self.state = 13;
                        }
                    }
                }
                // Publish the response (to ourselves too: uniform path).
                13 => {
                    let client = self.scan_at;
                    let round = self.serving_round;
                    match self.mode {
                        RespMode::Flag => {
                            self.state = 14;
                            return Op::store(resp_addr(client), round.wrapping_mul(3));
                        }
                        RespMode::Pilot => {
                            self.state = 16;
                            return Op::Nops(2);
                        }
                    }
                }
                14 => {
                    self.state = 15;
                    match self.barriers.resp {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                15 => {
                    let client = self.scan_at;
                    let round = self.serving_round;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.scanned += 1;
                    self.state = 10;
                    return Op::store(resp_flag_addr(client), round);
                }
                16 => {
                    let client = self.scan_at;
                    let round = self.serving_round;
                    self.scan_at = (self.scan_at + 1) % self.clients;
                    self.scanned += 1;
                    self.state = 10;
                    return Op::store(resp_addr(client), round.wrapping_mul(7) | 1);
                }
                // Release the baton (store-release keeps the protocol
                // sound; its cost is shared across the whole sweep).
                20 => {
                    self.state = 21;
                    return Op::store_release(BATON, 0);
                }
                21 => {
                    // Our own request was served during the sweep (we always
                    // serve ourselves); synchronize decode state.
                    self.old_resp = match self.mode {
                        RespMode::Flag => self.old_resp,
                        RespMode::Pilot => self.round.wrapping_mul(7) | 1,
                    };
                    self.old_flag = match self.mode {
                        RespMode::Flag => self.round,
                        RespMode::Pilot => self.old_flag,
                    };
                    self.state = 30;
                }
                // ---------------- iteration done ----------------
                31 => {
                    self.state = 0;
                    return Op::Nops(self.interval_nops);
                }
                _ => {
                    self.done += 1;
                    if self.done >= self.iterations {
                        return Op::Halt;
                    }
                    self.state = if self.interval_nops > 0 { 31 } else { 0 };
                    return Op::IterationMark;
                }
            }
        }
    }
}

// ------------------------------------------------------------- run harness

/// Which delegation lock to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelegationKind {
    /// Dedicated-server FFWD.
    Ffwd,
    /// Migratory combiner (CC-Synch/DSM-Synch family).
    DSynch,
}

/// Configuration of one delegation run.
#[derive(Debug, Clone, Copy)]
pub struct DelegationConfig {
    /// Which lock.
    pub kind: DelegationKind,
    /// Client cores (FFWD adds one server core on top).
    pub clients: usize,
    /// Barrier pair.
    pub barriers: DelegationBarriers,
    /// Flag or Pilot responses.
    pub mode: RespMode,
    /// Critical-section shape.
    pub profile: CsProfile,
    /// Requests per client.
    pub per_client: u64,
    /// Nops between a client's requests (Figure 7(c)'s interval).
    pub interval_nops: u32,
}

impl DelegationConfig {
    /// A reasonable default: FFWD, 8 clients, best barriers, counter CS.
    #[must_use]
    pub fn default_ffwd() -> DelegationConfig {
        DelegationConfig {
            kind: DelegationKind::Ffwd,
            clients: 8,
            barriers: DelegationBarriers {
                req: Barrier::Ldar,
                resp: Barrier::DmbSt,
            },
            mode: RespMode::Flag,
            profile: CsProfile::counter(),
            per_client: 40,
            interval_nops: 0,
        }
    }
}

/// Run a delegation benchmark; returns total served requests / second.
#[must_use]
pub fn run_delegation(platform: &Platform, cfg: DelegationConfig) -> LockResult {
    let mut m = Machine::new(platform.clone());
    let total = cfg.per_client * cfg.clients as u64;
    match cfg.kind {
        DelegationKind::Ffwd => {
            // Server on core 0; clients fill the following cores.
            m.add_thread_on(
                0,
                Box::new(FfwdServer {
                    clients: cfg.clients,
                    seen: vec![0; cfg.clients],
                    total,
                    served: 0,
                    barriers: cfg.barriers,
                    mode: cfg.mode,
                    profile: cfg.profile,
                    scan_at: 0,
                    cs_step: 0,
                    state: 0,
                }),
            );
            for c in 0..cfg.clients {
                m.add_thread_on(
                    c + 1,
                    Box::new(Client {
                        id: c,
                        iterations: cfg.per_client,
                        done: 0,
                        interval_nops: cfg.interval_nops,
                        mode: cfg.mode,
                        old_resp: 0,
                        old_flag: 0,
                        round: 0,
                        state: 0,
                    }),
                );
            }
        }
        DelegationKind::DSynch => {
            for c in 0..cfg.clients {
                m.add_thread_on(
                    c,
                    Box::new(CombinerClient {
                        id: c,
                        clients: cfg.clients,
                        iterations: cfg.per_client,
                        done: 0,
                        interval_nops: cfg.interval_nops,
                        barriers: cfg.barriers,
                        mode: cfg.mode,
                        profile: cfg.profile,
                        old_resp: 0,
                        old_flag: 0,
                        round: 0,
                        served_total: 0,
                        scan_at: 0,
                        scanned: 0,
                        cs_step: 0,
                        serving_round: 0,
                        poll_misses: 0,
                        state: 0,
                    }),
                );
            }
        }
    }
    let max_cycles = total * 400_000 + 2_000_000;
    let stats = m.run(max_cycles);
    assert!(stats.halted, "delegation benchmark must finish");
    // Sum the stall decomposition over every core that participated: the
    // FFWD layout uses core 0 for the server plus one core per client,
    // DSynch places the combining clients on cores 0..clients.
    let active_cores = match cfg.kind {
        DelegationKind::Ffwd => cfg.clients + 1,
        DelegationKind::DSynch => cfg.clients,
    };
    let mut stall = armbar_sim::StallBreakdown::default();
    for c in 0..active_cores {
        stall.merge(&m.core_stats(c).stall);
    }
    LockResult {
        acquisitions: total,
        cycles: stats.cycles,
        locks_per_sec: platform.iterations_per_second(total, stats.cycles),
        stall,
    }
}

/// Figure 7(c): throughput of the five lock variants at one contention
/// interval (`10^n × 128` nops).
#[must_use]
pub fn fig7c_point(
    platform: &Platform,
    clients: usize,
    interval_nops: u32,
    per: u64,
) -> [(String, f64); 5] {
    let best = DelegationBarriers {
        req: Barrier::Ldar,
        resp: Barrier::DmbSt,
    };
    let mk = |kind, mode| DelegationConfig {
        kind,
        clients,
        barriers: best,
        mode,
        profile: CsProfile::counter(),
        per_client: per,
        interval_nops,
    };
    let ticket = run_ticket(
        platform,
        TicketConfig {
            threads: clients,
            global_lines: 1,
            cs_nops: 4,
            post_nops: interval_nops,
            release_barrier: Barrier::DmbSt,
            per_thread: per,
        },
    );
    [
        ("Ticket".into(), ticket.locks_per_sec),
        (
            "DSynch".into(),
            run_delegation(platform, mk(DelegationKind::DSynch, RespMode::Flag)).locks_per_sec,
        ),
        (
            "DSynch-P".into(),
            run_delegation(platform, mk(DelegationKind::DSynch, RespMode::Pilot)).locks_per_sec,
        ),
        (
            "FFWD".into(),
            run_delegation(platform, mk(DelegationKind::Ffwd, RespMode::Flag)).locks_per_sec,
        ),
        (
            "FFWD-P".into(),
            run_delegation(platform, mk(DelegationKind::Ffwd, RespMode::Pilot)).locks_per_sec,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kunpeng() -> Platform {
        Platform::kunpeng916()
    }

    #[test]
    fn ffwd_serves_every_request() {
        let r = run_delegation(&kunpeng(), DelegationConfig::default_ffwd());
        assert_eq!(r.acquisitions, 8 * 40);
        assert!(r.locks_per_sec > 0.0);
    }

    #[test]
    fn ffwd_pilot_serves_every_request() {
        let cfg = DelegationConfig {
            mode: RespMode::Pilot,
            ..DelegationConfig::default_ffwd()
        };
        let r = run_delegation(&kunpeng(), cfg);
        assert_eq!(r.acquisitions, 8 * 40);
    }

    #[test]
    fn dsynch_serves_every_request() {
        for mode in [RespMode::Flag, RespMode::Pilot] {
            let cfg = DelegationConfig {
                kind: DelegationKind::DSynch,
                clients: 6,
                per_client: 30,
                mode,
                ..DelegationConfig::default_ffwd()
            };
            let r = run_delegation(&kunpeng(), cfg);
            assert_eq!(r.acquisitions, 180, "{mode:?}");
        }
    }

    #[test]
    fn fig7b_bus_free_request_barriers_beat_dmb_full() {
        let run = |barriers| {
            run_delegation(
                &kunpeng(),
                DelegationConfig {
                    barriers,
                    clients: 8,
                    per_client: 40,
                    ..DelegationConfig::default_ffwd()
                },
            )
            .locks_per_sec
        };
        let full = run(DelegationBarriers {
            req: Barrier::DmbFull,
            resp: Barrier::DmbSt,
        });
        let ldar = run(DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::DmbSt,
        });
        let addr = run(DelegationBarriers {
            req: Barrier::AddrDep,
            resp: Barrier::DmbSt,
        });
        assert!(
            ldar > full,
            "LDAR {ldar} over DMB full {full} (Observation 6)"
        );
        assert!(addr >= ldar * 0.95, "deps at least as good as LDAR");
    }

    #[test]
    fn fig7b_removing_the_response_barrier_helps() {
        let run = |barriers| {
            run_delegation(
                &kunpeng(),
                DelegationConfig {
                    barriers,
                    clients: 8,
                    per_client: 40,
                    profile: CsProfile::queue_or_stack(),
                    ..DelegationConfig::default_ffwd()
                },
            )
            .locks_per_sec
        };
        let with = run(DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::DmbSt,
        });
        let without = run(DelegationBarriers {
            req: Barrier::Ldar,
            resp: Barrier::None,
        });
        assert!(
            without > with * 1.05,
            "no-resp {without} vs {with} (the paper's ~22%)"
        );
    }

    #[test]
    fn fig7c_pilot_helps_both_delegation_locks_at_high_contention() {
        let p = kunpeng();
        let point = fig7c_point(&p, 8, 0, 30);
        let get = |name: &str| {
            point
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .expect("variant present")
        };
        assert!(get("DSynch-P") > get("DSynch"), "{point:?}");
        assert!(get("FFWD-P") > get("FFWD"), "{point:?}");
    }

    #[test]
    fn fig7c_pilot_gain_fades_at_low_contention() {
        let p = kunpeng();
        let gain_at = |interval| {
            let point = fig7c_point(&p, 6, interval, 20);
            let get = |name: &str| {
                point
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .expect("present")
            };
            get("DSynch-P") / get("DSynch")
        };
        let high = gain_at(0);
        let low = gain_at(12_800);
        assert!(high > low, "gain at high contention {high} > at low {low}");
        assert!(
            low > 0.9,
            "Pilot never degrades much below baseline, got {low}"
        );
    }

    #[test]
    fn determinism() {
        let cfg = DelegationConfig {
            kind: DelegationKind::DSynch,
            clients: 4,
            per_client: 20,
            ..DelegationConfig::default_ffwd()
        };
        let a = run_delegation(&kunpeng(), cfg);
        let b = run_delegation(&kunpeng(), cfg);
        assert_eq!(a.cycles, b.cycles);
    }
}
