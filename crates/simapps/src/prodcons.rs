//! Producer-consumer on the simulator — Algorithm 2 and its Pilot
//! transformation (Figures 6(a), 6(b), 6(c)).
//!
//! Two cores exchange messages through a ring of single-line slots plus a
//! pair of counters. The baseline producer is Algorithm 2 with its two
//! configurable barriers; the Pilot producer publishes each slot through
//! the piggybacked store, keeps `prodCnt` private, and drops the publish
//! barrier entirely (§4.4).
//!
//! Messages carry a sequence-derived value, and the consumer checks every
//! one — so "Ideal" (all barriers removed) is *observably incorrect* on the
//! simulator when a reordering bites, exactly as the paper warns ("leads to
//! a wrong result but can serve as a reference").

use armbar_barriers::{Acquire, Barrier};
use armbar_sim::{Engine, Machine, Op, SimThread, StallBreakdown, ThreadCtx, Trace};

use crate::bind::BindConfig;

/// Shared-memory layout (each item on its own line).
const PROD_CNT: u64 = 0x1000;
const CONS_CNT: u64 = 0x1080;
const BUF_BASE: u64 = 0x2000;
const FLAG_BASE: u64 = 0x6000;

/// Ring capacity (slots).
const BUF_SLOTS: u64 = 8;

/// Barrier pair of Algorithm 2 (`X - Y` in Figure 6(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PcBarriers {
    /// Line 3: after the availability check.
    pub avail: Barrier,
    /// Line 5: between filling the buffer and bumping `prodCnt`.
    pub publish: Barrier,
}

/// The Figure 6(a) combinations, in the legend's order.
pub const FIG6A_COMBOS: [(&str, PcBarriers); 7] = [
    (
        "DMB full - DMB full",
        PcBarriers {
            avail: Barrier::DmbFull,
            publish: Barrier::DmbFull,
        },
    ),
    (
        "DMB full - DMB st",
        PcBarriers {
            avail: Barrier::DmbFull,
            publish: Barrier::DmbSt,
        },
    ),
    (
        "DMB ld - DMB st",
        PcBarriers {
            avail: Barrier::DmbLd,
            publish: Barrier::DmbSt,
        },
    ),
    (
        "LDAR - DMB st",
        PcBarriers {
            avail: Barrier::Ldar,
            publish: Barrier::DmbSt,
        },
    ),
    (
        "DMB full - STLR",
        PcBarriers {
            avail: Barrier::DmbFull,
            publish: Barrier::Stlr,
        },
    ),
    (
        "DMB ld - No Barrier",
        PcBarriers {
            avail: Barrier::DmbLd,
            publish: Barrier::None,
        },
    ),
    (
        "Ideal",
        PcBarriers {
            avail: Barrier::None,
            publish: Barrier::None,
        },
    ),
];

fn slot_addr(i: u64) -> u64 {
    BUF_BASE + (i % BUF_SLOTS) * 64
}

fn flag_addr(i: u64) -> u64 {
    FLAG_BASE + (i % BUF_SLOTS) * 64
}

fn msg_value(seq: u64) -> u64 {
    seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// The baseline producer (Algorithm 2).
struct Producer {
    barriers: PcBarriers,
    produce_nops: u32,
    batch: u64,
    iterations: u64,
    prod_cnt: u64,
    in_batch: u64,
    state: u8,
}

impl SimThread for Producer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                // Line 1-2: availability check (whole batch must fit).
                0 => {
                    self.state = 1;
                    return Op::load_use(CONS_CNT);
                }
                1 => {
                    if self.prod_cnt + self.batch - ctx.last_value() > BUF_SLOTS {
                        self.state = 0; // spin
                        return Op::Nops(1);
                    }
                    self.state = 2;
                }
                // Line 3.
                2 => {
                    self.state = 3;
                    self.in_batch = 0;
                    match self.barriers.avail {
                        Barrier::None => {}
                        Barrier::Ldar => {
                            // Modelled as the acquire variant of the check:
                            // re-issue the load as LDAR (cheap; no bus).
                            return Op::Load {
                                addr: CONS_CNT,
                                use_value: false,
                                acquire: Acquire::Sc,
                                dep_on_last_load: false,
                            };
                        }
                        f => return Op::Fence(f),
                    }
                }
                // produceMsg(): local work.
                3 => {
                    self.state = 4;
                    if self.produce_nops > 0 {
                        return Op::Nops(self.produce_nops);
                    }
                }
                // Line 4: fill the slot (likely an RMR).
                4 => {
                    self.state = 5;
                    let seq = self.prod_cnt + self.in_batch;
                    return Op::store(slot_addr(seq), msg_value(seq));
                }
                5 => {
                    self.in_batch += 1;
                    if self.in_batch < self.batch {
                        self.state = 3; // next message of the batch
                    } else {
                        self.state = 6;
                    }
                }
                // Line 5: the post-RMR barrier (once per batch).
                6 => {
                    self.state = 7;
                    match self.barriers.publish {
                        Barrier::None | Barrier::Stlr => {}
                        f => return Op::Fence(f),
                    }
                }
                // Line 6: publish the counter. The STLR variant makes this
                // store the release: it orders the buffer fill before the
                // counter without a standalone barrier.
                7 => {
                    self.prod_cnt += self.batch;
                    self.state = 8;
                    if self.barriers.publish == Barrier::Stlr {
                        return Op::store_release(PROD_CNT, self.prod_cnt);
                    }
                    return Op::store(PROD_CNT, self.prod_cnt);
                }
                _ => {
                    self.state = 0;
                    if self.prod_cnt >= self.iterations {
                        return Op::Halt;
                    }
                    return Op::IterationMark;
                }
            }
        }
    }
}

/// The baseline consumer: spins on `prodCnt`, reads the slot behind a
/// bogus address dependency (the cheap consumer side §4.1 describes),
/// bumps `consCnt`.
struct Consumer {
    iterations: u64,
    cons_cnt: u64,
    prod_seen: u64,
    consume_nops: u32,
    check: bool,
    errors: u64,
    state: u8,
}

impl SimThread for Consumer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                0 => {
                    if self.prod_seen > self.cons_cnt {
                        self.state = 2;
                        continue;
                    }
                    self.state = 1;
                    return Op::load_use(PROD_CNT);
                }
                1 => {
                    self.prod_seen = ctx.last_value();
                    if self.prod_seen <= self.cons_cnt {
                        self.state = 0;
                        return Op::Nops(1);
                    }
                    self.state = 2;
                }
                2 => {
                    self.state = 3;
                    return Op::Load {
                        addr: slot_addr(self.cons_cnt),
                        use_value: true,
                        acquire: Acquire::No,
                        dep_on_last_load: true,
                    };
                }
                3 => {
                    if self.check && ctx.last_value() != msg_value(self.cons_cnt) {
                        self.errors += 1;
                    }
                    self.cons_cnt += 1;
                    self.state = 4;
                    return Op::store(CONS_CNT, self.cons_cnt);
                }
                4 => {
                    self.state = 5;
                    return Op::store(CONS_ERRORS, self.errors);
                }
                _ => {
                    self.state = 0;
                    if self.cons_cnt >= self.iterations {
                        return Op::Halt;
                    }
                    if self.consume_nops > 0 {
                        return Op::Nops(self.consume_nops);
                    }
                }
            }
        }
    }
}

/// Running count of payload mismatches the consumer observed.
const CONS_ERRORS: u64 = 0x1100;

/// The Pilot producer (§4.4): slot published via Algorithm 3; `prodCnt`
/// stays core-private.
struct PilotProducer {
    avail: Barrier,
    produce_nops: u32,
    batch: u64,
    iterations: u64,
    prod_cnt: u64,
    in_batch: u64,
    old_data: [u64; BUF_SLOTS as usize],
    local_flags: [u64; BUF_SLOTS as usize],
    state: u8,
}

impl SimThread for PilotProducer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            match self.state {
                0 => {
                    self.state = 1;
                    return Op::load_use(CONS_CNT);
                }
                1 => {
                    if self.prod_cnt + self.batch - ctx.last_value() > BUF_SLOTS {
                        self.state = 0;
                        return Op::Nops(1);
                    }
                    self.state = 2;
                    self.in_batch = 0;
                    match self.avail {
                        Barrier::None => {}
                        f => return Op::Fence(f),
                    }
                }
                2 => {
                    self.state = 3;
                    if self.produce_nops > 0 {
                        return Op::Nops(self.produce_nops);
                    }
                }
                // Algorithm 3 on the slot: the shuffle costs two local ALU
                // ops (all-local, <5% worst case per §4.5).
                3 => {
                    self.state = 4;
                    return Op::Nops(2);
                }
                4 => {
                    let seq = self.prod_cnt + self.in_batch;
                    let idx = (seq % BUF_SLOTS) as usize;
                    let new_data = msg_value(seq); // sequence-shuffled payload
                    self.state = 5;
                    if new_data == self.old_data[idx] {
                        self.local_flags[idx] ^= 1;
                        self.old_data[idx] = new_data;
                        return Op::store(flag_addr(seq), self.local_flags[idx]);
                    }
                    self.old_data[idx] = new_data;
                    return Op::store(slot_addr(seq), new_data);
                }
                5 => {
                    self.in_batch += 1;
                    if self.in_batch < self.batch {
                        self.state = 2;
                    } else {
                        self.prod_cnt += self.batch;
                        self.state = 6;
                    }
                }
                _ => {
                    self.state = 0;
                    if self.prod_cnt >= self.iterations {
                        return Op::Halt;
                    }
                    return Op::IterationMark;
                }
            }
        }
    }
}

/// The Pilot consumer (Algorithm 4 per slot).
struct PilotConsumer {
    iterations: u64,
    cons_cnt: u64,
    old_data: [u64; BUF_SLOTS as usize],
    old_flags: [u64; BUF_SLOTS as usize],
    consume_nops: u32,
    errors: u64,
    state: u8,
}

impl SimThread for PilotConsumer {
    fn next(&mut self, ctx: &mut ThreadCtx) -> Op {
        loop {
            let idx = (self.cons_cnt % BUF_SLOTS) as usize;
            match self.state {
                // Line 1: watch the data word.
                0 => {
                    self.state = 1;
                    return Op::load_use(slot_addr(self.cons_cnt));
                }
                1 => {
                    let data = ctx.last_value();
                    if data != self.old_data[idx] {
                        self.old_data[idx] = data;
                        self.state = 3;
                        continue;
                    }
                    // Line 2: the fallback flag.
                    self.state = 2;
                    return Op::load_use(flag_addr(self.cons_cnt));
                }
                2 => {
                    if ctx.last_value() != self.old_flags[idx] {
                        self.old_flags[idx] = ctx.last_value();
                        self.state = 3;
                        continue;
                    }
                    self.state = 0;
                    return Op::Nops(1);
                }
                3 => {
                    if self.old_data[idx] != msg_value(self.cons_cnt) {
                        self.errors += 1;
                    }
                    self.cons_cnt += 1;
                    self.state = 4;
                    return Op::store(CONS_CNT, self.cons_cnt);
                }
                4 => {
                    self.state = 5;
                    return Op::store(CONS_ERRORS, self.errors);
                }
                _ => {
                    self.state = 0;
                    if self.cons_cnt >= self.iterations {
                        return Op::Halt;
                    }
                    if self.consume_nops > 0 {
                        return Op::Nops(self.consume_nops);
                    }
                }
            }
        }
    }
}

/// Which channel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcVariant {
    /// Algorithm 2 with the given barrier pair.
    Baseline(PcBarriers),
    /// The Pilot ring (publish barrier gone, `prodCnt` private).
    Pilot {
        /// The remaining line-3 barrier.
        avail: Barrier,
    },
}

/// Result of one producer-consumer run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcResult {
    /// Messages delivered to the consumer.
    pub messages: u64,
    /// Producer cycles consumed.
    pub cycles: u64,
    /// Messages per second at the platform clock.
    pub msgs_per_sec: f64,
    /// Messages whose payload did not match the expected sequence value
    /// (non-zero only for incorrect variants like Ideal).
    pub errors: u64,
    /// Producer-core barrier-stall decomposition (where the producer's
    /// blocked cycles went, by cause and barrier kind).
    pub stall: StallBreakdown,
}

/// Run a producer-consumer configuration: `messages` transfers of
/// `batch`-slot batches with `produce_nops` of local work per message.
#[must_use]
pub fn run_prodcons(
    bind: BindConfig,
    variant: PcVariant,
    messages: u64,
    batch: u64,
    produce_nops: u32,
) -> PcResult {
    run_prodcons_inner(bind, variant, messages, batch, produce_nops, None, None).0
}

/// [`run_prodcons`] pinned to a specific scheduling [`Engine`] — the hook
/// the differential harness uses to compare the event-driven engine against
/// the lockstep oracle on identical workloads.
#[must_use]
pub fn run_prodcons_with_engine(
    bind: BindConfig,
    variant: PcVariant,
    messages: u64,
    batch: u64,
    produce_nops: u32,
    engine: Engine,
) -> PcResult {
    run_prodcons_inner(
        bind,
        variant,
        messages,
        batch,
        produce_nops,
        None,
        Some(engine),
    )
    .0
}

/// Like [`run_prodcons`], with machine-wide event tracing enabled (ring of
/// `trace_capacity` events). Returns the result plus the recorded trace,
/// ready for [`Trace::to_chrome_json`] export.
#[must_use]
pub fn run_prodcons_traced(
    bind: BindConfig,
    variant: PcVariant,
    messages: u64,
    batch: u64,
    produce_nops: u32,
    trace_capacity: usize,
) -> (PcResult, Trace) {
    run_prodcons_inner(
        bind,
        variant,
        messages,
        batch,
        produce_nops,
        Some(trace_capacity),
        None,
    )
}

fn run_prodcons_inner(
    bind: BindConfig,
    variant: PcVariant,
    messages: u64,
    batch: u64,
    produce_nops: u32,
    trace_capacity: Option<usize>,
    engine: Option<Engine>,
) -> (PcResult, Trace) {
    assert!(
        (1..=BUF_SLOTS / 2).contains(&batch),
        "batch must fit the ring twice over"
    );
    assert_eq!(
        messages % batch,
        0,
        "messages must be a whole number of batches"
    );
    let platform = bind.platform();
    let mut m = Machine::new(platform.clone());
    if let Some(e) = engine {
        m.set_engine(e);
    }
    if let Some(capacity) = trace_capacity {
        m.enable_trace(capacity);
    }
    let prod_core = bind.primary_core();
    let cons_core = bind.peer_core();
    match variant {
        PcVariant::Baseline(barriers) => {
            m.add_thread_on(
                prod_core,
                Box::new(Producer {
                    barriers,
                    produce_nops,
                    batch,
                    iterations: messages,
                    prod_cnt: 0,
                    in_batch: 0,
                    state: 0,
                }),
            );
            m.add_thread_on(
                cons_core,
                Box::new(Consumer {
                    iterations: messages,
                    cons_cnt: 0,
                    prod_seen: 0,
                    consume_nops: 0,
                    check: true,
                    errors: 0,
                    state: 0,
                }),
            );
        }
        PcVariant::Pilot { avail } => {
            m.add_thread_on(
                prod_core,
                Box::new(PilotProducer {
                    avail,
                    produce_nops,
                    batch,
                    iterations: messages,
                    prod_cnt: 0,
                    in_batch: 0,
                    old_data: [0; BUF_SLOTS as usize],
                    local_flags: [0; BUF_SLOTS as usize],
                    state: 0,
                }),
            );
            m.add_thread_on(
                cons_core,
                Box::new(PilotConsumer {
                    iterations: messages,
                    cons_cnt: 0,
                    old_data: [0; BUF_SLOTS as usize],
                    old_flags: [0; BUF_SLOTS as usize],
                    consume_nops: 0,
                    errors: 0,
                    state: 0,
                }),
            );
        }
    }
    let max_cycles = messages * 40_000 + 1_000_000;
    let stats = m.run(max_cycles);
    assert!(stats.halted, "producer-consumer must drain within budget");
    let s = m.core_stats(prod_core);
    let delivered = m.read_memory(CONS_CNT);
    let result = PcResult {
        messages: delivered,
        cycles: s.cycles,
        msgs_per_sec: platform.iterations_per_second(s.iterations * batch, s.cycles),
        errors: m.read_memory(CONS_ERRORS),
        stall: s.stall,
    };
    (result, m.take_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSGS: u64 = 300;
    const WORK: u32 = 40;

    fn tput(bind: BindConfig, v: PcVariant) -> f64 {
        run_prodcons(bind, v, MSGS, 1, WORK).msgs_per_sec
    }

    fn baseline(avail: Barrier, publish: Barrier) -> PcVariant {
        PcVariant::Baseline(PcBarriers { avail, publish })
    }

    #[test]
    fn all_correct_variants_deliver_every_message() {
        for bind in [BindConfig::KunpengCrossNodes, BindConfig::Kirin960] {
            for (name, combo) in FIG6A_COMBOS.iter().take(5) {
                let r = run_prodcons(bind, PcVariant::Baseline(*combo), 100, 1, 10);
                assert_eq!(r.messages, 100, "{name}");
            }
            let r = run_prodcons(
                bind,
                PcVariant::Pilot {
                    avail: Barrier::DmbLd,
                },
                100,
                1,
                10,
            );
            assert_eq!(r.messages, 100);
            assert_eq!(
                r.errors, 0,
                "Pilot must stay correct with no publish barrier"
            );
        }
    }

    #[test]
    fn fig6a_ld_st_beats_full_full() {
        for bind in [BindConfig::KunpengSameNode, BindConfig::KunpengCrossNodes] {
            let ld_st = tput(bind, baseline(Barrier::DmbLd, Barrier::DmbSt));
            let full_full = tput(bind, baseline(Barrier::DmbFull, Barrier::DmbFull));
            assert!(
                ld_st > full_full,
                "{bind:?}: ld-st {ld_st} must beat full-full {full_full}"
            );
        }
    }

    #[test]
    fn fig6a_stlr_does_not_beat_dmb_full_cross_node() {
        let bind = BindConfig::KunpengCrossNodes;
        let stlr = tput(bind, baseline(Barrier::DmbFull, Barrier::Stlr));
        let full = tput(bind, baseline(Barrier::DmbFull, Barrier::DmbFull));
        assert!(
            stlr <= full * 1.05,
            "STLR {stlr} vs DMB full {full} (Observation 3)"
        );
    }

    #[test]
    fn fig6a_removing_the_publish_barrier_recovers_most_of_ideal() {
        let bind = BindConfig::KunpengCrossNodes;
        let ld_none = tput(bind, baseline(Barrier::DmbLd, Barrier::None));
        let ld_st = tput(bind, baseline(Barrier::DmbLd, Barrier::DmbSt));
        let ideal = tput(bind, baseline(Barrier::None, Barrier::None));
        assert!(ld_none > ld_st, "dropping the post-RMR barrier must help");
        assert!(
            ld_none > 0.8 * ideal,
            "ld-none {ld_none} close to ideal {ideal}"
        );
    }

    #[test]
    fn fig6b_pilot_beats_the_best_correct_baseline() {
        for bind in [BindConfig::KunpengSameNode, BindConfig::KunpengCrossNodes] {
            let pilot = tput(
                bind,
                PcVariant::Pilot {
                    avail: Barrier::DmbLd,
                },
            );
            let best = tput(bind, baseline(Barrier::DmbLd, Barrier::DmbSt));
            assert!(
                pilot > best,
                "{bind:?}: Pilot {pilot} over DMB ld-DMB st {best}"
            );
        }
    }

    #[test]
    fn fig6b_pilot_gain_larger_cross_node_than_mobile() {
        let gain = |bind| {
            tput(
                bind,
                PcVariant::Pilot {
                    avail: Barrier::DmbLd,
                },
            ) / tput(bind, baseline(Barrier::DmbLd, Barrier::DmbSt))
        };
        let cross = gain(BindConfig::KunpengCrossNodes);
        let rpi = gain(BindConfig::RaspberryPi4);
        assert!(cross > rpi, "cross-node gain {cross} vs rpi {rpi}");
        assert!(
            cross > 1.3,
            "cross-node gain should be substantial, got {cross}"
        );
    }

    #[test]
    fn fig6c_batching_amortizes_the_pilot_advantage() {
        let bind = BindConfig::KunpengCrossNodes;
        let speedup = |batch| {
            let p = run_prodcons(
                bind,
                PcVariant::Pilot {
                    avail: Barrier::DmbLd,
                },
                MSGS,
                batch,
                10,
            )
            .msgs_per_sec;
            let b = run_prodcons(
                bind,
                baseline(Barrier::DmbLd, Barrier::DmbSt),
                MSGS,
                batch,
                10,
            )
            .msgs_per_sec;
            p / b
        };
        let s1 = speedup(1);
        let s4 = speedup(4);
        assert!(s1 > s4, "speedup declines with batch size: {s1} vs {s4}");
        assert!(s4 > 0.95, "Pilot never costs more than ~5% (worst case)");
    }

    #[test]
    fn determinism() {
        let v = PcVariant::Pilot {
            avail: Barrier::DmbLd,
        };
        let a = run_prodcons(BindConfig::Kirin970, v, 100, 1, 10);
        let b = run_prodcons(BindConfig::Kirin970, v, 100, 1, 10);
        assert_eq!(a.cycles, b.cycles);
    }
}
