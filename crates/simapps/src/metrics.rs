//! Response-time science shared by the lock benchmarks.
//!
//! Throughput alone hides what delegation does to *individual* threads: a
//! combiner pays with its own latency for everyone else's progress, and a
//! dedicated server can starve distant clients. The experiment suite
//! therefore reports, per run:
//!
//! * a per-operation completion-latency histogram (p50/p99/p999/max),
//!   merged over the client cores' [`LatencyHistogram`]s;
//! * **Jain's fairness index** over per-client throughput — 1 when every
//!   client progresses at the same rate, approaching `1/n` when a single
//!   client monopolizes the lock;
//! * the **combiner-subversion counter** — critical sections a thread
//!   executed on behalf of *others*. Zero by construction for in-place
//!   locks (ticket, MCS); equal to the total for dedicated-server designs
//!   (FFWD, RCL); in between for migratory combiners.
//!
//! Everything here is computed from deterministic simulator state, so the
//! numbers are byte-identical across runs and scheduling engines.

use armbar_sim::LatencyHistogram;

use crate::ticket_sim::LockResult;

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// Ranges over `(0, 1]` for non-degenerate inputs; exactly 1 when all
/// shares are equal. Returns 1.0 for empty or all-zero input (a run with
/// no clients starves nobody).
#[must_use]
pub fn jain_index(shares: &[f64]) -> f64 {
    let n = shares.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sq_sum: f64 = shares.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        (sum * sum) / (n as f64 * sq_sum)
    }
}

/// Full measurement of one lock benchmark run: throughput plus the
/// response-time distribution, fairness, and subversion counters.
#[derive(Debug, Clone)]
pub struct DlockMetrics {
    /// Throughput and stall decomposition (the classic figures' view).
    pub result: LockResult,
    /// Completion-latency histogram merged over all client cores, one
    /// sample per operation (cycles between iteration marks).
    pub latency: LatencyHistogram,
    /// Jain's fairness index over per-client throughput.
    pub fairness: f64,
    /// Critical sections executed by a thread on behalf of another.
    pub subverted: u64,
    /// Total operations completed (denominator for `subverted`).
    pub total_ops: u64,
}

impl DlockMetrics {
    /// The share of operations executed by a thread other than the one
    /// that requested them, in `[0, 1]`.
    #[must_use]
    pub fn subverted_share(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.subverted as f64 / self.total_ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jain_is_one_for_equal_shares() {
        assert!((jain_index(&[3.0, 3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[7.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs() {
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_monopoly_approaches_one_over_n() {
        let j = jain_index(&[100.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12, "monopoly over 4 gives 1/4, {j}");
    }

    #[test]
    fn jain_orders_by_imbalance() {
        let even = jain_index(&[5.0, 5.0, 5.0]);
        let mild = jain_index(&[6.0, 5.0, 4.0]);
        let harsh = jain_index(&[12.0, 2.0, 1.0]);
        assert!(even > mild && mild > harsh, "{even} {mild} {harsh}");
    }

    // The vendored proptest shim only generates integer ranges; shares are
    // drawn as u64 and cast (exact for this magnitude).
    proptest! {
        #[test]
        fn jain_stays_in_unit_interval(
            raw in prop::collection::vec(0u64..1_000_000_000, 1..32),
        ) {
            #[allow(clippy::cast_precision_loss)]
            let shares: Vec<f64> = raw.iter().map(|&x| x as f64).collect();
            let j = jain_index(&shares);
            prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "index {} out of (0,1]", j);
        }

        #[test]
        fn jain_is_scale_invariant(
            raw in prop::collection::vec(1u64..1_000_000, 1..16),
            scale_millis in 1u64..1_000_000,
        ) {
            #[allow(clippy::cast_precision_loss)]
            let shares: Vec<f64> = raw.iter().map(|&x| x as f64).collect();
            #[allow(clippy::cast_precision_loss)]
            let scale = scale_millis as f64 / 1000.0;
            let scaled: Vec<f64> = shares.iter().map(|x| x * scale).collect();
            let a = jain_index(&shares);
            let b = jain_index(&scaled);
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }

        #[test]
        fn jain_single_share_is_one(x in 1u64..1_000_000_000) {
            #[allow(clippy::cast_precision_loss)]
            let j = jain_index(&[x as f64]);
            prop_assert!((j - 1.0).abs() < 1e-12);
        }
    }
}
