//! The pre-shared seed schedule ("hashPool" in Algorithms 3 & 4).
//!
//! Sender and receiver walk the same deterministic sequence of 64-bit
//! seeds; the sender XORs each outgoing payload with the next seed, the
//! receiver XORs it back out. The point is to *shuffle* the stored bits so
//! that consecutive equal payloads still produce different shared-word
//! values, keeping the flag-fallback path rare.

/// Default number of seeds in a pool.
pub const DEFAULT_POOL_SIZE: usize = 64;

/// A fixed schedule of XOR seeds shared by one sender/receiver pair.
///
/// Cloning yields an identical schedule; each endpoint owns its own cursor
/// (`cnt` in the paper), advanced once per transferred word.
#[derive(Debug, Clone)]
pub struct HashPool {
    seeds: Vec<u64>,
    cursor: usize,
}

impl HashPool {
    /// A pool of `size` seeds derived deterministically from `key` with a
    /// SplitMix64 generator. Seeds are guaranteed pairwise distinct from
    /// their neighbours and never zero (a zero seed would make the shuffle
    /// a no-op for that round).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(key: u64, size: usize) -> HashPool {
        assert!(size > 0, "hash pool cannot be empty");
        let mut seeds = Vec::with_capacity(size);
        let mut state = key;
        while seeds.len() < size {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z != 0 && seeds.last() != Some(&z) {
                seeds.push(z);
            }
        }
        HashPool { seeds, cursor: 0 }
    }

    /// The default pool (key 0xA5A5, [`DEFAULT_POOL_SIZE`] seeds).
    #[must_use]
    pub fn default_pool() -> HashPool {
        HashPool::new(0xA5A5, DEFAULT_POOL_SIZE)
    }

    /// Number of seeds before the schedule repeats.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Never empty (constructor enforces it), provided for completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The next seed (`hashPool[cnt++ % SIZE]`).
    #[inline]
    pub fn next_seed(&mut self) -> u64 {
        let s = self.seeds[self.cursor % self.seeds.len()];
        self.cursor += 1;
        s
    }

    /// Peek at seed `i` of the schedule without advancing.
    #[must_use]
    pub fn seed_at(&self, i: usize) -> u64 {
        self.seeds[i % self.seeds.len()]
    }

    /// Current cursor position (rounds completed).
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_shared() {
        let mut a = HashPool::new(7, 16);
        let mut b = HashPool::new(7, 16);
        for _ in 0..100 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = HashPool::new(1, 8);
        let b = HashPool::new(2, 8);
        assert_ne!(
            (0..8).map(|i| a.seed_at(i)).collect::<Vec<_>>(),
            (0..8).map(|i| b.seed_at(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeds_are_nonzero_and_neighbours_distinct() {
        let p = HashPool::new(0, 256);
        for i in 0..256 {
            assert_ne!(p.seed_at(i), 0);
            assert_ne!(p.seed_at(i), p.seed_at((i + 1) % 256));
        }
    }

    #[test]
    fn schedule_wraps() {
        let mut p = HashPool::new(3, 4);
        let first: Vec<u64> = (0..4).map(|_| p.next_seed()).collect();
        let second: Vec<u64> = (0..4).map(|_| p.next_seed()).collect();
        assert_eq!(first, second);
        assert_eq!(p.cursor(), 8);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_pool_rejected() {
        let _ = HashPool::new(1, 0);
    }

    #[test]
    fn xor_roundtrip_recovers_payload() {
        let mut tx = HashPool::default_pool();
        let mut rx = HashPool::default_pool();
        for payload in [0u64, 1, u64::MAX, 23, 0xDEAD_BEEF] {
            let wire = payload ^ tx.next_seed();
            assert_eq!(wire ^ rx.next_seed(), payload);
        }
    }
}
