//! Batched Pilot transfers (§4.5, Figure 6(c)).
//!
//! "When transferring more than 64-bit data, Pilot can be applied to every
//! 64-bit-long slice of data." A batch of `n` words occupies `n` consecutive
//! ring slots; only the *last* slot's arrival matters for latency because
//! the receiver drains in order, and the per-message barrier saving is
//! amortized `n`-ways — which is exactly why the paper's Figure 6(c)
//! speedup declines as the batch grows.

use armbar_barriers::Barrier;

use crate::channel::{
    pilot_ring, spsc_ring, BarrierPair, PilotReceiverRing, PilotSenderRing, SpscReceiver,
    SpscSender,
};
use crate::hashpool::HashPool;

/// Batched sender over the baseline ring.
pub struct BatchedSpscSender {
    inner: SpscSender,
}

/// Batched receiver over the baseline ring.
pub struct BatchedSpscReceiver {
    inner: SpscReceiver,
}

/// Batched sender over the Pilot ring.
pub struct BatchedPilotSender {
    inner: PilotSenderRing,
}

/// Batched receiver over the Pilot ring.
pub struct BatchedPilotReceiver {
    inner: PilotReceiverRing,
}

/// Baseline batched ring: `capacity` slots, configurable barriers.
#[must_use]
pub fn batched_spsc(
    capacity: usize,
    barriers: BarrierPair,
) -> (BatchedSpscSender, BatchedSpscReceiver) {
    let (tx, rx) = spsc_ring(capacity, barriers);
    (
        BatchedSpscSender { inner: tx },
        BatchedSpscReceiver { inner: rx },
    )
}

/// Pilot batched ring.
#[must_use]
pub fn batched_pilot(
    capacity: usize,
    pool: &HashPool,
    avail: Barrier,
) -> (BatchedPilotSender, BatchedPilotReceiver) {
    let (tx, rx) = pilot_ring(capacity, pool, avail);
    (
        BatchedPilotSender { inner: tx },
        BatchedPilotReceiver { inner: rx },
    )
}

impl BatchedSpscSender {
    /// Send a whole batch (blocking).
    pub fn send_batch(&mut self, batch: &[u64]) {
        for &w in batch {
            self.inner.send(w);
        }
    }
}

impl BatchedSpscReceiver {
    /// Receive `out.len()` words (blocking).
    pub fn recv_batch(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.inner.recv();
        }
    }
}

impl BatchedPilotSender {
    /// Send a whole batch (blocking); every word rides Pilot.
    pub fn send_batch(&mut self, batch: &[u64]) {
        for &w in batch {
            self.inner.send(w);
        }
    }

    /// Fallback-path activations so far.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.inner.fallbacks
    }
}

impl BatchedPilotReceiver {
    /// Receive `out.len()` words (blocking).
    pub fn recv_batch(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.inner.recv();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_roundtrip_through_both_rings() {
        for n in [1usize, 2, 4, 8, 16, 32] {
            let payload: Vec<u64> = (0..n as u64).map(|i| i * 11 + 3).collect();
            // Baseline.
            let (mut tx, mut rx) = batched_spsc(64, BarrierPair::LD_ST);
            tx.send_batch(&payload);
            let mut got = vec![0u64; n];
            rx.recv_batch(&mut got);
            assert_eq!(got, payload);
            // Pilot.
            let pool = HashPool::default_pool();
            let (mut ptx, mut prx) = batched_pilot(64, &pool, Barrier::DmbLd);
            ptx.send_batch(&payload);
            let mut got2 = vec![0u64; n];
            prx.recv_batch(&mut got2);
            assert_eq!(got2, payload);
        }
    }

    #[test]
    fn cross_thread_batches() {
        let pool = HashPool::default_pool();
        let (mut tx, mut rx) = batched_pilot(64, &pool, Barrier::DmbLd);
        const ROUNDS: u64 = 300;
        const BATCH: usize = 8;
        std::thread::scope(|s| {
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let batch: Vec<u64> = (0..BATCH as u64).map(|i| r * 100 + i).collect();
                    tx.send_batch(&batch);
                }
            });
            let h = s.spawn(move || {
                let mut buf = [0u64; BATCH];
                for r in 0..ROUNDS {
                    rx.recv_batch(&mut buf);
                    for (i, &w) in buf.iter().enumerate() {
                        assert_eq!(w, r * 100 + i as u64);
                    }
                }
            });
            h.join().unwrap();
        });
    }
}
