//! The bare Pilot mechanism over one shared (data, flag) pair —
//! Algorithms 3 & 4 of the paper.
//!
//! One sender transfers a sequence of 64-bit payloads to one receiver,
//! strictly alternating: the receiver must consume round *k* before the
//! sender may publish round *k+1* (in a real channel the ring counters
//! provide that back-pressure; see [`crate::channel`]).
//!
//! Every shared access is a relaxed 64-bit atomic — the only hardware
//! guarantee Pilot needs is single-copy atomicity of the aligned store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

use crate::hashpool::HashPool;

/// The shared state: payload word and fallback flag.
///
/// They sit on one padded cache line on purpose: the flag is touched only on
/// the rare fallback path, so co-locating it costs nothing and keeps the
/// common path at a single touched line — the cache-line reduction §4.5
/// credits for part of Pilot's win.
#[derive(Debug)]
pub struct PilotShared {
    data: CachePadded<AtomicU64>,
    flag: AtomicU64,
}

impl PilotShared {
    fn new() -> PilotShared {
        PilotShared {
            data: CachePadded::new(AtomicU64::new(0)),
            flag: AtomicU64::new(0),
        }
    }
}

/// Sender half (Algorithm 3).
#[derive(Debug)]
pub struct PilotSender {
    shared: Arc<PilotShared>,
    pool: HashPool,
    old_data: u64,
    local_flag: u64,
    /// Fallback-path activations (diagnostics; the paper's worst case).
    pub fallbacks: u64,
}

/// Receiver half (Algorithm 4).
#[derive(Debug)]
pub struct PilotReceiver {
    shared: Arc<PilotShared>,
    pool: HashPool,
    old_data: u64,
    old_flag: u64,
}

/// Create a connected Pilot pair over fresh shared state.
#[must_use]
pub fn pilot_pair(pool: &HashPool) -> (PilotSender, PilotReceiver) {
    let shared = Arc::new(PilotShared::new());
    (
        PilotSender {
            shared: Arc::clone(&shared),
            pool: pool.clone(),
            old_data: 0,
            local_flag: 0,
            fallbacks: 0,
        },
        PilotReceiver {
            shared,
            pool: pool.clone(),
            old_data: 0,
            old_flag: 0,
        },
    )
}

impl PilotSender {
    /// Publish one payload (Algorithm 3). No barrier anywhere: the single
    /// store *is* the notification.
    ///
    /// Must alternate with [`PilotReceiver::recv`] rounds; publishing twice
    /// without an intervening receive loses the first payload (exactly like
    /// overwriting an unconsumed buffer slot).
    pub fn send(&mut self, payload: u64) {
        // Line 1: shuffle with the next seed.
        let new_data = payload ^ self.pool.next_seed();
        if new_data == self.old_data {
            // Lines 2-3: fallback — flip the flag instead.
            self.local_flag ^= 1;
            self.shared.flag.store(self.local_flag, Ordering::Relaxed);
            self.fallbacks += 1;
        } else {
            // Line 5: the piggybacked publish.
            self.shared.data.store(new_data, Ordering::Relaxed);
        }
        // Line 6: remember for the next round.
        self.old_data = new_data;
    }
}

impl PilotReceiver {
    /// Non-blocking poll (one trip round Algorithm 4's loop): `Some(payload)`
    /// when a new round has been published.
    pub fn try_recv(&mut self) -> Option<u64> {
        let data = self.shared.data.load(Ordering::Relaxed);
        if data != self.old_data {
            self.old_data = data;
        } else {
            let flag = self.shared.flag.load(Ordering::Relaxed);
            if flag == self.old_flag {
                return None;
            }
            self.old_flag = flag;
        }
        // Line 6: unshuffle.
        Some(self.old_data ^ self.pool.next_seed())
    }

    /// Blocking receive: spin until the next round arrives (with polite
    /// exponential backoff so oversubscribed hosts still make progress).
    pub fn recv(&mut self) -> u64 {
        let backoff = crossbeam::utils::Backoff::new();
        loop {
            if let Some(v) = self.try_recv() {
                return v;
            }
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer() {
        let pool = HashPool::default_pool();
        let (mut tx, mut rx) = pilot_pair(&pool);
        assert_eq!(rx.try_recv(), None, "nothing published yet");
        tx.send(23);
        assert_eq!(rx.recv(), 23);
        assert_eq!(rx.try_recv(), None, "consumed exactly once");
    }

    #[test]
    fn alternating_sequence_roundtrips() {
        let pool = HashPool::new(11, 8);
        let (mut tx, mut rx) = pilot_pair(&pool);
        for v in [0u64, 0, 1, u64::MAX, 42, 42, 42, 0] {
            tx.send(v);
            assert_eq!(rx.recv(), v);
        }
    }

    #[test]
    fn fallback_path_engages_on_collision() {
        // Force a collision: craft payloads so the shuffled word repeats.
        let pool = HashPool::new(5, 4);
        let (mut tx, mut rx) = pilot_pair(&pool);
        // Round 0 publishes p0 ^ s0; choose round 1's payload so that
        // p1 ^ s1 == p0 ^ s0.
        let s0 = pool.seed_at(0);
        let s1 = pool.seed_at(1);
        let p0 = 7u64;
        let p1 = p0 ^ s0 ^ s1;
        tx.send(p0);
        assert_eq!(rx.recv(), p0);
        tx.send(p1);
        assert_eq!(tx.fallbacks, 1, "collision must take the flag path");
        assert_eq!(rx.recv(), p1, "flag path still delivers the payload");
    }

    #[test]
    fn repeated_fallbacks_alternate_flag() {
        let pool = HashPool::new(5, 4);
        let (mut tx, mut rx) = pilot_pair(&pool);
        let mut payloads = vec![9u64];
        // Build a chain of forced collisions.
        for i in 1..6 {
            let prev = payloads[i - 1];
            payloads.push(prev ^ pool.seed_at(i - 1) ^ pool.seed_at(i));
        }
        for &p in &payloads {
            tx.send(p);
            assert_eq!(rx.recv(), p);
        }
        assert_eq!(tx.fallbacks, 5);
    }

    #[test]
    fn cross_thread_transfer_in_lockstep() {
        // The bare slot requires alternation; an ack counter provides the
        // back-pressure a ring's counters normally would.
        let pool = HashPool::default_pool();
        let (mut tx, mut rx) = pilot_pair(&pool);
        let acked = Arc::new(AtomicU64::new(0));
        const N: u64 = 500;
        std::thread::scope(|s| {
            let acked_tx = Arc::clone(&acked);
            s.spawn(move || {
                for v in 0..N {
                    tx.send(v.wrapping_mul(0x9E37_79B9).wrapping_add(7));
                    // Wait until the receiver confirms round v.
                    while acked_tx.load(Ordering::Acquire) <= v {
                        std::thread::yield_now();
                    }
                }
            });
            let acked_rx = Arc::clone(&acked);
            let handle = s.spawn(move || {
                for v in 0..N {
                    let got = rx.recv();
                    assert_eq!(got, v.wrapping_mul(0x9E37_79B9).wrapping_add(7));
                    acked_rx.store(v + 1, Ordering::Release);
                }
            });
            handle.join().unwrap();
        });
    }
}
