//! **Pilot**: removing the performance-critical barrier in memory-based
//! communication (PPoPP 2020, §4.3).
//!
//! The expensive barrier in a producer-consumer exchange is the one that
//! strictly follows the remote memory reference — it orders *store the data*
//! before *set the flag*. Pilot removes it by **piggybacking the flag on the
//! data**: ARMv8 guarantees aligned 64-bit stores are *single-copy atomic*,
//! so a single store can publish payload and readiness together. The
//! receiver simply watches the shared word change.
//!
//! Two wrinkles make this correct for arbitrary payloads (Algorithms 3 & 4):
//!
//! 1. **Shuffling** — the sender XORs each payload with a per-round seed
//!    from a pre-shared [`HashPool`], making "new value == old value"
//!    vanishingly rare even for constant payload streams.
//! 2. **Flag fallback** — when the shuffled value still equals the previous
//!    one, the sender flips a separate shared flag instead; the receiver
//!    notices either the data changing or the flag changing.
//!
//! This crate provides:
//!
//! * [`HashPool`] — the shared seed schedule.
//! * [`slot::PilotSender`]/[`slot::PilotReceiver`] — the bare Algorithms 3 & 4
//!   over one shared (data, flag) pair.
//! * [`channel::SpscRing`] — the baseline barrier-configurable
//!   producer-consumer ring (Algorithm 2) for comparison.
//! * [`channel::PilotRing`] — the ring with Pilot applied (§4.4): the
//!   post-RMR barrier and the consumer's flag line are gone.
//! * [`batch`] — batched (n × 8-byte) transfers (§4.5, Figure 6(c)).
//!
//! On x86 hosts everything is correct (TSO is stronger than the barriers
//! requested); on aarch64 the configured barriers compile to the real
//! instructions via `armbar-barriers`.

#![warn(missing_docs)]

pub mod batch;
pub mod channel;
pub mod hashpool;
pub mod slot;

pub use channel::{
    pilot_ring, spsc_ring, BarrierPair, PilotReceiverRing, PilotSenderRing, SpscReceiver,
    SpscSender,
};
pub use hashpool::HashPool;
pub use slot::{pilot_pair, PilotReceiver, PilotSender};
