//! Producer-consumer rings: the barrier-configurable baseline (Algorithm 2)
//! and the Pilot-transformed ring (§4.4).
//!
//! The baseline producer:
//!
//! ```text
//! 1  while prodCnt - consCnt == BUFF_SIZE { nop }
//! 3  BARRIER                 // "avail" barrier: order the consCnt load
//! 4  buffer[prodCnt % N] = msg   // likely an RMR
//! 5  BARRIER                 // "publish" barrier: order buffer before cnt
//! 6  prodCnt += 1
//! ```
//!
//! The paper shows line 5 — the barrier strictly after the RMR — dominates
//! the cost. [`PilotSenderRing`] removes it: each slot is published through
//! Pilot, so the consumer watches the slot itself; `prodCnt` becomes
//! producer-local and its cache line stops ping-ponging.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

use armbar_barriers::{native, Barrier};

use crate::hashpool::HashPool;

/// The two configurable barriers of the baseline producer/consumer
/// (`X - Y` in the paper's Figure 6(a) legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPair {
    /// Line 3: orders the availability check before touching the buffer.
    pub avail: Barrier,
    /// Line 5: orders filling the buffer before publishing the counter.
    pub publish: Barrier,
}

impl BarrierPair {
    /// The best-performing correct combination (Observation 6).
    pub const LD_ST: BarrierPair = BarrierPair {
        avail: Barrier::DmbLd,
        publish: Barrier::DmbSt,
    };
    /// The conservative combination.
    pub const FULL_FULL: BarrierPair = BarrierPair {
        avail: Barrier::DmbFull,
        publish: Barrier::DmbFull,
    };
    /// "Ideal": no barriers at all — incorrect on ARM, the paper's upper
    /// reference line.
    pub const IDEAL: BarrierPair = BarrierPair {
        avail: Barrier::None,
        publish: Barrier::None,
    };
}

/// Execute one of the configurable barrier points on the host.
///
/// `LDAR`/`STLR`/dependency idioms are access-attached; in this host channel
/// they degrade to the nearest standalone equivalent (`DMB ld` for the
/// acquire-ish side, `DMB st`-strength for STLR is *not* correct so STLR maps
/// to a full barrier on the publish side). The simulator models them
/// precisely; the host path only needs correctness.
fn run_barrier(b: Barrier) {
    match b {
        Barrier::None => {}
        Barrier::Ldar | Barrier::DmbLd | Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {
            native::dmb_ld();
        }
        Barrier::CtrlIsb => {
            native::dmb_ld();
            native::isb();
        }
        Barrier::Stlr => native::dmb_full(),
        other => native::execute(other),
    }
}

struct RingShared {
    slots: Vec<CachePadded<AtomicU64>>,
    prod_cnt: CachePadded<AtomicU64>,
    cons_cnt: CachePadded<AtomicU64>,
}

impl RingShared {
    fn new(capacity: usize) -> Arc<RingShared> {
        assert!(
            capacity > 0 && capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        Arc::new(RingShared {
            slots: (0..capacity)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            prod_cnt: CachePadded::new(AtomicU64::new(0)),
            cons_cnt: CachePadded::new(AtomicU64::new(0)),
        })
    }
}

/// Producer half of the baseline ring.
pub struct SpscSender {
    shared: Arc<RingShared>,
    barriers: BarrierPair,
    prod_cnt: u64,
    mask: u64,
}

/// Consumer half of the baseline ring.
pub struct SpscReceiver {
    shared: Arc<RingShared>,
    barriers: BarrierPair,
    cons_cnt: u64,
    mask: u64,
}

/// Create a baseline barrier-configurable SPSC ring of `capacity` slots
/// (power of two).
#[must_use]
pub fn spsc_ring(capacity: usize, barriers: BarrierPair) -> (SpscSender, SpscReceiver) {
    let shared = RingShared::new(capacity);
    let mask = capacity as u64 - 1;
    (
        SpscSender {
            shared: Arc::clone(&shared),
            barriers,
            prod_cnt: 0,
            mask,
        },
        SpscReceiver {
            shared,
            barriers,
            cons_cnt: 0,
            mask,
        },
    )
}

impl SpscSender {
    /// Try to publish one message; `false` when the ring is full.
    pub fn try_send(&mut self, msg: u64) -> bool {
        // Line 1: availability check.
        let cons = self.shared.cons_cnt.load(Ordering::Relaxed);
        if self.prod_cnt - cons == self.mask + 1 {
            return false;
        }
        // Line 3.
        run_barrier(self.barriers.avail);
        // Line 4: fill the buffer (the likely-RMR store).
        let idx = (self.prod_cnt & self.mask) as usize;
        self.shared.slots[idx].store(msg, Ordering::Relaxed);
        // Line 5: the post-RMR barrier this paper is about.
        run_barrier(self.barriers.publish);
        // Line 6: publish.
        self.prod_cnt += 1;
        self.shared.prod_cnt.store(self.prod_cnt, Ordering::Relaxed);
        true
    }

    /// Blocking send.
    pub fn send(&mut self, msg: u64) {
        let backoff = crossbeam::utils::Backoff::new();
        while !self.try_send(msg) {
            backoff.snooze();
        }
    }
}

impl SpscReceiver {
    /// Try to take one message; `None` when the ring is empty.
    pub fn try_recv(&mut self) -> Option<u64> {
        let prod = self.shared.prod_cnt.load(Ordering::Relaxed);
        if prod == self.cons_cnt {
            return None;
        }
        // Consumer-side load barrier: order the counter load before the
        // buffer read (the cheap side, per the paper's §4.1).
        run_barrier(match self.barriers.avail {
            Barrier::None => Barrier::None,
            _ => Barrier::DmbLd,
        });
        let idx = (self.cons_cnt & self.mask) as usize;
        let msg = self.shared.slots[idx].load(Ordering::Relaxed);
        // Order the buffer read before releasing the slot.
        run_barrier(match self.barriers.publish {
            Barrier::None => Barrier::None,
            _ => Barrier::DmbFull,
        });
        self.cons_cnt += 1;
        self.shared.cons_cnt.store(self.cons_cnt, Ordering::Relaxed);
        Some(msg)
    }

    /// Blocking receive.
    pub fn recv(&mut self) -> u64 {
        let backoff = crossbeam::utils::Backoff::new();
        loop {
            if let Some(v) = self.try_recv() {
                return v;
            }
            backoff.snooze();
        }
    }
}

/// Per-slot Pilot state shared between the halves of a [`PilotSenderRing`].
struct PilotRingShared {
    /// Payload words, published via Pilot.
    slots: Vec<CachePadded<AtomicU64>>,
    /// Fallback flags, one per slot.
    flags: Vec<CachePadded<AtomicU64>>,
    /// Consumer progress — the only counter line that still ping-pongs.
    cons_cnt: CachePadded<AtomicU64>,
}

/// Producer half of the Pilot ring (§4.4).
pub struct PilotSenderRing {
    shared: Arc<PilotRingShared>,
    pool: HashPool,
    old_data: Vec<u64>,
    local_flags: Vec<u64>,
    prod_cnt: u64,
    mask: u64,
    avail_barrier: Barrier,
    /// Fallback-path activations (diagnostics).
    pub fallbacks: u64,
}

/// Consumer half of the Pilot ring.
pub struct PilotReceiverRing {
    shared: Arc<PilotRingShared>,
    pool: HashPool,
    old_data: Vec<u64>,
    old_flags: Vec<u64>,
    cons_cnt: u64,
    mask: u64,
}

/// Create a Pilot-transformed SPSC ring of `capacity` slots (power of two).
///
/// The publish barrier is gone (Pilot removes it); `avail` keeps the line-3
/// barrier, whose overhead the paper shows is minor.
#[must_use]
pub fn pilot_ring(
    capacity: usize,
    pool: &HashPool,
    avail: Barrier,
) -> (PilotSenderRing, PilotReceiverRing) {
    assert!(
        capacity > 0 && capacity.is_power_of_two(),
        "capacity must be a power of two"
    );
    let shared = Arc::new(PilotRingShared {
        slots: (0..capacity)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
        flags: (0..capacity)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect(),
        cons_cnt: CachePadded::new(AtomicU64::new(0)),
    });
    let mask = capacity as u64 - 1;
    (
        PilotSenderRing {
            shared: Arc::clone(&shared),
            pool: pool.clone(),
            old_data: vec![0; capacity],
            local_flags: vec![0; capacity],
            prod_cnt: 0,
            mask,
            avail_barrier: avail,
            fallbacks: 0,
        },
        PilotReceiverRing {
            shared,
            pool: pool.clone(),
            old_data: vec![0; capacity],
            old_flags: vec![0; capacity],
            cons_cnt: 0,
            mask,
        },
    )
}

impl PilotSenderRing {
    /// Try to publish one message; `false` when the ring is full.
    pub fn try_send(&mut self, msg: u64) -> bool {
        let cons = self.shared.cons_cnt.load(Ordering::Relaxed);
        if self.prod_cnt - cons == self.mask + 1 {
            return false;
        }
        run_barrier(self.avail_barrier);
        let idx = (self.prod_cnt & self.mask) as usize;
        // Algorithm 3, per slot.
        let new_data = msg ^ self.pool.next_seed();
        if new_data == self.old_data[idx] {
            self.local_flags[idx] ^= 1;
            self.shared.flags[idx].store(self.local_flags[idx], Ordering::Relaxed);
            self.fallbacks += 1;
        } else {
            self.shared.slots[idx].store(new_data, Ordering::Relaxed);
        }
        self.old_data[idx] = new_data;
        // No publish barrier, no shared prod_cnt: the slot itself announces.
        self.prod_cnt += 1;
        true
    }

    /// Blocking send.
    pub fn send(&mut self, msg: u64) {
        let backoff = crossbeam::utils::Backoff::new();
        while !self.try_send(msg) {
            backoff.snooze();
        }
    }
}

impl PilotReceiverRing {
    /// Try to take one message; `None` when nothing new has arrived.
    pub fn try_recv(&mut self) -> Option<u64> {
        let idx = (self.cons_cnt & self.mask) as usize;
        // Algorithm 4, per slot.
        let data = self.shared.slots[idx].load(Ordering::Relaxed);
        if data != self.old_data[idx] {
            self.old_data[idx] = data;
        } else {
            let flag = self.shared.flags[idx].load(Ordering::Relaxed);
            if flag == self.old_flags[idx] {
                return None;
            }
            self.old_flags[idx] = flag;
        }
        let msg = self.old_data[idx] ^ self.pool.next_seed();
        self.cons_cnt += 1;
        self.shared.cons_cnt.store(self.cons_cnt, Ordering::Relaxed);
        Some(msg)
    }

    /// Blocking receive.
    pub fn recv(&mut self) -> u64 {
        let backoff = crossbeam::utils::Backoff::new();
        loop {
            if let Some(v) = self.try_recv() {
                return v;
            }
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_spsc(barriers: BarrierPair) {
        let (mut tx, mut rx) = spsc_ring(8, barriers);
        const N: u64 = 2_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                for v in 0..N {
                    tx.send(v * 3 + 1);
                }
            });
            let h = s.spawn(move || {
                for v in 0..N {
                    assert_eq!(rx.recv(), v * 3 + 1);
                }
            });
            h.join().unwrap();
        });
    }

    #[test]
    fn spsc_transfers_in_order_ld_st() {
        exercise_spsc(BarrierPair::LD_ST);
    }

    #[test]
    fn spsc_transfers_in_order_full_full() {
        exercise_spsc(BarrierPair::FULL_FULL);
    }

    #[test]
    fn spsc_transfers_with_stlr_publish() {
        exercise_spsc(BarrierPair {
            avail: Barrier::DmbFull,
            publish: Barrier::Stlr,
        });
    }

    #[test]
    fn spsc_full_and_empty_conditions() {
        let (mut tx, mut rx) = spsc_ring(4, BarrierPair::LD_ST);
        assert_eq!(rx.try_recv(), None);
        for v in 0..4 {
            assert!(tx.try_send(v));
        }
        assert!(!tx.try_send(99), "ring must report full");
        for v in 0..4 {
            assert_eq!(rx.try_recv(), Some(v));
        }
        assert_eq!(rx.try_recv(), None);
        assert!(tx.try_send(100), "space reclaimed after consumption");
    }

    #[test]
    fn pilot_ring_transfers_in_order() {
        let pool = HashPool::default_pool();
        let (mut tx, mut rx) = pilot_ring(8, &pool, Barrier::DmbLd);
        const N: u64 = 2_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                for v in 0..N {
                    tx.send(v.wrapping_mul(0x1234_5677).wrapping_add(9));
                }
            });
            let h = s.spawn(move || {
                for v in 0..N {
                    assert_eq!(rx.recv(), v.wrapping_mul(0x1234_5677).wrapping_add(9));
                }
            });
            h.join().unwrap();
        });
    }

    #[test]
    fn pilot_ring_delivers_constant_streams() {
        // Constant payloads exercise the shuffle: without it every round
        // would take the fallback path; with it, collisions are engineered
        // only. Either way delivery must be exact.
        let pool = HashPool::default_pool();
        let (mut tx, mut rx) = pilot_ring(4, &pool, Barrier::DmbLd);
        for _ in 0..100 {
            tx.send(7);
            assert_eq!(rx.recv(), 7);
        }
        assert_eq!(
            tx.fallbacks, 0,
            "shuffle must avoid fallbacks for constants"
        );
    }

    #[test]
    fn pilot_ring_full_condition() {
        let pool = HashPool::default_pool();
        let (mut tx, mut rx) = pilot_ring(2, &pool, Barrier::DmbLd);
        assert!(tx.try_send(1));
        assert!(tx.try_send(2));
        assert!(!tx.try_send(3));
        assert_eq!(rx.recv(), 1);
        assert!(tx.try_send(3));
        assert_eq!(rx.recv(), 2);
        assert_eq!(rx.recv(), 3);
    }

    #[test]
    fn pilot_ring_survives_engineered_collisions() {
        // Same construction as the slot test, but through the ring: payloads
        // chosen so consecutive uses of one slot produce equal shuffled
        // words (capacity 1 pins every round to slot 0).
        let pool = HashPool::new(5, 4);
        let (mut tx, mut rx) = pilot_ring(1, &pool, Barrier::None);
        let mut payloads = vec![3u64];
        for i in 1..8 {
            payloads.push(payloads[i - 1] ^ pool.seed_at(i - 1) ^ pool.seed_at(i));
        }
        for &p in &payloads {
            tx.send(p);
            assert_eq!(rx.recv(), p);
        }
        assert_eq!(tx.fallbacks, 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = spsc_ring(6, BarrierPair::LD_ST);
    }
}
