//! `armbar-core` — the facade over the `armbar` workspace.
//!
//! Reproduction of *"No Barrier in the Road: A Comprehensive Study and
//! Optimization of ARM Barriers"* (PPoPP 2020). The workspace splits into:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | cycle-level ARM memory-subsystem simulator (pipeline, non-FIFO store buffer, coherence, ACE barrier transactions, NUMA topology) |
//! | [`wmm`] | exhaustive operational weak-memory explorer + litmus suite |
//! | [`barriers`] | barrier taxonomy, native `asm!` backend, Table 3 advisor |
//! | [`pilot`] | the Pilot mechanism (Algorithms 3 & 4) and channels built on it |
//! | [`locks`] | ticket/MCS in-place locks; FFWD/combining delegation locks with Pilot variants |
//! | [`collections`] | lock-protected queue/stack/sorted-list/hash-table workloads |
//! | [`dedup`] | PARSEC-dedup-like pipeline compressor with pluggable queues |
//! | [`floorplan`] | BOTS-style branch-and-bound floorplanner |
//! | [`simapps`] | the paper's experiments as simulator workloads |
//!
//! The [`prelude`] re-exports the types most programs start from.
//!
//! # Quick start
//!
//! ```
//! use armbar_core::prelude::*;
//!
//! // 1. Semantics: Table 1 on the exhaustive explorer.
//! let mp = armbar_core::wmm::litmus::message_passing(Barrier::None, Barrier::None);
//! assert!(mp.allowed(MemoryModel::ArmWmm));
//! assert!(!mp.allowed(MemoryModel::X86Tso));
//!
//! // 2. Performance: the abstracted model on the simulated server.
//! let spec = ModelSpec::store_store(Barrier::DmbFull, BarrierLoc::AfterOp1, 150);
//! let r = run_model(BindConfig::KunpengCrossNodes, spec, 200);
//! assert!(r.loops_per_sec > 0.0);
//!
//! // 3. Advice: what the paper's Table 3 says for a store->store ordering.
//! let rec = recommend(OrderReq::pair(AccessType::Store, AccessType::Store));
//! assert_eq!(rec.best(), Approach::Use(Barrier::DmbSt));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use armbar_barriers as barriers;
pub use armbar_collections as collections;
pub use armbar_dedup as dedup;
pub use armbar_floorplan as floorplan;
pub use armbar_locks as locks;
pub use armbar_pilot as pilot;
pub use armbar_sim as sim;
pub use armbar_simapps as simapps;
pub use armbar_wmm as wmm;

/// The types most programs start from.
pub mod prelude {
    pub use armbar_barriers::{
        advisor::{recommend, Approach, OrderReq},
        AccessType, Barrier,
    };
    pub use armbar_pilot::{pilot_pair, pilot_ring, spsc_ring, BarrierPair, HashPool};
    pub use armbar_sim::{Machine, Op, Platform, PlatformKind, SimThread, ThreadCtx};
    pub use armbar_simapps::{
        abstract_model::{run_model, BarrierLoc, ModelSpec},
        bind::BindConfig,
    };
    pub use armbar_wmm::{explore, LitmusTest, MemoryModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_the_workspace_together() {
        // A tiny end-to-end: the advisor's store->store pick, validated by
        // the explorer, then costed by the simulator.
        let rec = recommend(OrderReq::pair(AccessType::Store, AccessType::Store));
        let Approach::Use(picked) = rec.best() else {
            panic!("expected a direct pick")
        };
        let cell = armbar_wmm::litmus::table3_cell(AccessType::Store, AccessType::Store, picked);
        assert!(
            !cell.allowed(MemoryModel::ArmWmm),
            "{picked} must fix the MP producer"
        );
        let with = run_model(
            BindConfig::KunpengCrossNodes,
            ModelSpec::store_store(picked, BarrierLoc::BeforeOp2, 150),
            150,
        );
        let stronger = run_model(
            BindConfig::KunpengCrossNodes,
            ModelSpec::store_store(Barrier::DsbFull, BarrierLoc::BeforeOp2, 150),
            150,
        );
        assert!(
            with.loops_per_sec > stronger.loops_per_sec,
            "the advice is cheaper than DSB"
        );
    }
}
