//! The lint corpus: every [`Program`] `armbar-lint` analyzes by default.
//!
//! Three families, mirroring the paper's measurement targets:
//!
//! * the **litmus battery** (the shapes of Table 1 and §3), restricted to
//!   the configurations whose relaxed outcome is *intended to be
//!   forbidden* — those carry an intent predicate the lint can check;
//! * **MP in every barrier placement** the producer/consumer experiment
//!   sweeps (Figure 6a), including the intentionally broken ones, which
//!   the lint must flag as racy;
//! * `wmm` encodings of the **simapps kernels**: ticket/MCS lock handoff
//!   and the Pilot channel, seeded with the over-strong barriers real code
//!   ships with (DSB where DMB suffices, DMB full where a dependency
//!   would do, a stray same-location fence Pilot makes redundant).
//!
//! The kernel family comes in two sizes: the litmus-sized ordering
//! skeletons above, and bounded-unrolled **implementation-sized** cases
//! (100+ instructions) that the multi-word packed engine explores
//! directly — no enumerative fallback anywhere in the corpus. The
//! implementation-sized programs are *lifted from real AArch64 text*: the
//! checked-in `.s` fixtures under `corpus/asm/`, via
//! [`armbar_extract::fixtures`]. The `armbar_wmm::unroll` builders that
//! used to construct them by hand survive only as differential fixtures
//! (`armbar-extract`'s equivalence tests prove the lifted programs'
//! outcome sets equal the hand-built twins'). New cases are appended at
//! the end so existing `lint.csv` rows keep their byte-identical order.

use armbar_barriers::Barrier;
use armbar_extract::fixtures::lift_fixture;
use armbar_wmm::battery::battery;
use armbar_wmm::litmus::{load_buffering, message_passing, pilot_message_passing, store_buffering};
use armbar_wmm::unroll::{
    mcs_payload_regs, ticket_last_grant_reg, ticket_payload_regs, MCS_PAYLOAD_BASE,
};
use armbar_wmm::{Instr, Outcome, Program, Thread};

/// An intent predicate: the outcome the author of the code considers a
/// bug (the test's *forbidden* outcome).
pub type Intent = Box<dyn Fn(&Outcome) -> bool + Send + Sync>;

/// One program under analysis, with its (optional) forbidden-outcome
/// intent. Without an intent the lint still classifies every barrier
/// site; it just cannot detect *missing* ordering.
pub struct LintCase {
    /// Unique, stable case name (keys `lint.csv` rows).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The outcome the program must never produce, when known.
    pub forbidden: Option<Intent>,
}

fn thread(instrs: Vec<Instr>) -> Thread {
    Thread { instrs }
}

/// Ticket-lock handoff distilled to its ordering skeleton: the owner
/// publishes protected data then bumps the grant word; the waiter spins on
/// the grant and reads the data. `owner_fence`/`waiter_fence` are the
/// barriers the implementation placed.
fn lock_handoff(name: &str, owner_fence: Barrier, waiter_fence: Barrier) -> LintCase {
    let owner = vec![
        Instr::store(0, 41),
        Instr::Fence(owner_fence),
        Instr::store(1, 1),
    ];
    let waiter = vec![
        Instr::load(0, 1),
        Instr::Fence(waiter_fence),
        Instr::load(1, 0),
    ];
    LintCase {
        name: name.to_string(),
        program: Program {
            threads: vec![thread(owner), thread(waiter)],
            init: vec![],
        },
        forbidden: Some(Box::new(|o| o.reg(1, 0) == 1 && o.reg(1, 1) != 41)),
    }
}

/// The full corpus, in the deterministic order everything downstream
/// (human report, `lint.csv`, proofs) relies on.
#[must_use]
pub fn corpus() -> Vec<LintCase> {
    let mut cases = Vec::new();

    // -- Litmus battery: intended-forbidden configurations only. --------
    for (test, expected_allowed) in battery() {
        if expected_allowed {
            continue;
        }
        cases.push(LintCase {
            name: test.name,
            program: test.program,
            forbidden: Some(test.relaxed),
        });
    }

    // -- MP, all Figure-6a placements (producer barrier, consumer). -----
    let placements: [(Barrier, Barrier); 7] = [
        (Barrier::DmbFull, Barrier::DmbFull),
        (Barrier::DmbSt, Barrier::DmbFull),
        (Barrier::DmbSt, Barrier::DmbLd),
        (Barrier::DmbSt, Barrier::Ldar),
        (Barrier::Stlr, Barrier::DmbFull),
        (Barrier::None, Barrier::DmbLd),
        (Barrier::None, Barrier::None),
    ];
    for (producer, consumer) in placements {
        let t = message_passing(producer, consumer);
        cases.push(LintCase {
            name: t.name,
            program: t.program,
            forbidden: Some(t.relaxed),
        });
    }

    // DSB-everywhere MP: both sides downgradeable.
    let t = message_passing(Barrier::DsbFull, Barrier::DsbFull);
    cases.push(LintCase {
        name: t.name,
        program: t.program,
        forbidden: Some(t.relaxed),
    });

    // Known-redundant: correctly fenced MP with a stray trailing DMB st
    // behind the flag store — nothing after it to order.
    cases.push(LintCase {
        name: "MP+dmb.st+dmb.ld+stray-st".to_string(),
        program: Program {
            threads: vec![
                thread(vec![
                    Instr::store(0, 23),
                    Instr::Fence(Barrier::DmbSt),
                    Instr::store(1, 1),
                    Instr::Fence(Barrier::DmbSt),
                ]),
                thread(vec![
                    Instr::load(0, 1),
                    Instr::Fence(Barrier::DmbLd),
                    Instr::load(1, 0),
                ]),
            ],
            init: vec![],
        },
        forbidden: Some(Box::new(|o| o.reg(1, 0) == 1 && o.reg(1, 1) != 23)),
    });

    // SB with DSB: the sync barrier is over-strong, DMB full suffices.
    let t = store_buffering(Barrier::DsbFull);
    cases.push(LintCase {
        name: t.name,
        program: t.program,
        forbidden: Some(t.relaxed),
    });

    // LB with DMB ld: a bogus dependency discharges the same requirement
    // for free (Observation 6).
    let t = load_buffering(Barrier::DmbLd);
    cases.push(LintCase {
        name: t.name,
        program: t.program,
        forbidden: Some(t.relaxed),
    });

    // -- simapps kernels. ------------------------------------------------
    cases.push(lock_handoff(
        "ticket-handoff+dsb.full+dmb.ld",
        Barrier::DsbFull,
        Barrier::DmbLd,
    ));
    cases.push(lock_handoff(
        "mcs-handoff+dmb.full+dmb.full",
        Barrier::DmbFull,
        Barrier::DmbFull,
    ));

    // Pilot channel, paranoid edition: both writes hit the *same*
    // single-copy-atomic word, so coherence already orders them and the
    // fence between them discharges nothing.
    cases.push(LintCase {
        name: "pilot-channel+stray-st".to_string(),
        program: Program {
            threads: vec![
                thread(vec![
                    Instr::store(0, 1),
                    Instr::Fence(Barrier::DmbSt),
                    Instr::store(0, 23),
                ]),
                thread(vec![Instr::load(0, 0)]),
            ],
            init: vec![],
        },
        forbidden: Some(Box::new(|o| {
            o.reg(1, 0) != 0 && o.reg(1, 0) != 1 && o.reg(1, 0) != 23
        })),
    });

    // Pilot MP proper: fused flag+payload, no barriers anywhere — the
    // clean reference the lint must stay silent on.
    let t = pilot_message_passing();
    cases.push(LintCase {
        name: t.name,
        program: t.program,
        forbidden: Some(t.relaxed),
    });

    // Release-then-reacquire: the publisher hands off protected data with
    // an STLR and immediately re-acquires the reply channel with LDAR —
    // the mutex-chain / RPC idiom. Both LDARs are load-bearing (each
    // orders a flag read before its payload read), but the communication
    // is one-directional — the replier reads before it publishes — so no
    // SB cycle exists and the RCsc release-before-acquire rule discharges
    // nothing. LDAPR is outcome-identical and skips the store-buffer
    // drain the LDAR pays behind the STLR.
    cases.push(LintCase {
        name: "rel-reacquire+stlr+ldar".to_string(),
        program: Program {
            threads: vec![
                thread(vec![
                    Instr::store(0, 41),
                    Instr::store_rel(1, 1),
                    Instr::load_acq(0, 2),
                    Instr::load(1, 3),
                ]),
                thread(vec![
                    Instr::load_acq(0, 1),
                    Instr::load(1, 0),
                    Instr::store(3, 7),
                    Instr::store_rel(2, 1),
                ]),
            ],
            init: vec![],
        },
        // Seeing a flag must imply seeing the payload behind it, both ways.
        forbidden: Some(Box::new(|o| {
            (o.reg(0, 0) == 1 && o.reg(0, 1) != 7) || (o.reg(1, 0) == 1 && o.reg(1, 1) != 41)
        })),
    });

    // -- Implementation-sized kernels (appended; see module docs). -------
    // Lifted from the checked-in `.s` fixtures; the fixtures carry the
    // seeded findings (over-strong DSBs, stray DMB STs) in their source
    // text, where a reader can see them next to real instructions.

    // MCS handoff at the acceptance shape (113 instructions as seeded):
    // 5 lock bounces, each with a fenced 6-store critical section; the
    // prologue publish fence is a DSB (over-strong — a DMB discharges the
    // same store ordering) and the successor ends on a stray DMB st with
    // nothing left to order (redundant). The intent conditions on T1's
    // *first* handoff observation — the read the prologue fence protects;
    // the later flags are insulated by the per-round fences.
    {
        let (handoffs, payload) = (5, 4);
        let program = lift_fixture("mcs_handoff")
            .expect("checked-in mcs_handoff.s lifts")
            .program;
        let regs = mcs_payload_regs(handoffs, payload);
        cases.push(LintCase {
            name: "mcs-unrolled+dsb.full+stray-st".to_string(),
            program,
            forbidden: Some(Box::new(move |o| {
                o.reg(1, 0) == 1
                    && regs
                        .iter()
                        .enumerate()
                        .any(|(i, &r)| o.reg(1, r) != MCS_PAYLOAD_BASE + i as u64)
            })),
        });
    }

    // Pilot round-trip (70 instructions): three phases of same-word
    // request stores answered over a same-word response word, no barrier
    // load-bearing anywhere — plus one stray DMB st dropped into the
    // store chain, which single-copy atomicity and coherence make
    // redundant (the paper's Pilot point at function size). The intent is
    // coherence itself: each thread's same-word read sequence must be
    // non-decreasing.
    cases.push(LintCase {
        name: "pilot-unrolled+stray-st".to_string(),
        program: lift_fixture("pilot_roundtrip")
            .expect("checked-in pilot_roundtrip.s lifts")
            .program,
        forbidden: Some(Box::new(|o| {
            (0..4).any(|k| o.reg(0, k) > o.reg(0, k + 1) || o.reg(1, k) > o.reg(1, k + 1))
        })),
    });

    // Ticket-lock handoff lifted from `ticket_lock.s` (18 instructions —
    // the counted-loop fixture): over-strong `dsb ishst` publish, sound
    // `dmb ishld` acquire. The intent: the last grant poll reading the
    // final `now_serving` value implies the payload reads see the
    // published values.
    {
        let (rounds, payload) = (3, 2);
        let program = lift_fixture("ticket_lock")
            .expect("checked-in ticket_lock.s lifts")
            .program;
        let last = ticket_last_grant_reg(rounds);
        let regs = ticket_payload_regs(rounds, payload);
        cases.push(LintCase {
            name: "ticket-lifted+dsb.st+dmb.ld".to_string(),
            program,
            forbidden: Some(Box::new(move |o| {
                o.reg(1, last) == rounds as u64
                    && regs
                        .iter()
                        .enumerate()
                        .any(|(i, &r)| o.reg(1, r) != MCS_PAYLOAD_BASE + i as u64)
            })),
        });
    }

    // -- Delegation-lock handoffs (exp-dlock ports; appended). -----------
    // Each new design in `crates/locks` + `delegation_sim` reduces, at its
    // combiner/server → waiter boundary, to the same publish-then-flag
    // skeleton — seeded here with the fences the naive ports ship with.

    // Flat-combining publication: the combiner writes the response slot
    // then clears the request word. The port used a DSB ST where a plain
    // DMB ST orders the same two stores.
    cases.push(lock_handoff(
        "fc-publication+dsb.st+dmb.ld",
        Barrier::DsbSt,
        Barrier::DmbLd,
    ));

    // CC-Synch node handoff as ported: full fences on *both* sides of the
    // status-word publish — the textbook x86-minded port the module docs
    // call out. Store-side only needs ST ordering, the spinner LD.
    cases.push(lock_handoff(
        "ccsynch-status+dmb.full+dmb.full",
        Barrier::DmbFull,
        Barrier::DmbFull,
    ));

    // RCL request word: the server publishes the return value then clears
    // the dual-role request word; the client spins on it. Seeded with the
    // DSB the original server loop carried.
    cases.push(lock_handoff(
        "rcl-reqword+dsb.full+dmb.ld",
        Barrier::DsbFull,
        Barrier::DmbLd,
    ));

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_order_is_stable() {
        let a: Vec<String> = corpus().into_iter().map(|c| c.name).collect();
        let b: Vec<String> = corpus().into_iter().map(|c| c.name).collect();
        assert_eq!(a, b, "corpus order must be deterministic");
        let mut dedup = a.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "case names must be unique");
    }

    #[test]
    fn corpus_spans_all_three_families() {
        let names: Vec<String> = corpus().into_iter().map(|c| c.name).collect();
        assert!(names.iter().any(|n| n.starts_with("MP+")));
        assert!(names.iter().any(|n| n.contains("handoff")));
        assert!(names.iter().any(|n| n.contains("pilot")));
        assert!(names.len() >= 15, "corpus unexpectedly small: {names:?}");
    }

    #[test]
    fn threads_fit_one_mask_word_and_corpus_spans_both_sizes() {
        // Per-thread instruction counts must fit a 64-bit done block (the
        // symmetry canonicalizer's per-thread signature unit)...
        let mut oversized_total = 0usize;
        for case in corpus() {
            for t in &case.program.threads {
                assert!(t.instrs.len() <= 64, "{} thread too long", case.name);
            }
            let total: usize = case.program.threads.iter().map(|t| t.instrs.len()).sum();
            if total > 64 {
                oversized_total += 1;
            }
        }
        // ...while the corpus as a whole must exercise the multi-word
        // engine path on implementation-sized programs.
        assert!(
            oversized_total >= 2,
            "expected implementation-sized cases, found {oversized_total}"
        );
    }
}
