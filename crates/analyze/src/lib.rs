//! `armbar-lint`: a witness-backed static analyzer for ARM barrier usage.
//!
//! The paper's Table 3 tells you which order-preserving approach a given
//! requirement *needs*; this crate turns that advice into a checker that
//! inspects whole [`Program`](armbar_wmm::Program)s and reports, per
//! barrier site:
//!
//! * **redundant** — deleting the site provably changes no allowed outcome;
//! * **over-strong** — a cheaper approach (one-way DMB, acquire/release,
//!   or a constructed bogus dependency) discharges the same requirement;
//! * **missing** — the program's forbidden outcome is reachable as-is;
//! * **necessary** — the site is load-bearing, with the counterexample
//!   execution that proves it.
//!
//! # Verified rewrites
//!
//! The analyzer never trusts the advisor's table alone. Every *redundant*
//! and *over-strong* suggestion is applied to the program
//! ([`armbar_wmm::mutate`]) and the mutated program is re-run through the
//! exhaustive explorer; the suggestion is emitted only when the mutated
//! outcome set adds **nothing** to the original's (equality for removals,
//! subset-or-equal for substitutions). The resulting
//! [`Proof`](lint::Proof) — an outcome-set equality, a preservation diff,
//! or the concrete [`Witness`](armbar_wmm::witness::Witness) interleaving
//! that kills a rejected suggestion — ships with the finding, so a report
//! line is never a heuristic, always a theorem about the model.
//!
//! The [`replay`] module then prices each accepted rewrite on the
//! cycle-level simulator's four platform profiles, closing the loop from
//! static claim to dynamic estimate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod lint;
pub mod replay;
pub mod synth;

pub use corpus::{corpus, LintCase};
pub use lint::{analyze_case, analyze_corpus, Finding, FindingKind, Proof};
pub use replay::{replay_cycles, saved_cycles};
pub use synth::{chosen_point, pareto_fronts, synthesize, FrontPoint, Placement, SynthResult};
