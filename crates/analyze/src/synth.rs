//! Whole-program barrier-placement synthesis.
//!
//! `armbar-lint` judges each site in isolation; this module searches the
//! *joint* rewrite space — every combination of fence swaps,
//! acquire/release attachment, constructed `addr`/`data`/`ctrl`
//! dependencies, `LDAR`→`LDAPR` downgrades, and outright removals over all
//! sites at once — for the cheapest placement that provably preserves the
//! program's outcome set. Joint search matters because sites interact:
//! two fences can each be individually necessary yet jointly replaceable
//! by one dependency chain, and a removal that is safe alone can become
//! unsafe once a neighbouring fence has been weakened.
//!
//! # Search
//!
//! Branch-and-bound over one decision per site (its *options*, see below),
//! ordered cheapest-first by [`CostRank`]:
//!
//! 1. **Options.** For every site of the seed program, each candidate
//!    rewrite (strictly cheaper than what is there) is applied *alone*
//!    ([`Rewrite::apply`]) and verified against the memoized explorer —
//!    an option survives only if it admits no outcome the seed forbids.
//!    Keeping the site is always an option.
//! 2. **Bound.** Scores are per-site [`CostRank`] band indices summed over
//!    sites, so the score of any completion of a partial assignment is at
//!    least `partial + Σ (min option score of each undecided site)` — a
//!    separable, never-overestimating (admissible) lower bound. A subtree
//!    is cut when that bound cannot beat the incumbent best. Two dominance
//!    rules keep the space small without giving up optimality: a site
//!    whose *removal* is individually safe gets no other candidate (every
//!    substitute scores above `Free`, so a completion through it never
//!    beats the same completion through the removal or the search's final
//!    check of it), and options are visited cheapest-first so the first
//!    full descent already realizes the global lower bound.
//! 3. **Leaves.** A full assignment is composed with a [`RewritePlan`]
//!    (descending-index application, so no site index goes stale) and the
//!    composed program is re-explored: the placement is accepted only if
//!    its outcome set adds nothing to the seed's. Individually-safe
//!    options do *not* compose for free — this final machine check is what
//!    makes every emitted placement a theorem, not a heuristic.
//!
//! Every *verified* placement met along the way (the seed, each safe
//! single-site rewrite, each safe composed leaf) feeds a best-per-
//! barrier-count table, later priced per platform by [`pareto_fronts`]
//! through the cycle simulator ([`crate::replay::replay_cycles`]). The
//! seed itself is always a candidate point, so each platform's cheapest
//! synthesized placement is never dearer than the seed.
//!
//! Search effort is capped at [`LEAF_BUDGET`] verified leaves
//! (deterministically — DFS order is fixed), and `complete` reports
//! whether the cap was hit. Regardless of the cap, the result is never
//! worse than the best *single-site* rewrite: every individually-safe
//! option from step 1 is seeded into the incumbent table before the
//! search starts, which is exactly the space `armbar-lint` reports on.

use std::collections::BTreeMap;

use armbar_barriers::strength::cost_rank;
use armbar_barriers::{Acquire, Barrier, CostRank};
use armbar_sim::{Platform, PlatformKind};
use armbar_wmm::explore::explore;
use armbar_wmm::mutate::{barrier_sites, BarrierSite, Rewrite, RewritePlan, SiteKind};
use armbar_wmm::{MemoryModel, Program};

use crate::corpus::LintCase;
use crate::lint::ExploreFn;
use crate::replay::replay_cycles;

/// Verified-leaf budget per case: the DFS stops proposing *new* composed
/// placements after this many equivalence checks (seeded single-site
/// placements are not counted). Deterministic because the DFS order is.
pub const LEAF_BUDGET: usize = 2048;

/// One candidate decision at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthOption {
    /// The approach left standing at the site ([`Barrier::None`] = gone).
    pub approach: Barrier,
    /// The rewrite realizing it; `None` keeps the site as-is.
    pub rewrite: Option<Rewrite>,
    /// Cost band of `approach`.
    pub rank: CostRank,
}

impl SynthOption {
    fn score(&self) -> u32 {
        self.rank as u32
    }

    /// Does this option leave an order-preserving construct at the site?
    fn counts(&self) -> usize {
        usize::from(self.approach != Barrier::None)
    }
}

/// A site together with its individually-verified options, cheapest first.
#[derive(Debug, Clone)]
pub struct SiteOptions {
    /// The site in the seed program's coordinates.
    pub site: BarrierSite,
    /// Safe decisions at this site (always contains "keep").
    pub options: Vec<SynthOption>,
}

/// One fully-verified placement: a complete decision over every site.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Final approach per site, in [`barrier_sites`] order.
    pub choices: Vec<(BarrierSite, Barrier)>,
    /// The composed program realizing the choices.
    pub program: Program,
    /// Sum of per-site [`CostRank`] band indices.
    pub score: u32,
    /// Sites still carrying an order-preserving construct.
    pub barrier_count: usize,
    /// Outcomes of the seed this placement no longer reaches (`0` means
    /// the outcome sets are *equal*, not merely preserved).
    pub removed: usize,
}

impl Placement {
    /// `outcomes-equal` / `outcomes-preserved(-k)` — the machine-checked
    /// equivalence artifact class this placement carries.
    #[must_use]
    pub fn proof_label(&self) -> String {
        if self.removed == 0 {
            "outcomes-equal".to_string()
        } else {
            format!("outcomes-preserved(-{})", self.removed)
        }
    }

    /// Compact rendering of the *changed* sites, `seed` when none, e.g.
    /// `T0#1 DSB full->DMB st + T1#1 DMB ld->-`.
    #[must_use]
    pub fn label(&self) -> String {
        let changed: Vec<String> = self
            .choices
            .iter()
            .filter(|(site, after)| *after != site.kind.as_barrier())
            .map(|(site, after)| {
                let to = if *after == Barrier::None {
                    "-"
                } else {
                    after.mnemonic()
                };
                format!(
                    "T{}#{} {}->{}",
                    site.tid,
                    site.idx,
                    site.kind.as_barrier().mnemonic(),
                    to
                )
            })
            .collect();
        if changed.is_empty() {
            "seed".to_string()
        } else {
            changed.join(" + ")
        }
    }
}

/// The synthesis result for one case.
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// Case name.
    pub case: String,
    /// The seed program the search ran on.
    pub program: Program,
    /// Every site of the seed, with its verified options.
    pub sites: Vec<SiteOptions>,
    /// The all-keep placement (score of the program as given).
    pub seed: Placement,
    /// Cheapest verified placement overall (ties: fewer barriers, then
    /// first found — deterministic).
    pub best: Placement,
    /// Cheapest verified placement per barrier count, count ascending.
    pub by_count: Vec<Placement>,
    /// Composed placements the DFS verified through the explorer.
    pub leaves_checked: usize,
    /// Subtrees cut by the admissible bound.
    pub nodes_pruned: usize,
    /// Size of the full decision space (product of option counts).
    pub space: u64,
    /// `false` when [`LEAF_BUDGET`] truncated the search.
    pub complete: bool,
}

/// One point of a per-platform Pareto front over
/// `(barrier count, replay cycles)`.
#[derive(Debug, Clone)]
pub struct FrontPoint {
    /// Platform profile this point was priced on.
    pub platform: PlatformKind,
    /// Barriers the placement retains.
    pub barrier_count: usize,
    /// Static [`CostRank`] score of the placement.
    pub score: u32,
    /// Replay cycles on this platform.
    pub cycles: u64,
    /// Cycles saved relative to the seed placement (negative = dearer).
    pub saved_vs_seed: i64,
    /// Outcome-set proof class (see [`Placement::removed`]).
    pub removed: usize,
    /// `true` when this point *is* the seed placement.
    pub is_seed: bool,
    /// Human-readable changed-site rendering ([`Placement::label`]).
    pub label: String,
}

/// Enumerate and individually verify the options of every site of
/// `program`, cheapest first per site. `base` is the seed outcome set.
fn site_options(
    program: &Program,
    base: &armbar_wmm::OutcomeSet,
    explorer: ExploreFn,
) -> (Vec<SiteOptions>, Vec<(Rewrite, Program, usize)>) {
    let model = MemoryModel::ArmWmm;
    let mut out = Vec::new();
    let mut singles = Vec::new();
    for site in barrier_sites(program) {
        let orig = site.kind.as_barrier();
        let keep = SynthOption {
            approach: orig,
            rewrite: None,
            rank: cost_rank(orig),
        };
        let mut options = vec![keep];
        let mut candidates: Vec<Rewrite> = vec![Rewrite::Remove(site)];
        match site.kind {
            SiteKind::Fence(_) => {
                for cand in Barrier::ALL {
                    if cand != Barrier::None && cost_rank(cand) < cost_rank(orig) {
                        candidates.push(Rewrite::ReplaceFence(site, cand));
                    }
                }
            }
            SiteKind::Acquire => candidates.push(Rewrite::RewriteAcquire(site, Acquire::Pc)),
            _ => {}
        }
        for rewrite in candidates {
            let Some(mutated) = rewrite.apply(program) else {
                continue; // not constructible in this thread shape
            };
            let set = explorer(&mutated, model);
            let diff = base.diff(&set);
            if !diff.added.is_empty() {
                continue; // would widen on its own — rejected
            }
            options.push(SynthOption {
                approach: rewrite.approach(),
                rewrite: Some(rewrite),
                rank: cost_rank(rewrite.approach()),
            });
            singles.push((rewrite, mutated, diff.removed.len()));
            if rewrite.approach() == Barrier::None {
                // Removal is safe and scores `Free`: every substitute is
                // score-dominated, so don't even price them (substitution
                // programs are the *weakest* fenced variants and cost the
                // most to explore).
                break;
            }
        }
        // Cheapest first; the approach index breaks rank ties so the DFS
        // visit order (and hence tie-breaking) is deterministic.
        options.sort_by_key(|o| (o.score(), o.approach as u32));
        options.dedup_by_key(|o| (o.approach, o.rewrite));
        out.push(SiteOptions { site, options });
    }
    (out, singles)
}

/// Best-per-count incumbent table. Insertion keeps the *strictly* better
/// score, so the first placement found at a score wins ties — which,
/// combined with the fixed DFS order, makes results deterministic.
struct Incumbents {
    by_count: BTreeMap<usize, Placement>,
}

impl Incumbents {
    fn new() -> Self {
        Incumbents {
            by_count: BTreeMap::new(),
        }
    }

    fn offer(&mut self, p: Placement) {
        match self.by_count.get_mut(&p.barrier_count) {
            Some(cur) => {
                if p.score < cur.score {
                    *cur = p;
                }
            }
            None => {
                self.by_count.insert(p.barrier_count, p);
            }
        }
    }

    fn best_score(&self) -> u32 {
        self.by_count
            .values()
            .map(|p| p.score)
            .min()
            .expect("seed is always present")
    }
}

/// Depth-first branch-and-bound state.
struct Search<'a> {
    program: &'a Program,
    base: &'a armbar_wmm::OutcomeSet,
    explorer: ExploreFn,
    sites: &'a [SiteOptions],
    /// Admissible per-suffix bound: `min_score_rest[i]` = Σ cheapest
    /// option of sites `i..` — no completion of a prefix can score less.
    min_score_rest: Vec<u32>,
    /// Best verified score so far (starts at the best seeded placement).
    best_score: u32,
    incumbents: Incumbents,
    leaves_checked: usize,
    nodes_pruned: usize,
    complete: bool,
}

impl Search<'_> {
    fn dfs(&mut self, i: usize, picked: &mut Vec<SynthOption>, score: u32, count: usize) {
        if !self.complete {
            return;
        }
        let lb = score + self.min_score_rest[i];
        if lb >= self.best_score {
            self.nodes_pruned += 1;
            return;
        }
        if i == self.sites.len() {
            self.verify_leaf(picked, score, count);
            return;
        }
        for opt in &self.sites[i].options {
            picked.push(*opt);
            self.dfs(i + 1, picked, score + opt.score(), count + opt.counts());
            picked.pop();
        }
    }

    fn verify_leaf(&mut self, picked: &[SynthOption], score: u32, count: usize) {
        let rewrites: Vec<Rewrite> = picked.iter().filter_map(|o| o.rewrite).collect();
        if rewrites.is_empty() {
            return; // the seed placement is pre-seeded
        }
        if rewrites.len() == 1 {
            return; // single-site placements are pre-seeded from the filter
        }
        if self.leaves_checked >= LEAF_BUDGET {
            self.complete = false;
            return;
        }
        self.leaves_checked += 1;
        let Some(composed) = RewritePlan::from_rewrites(rewrites).apply(self.program) else {
            return; // composition not constructible (e.g. two STLR targets)
        };
        let set = (self.explorer)(&composed, MemoryModel::ArmWmm);
        let diff = self.base.diff(&set);
        if !diff.added.is_empty() {
            return; // individually-safe options composed unsafely
        }
        self.best_score = self.best_score.min(score);
        self.incumbents.offer(Placement {
            choices: self
                .sites
                .iter()
                .zip(picked)
                .map(|(s, o)| (s.site, o.approach))
                .collect(),
            program: composed,
            score,
            barrier_count: count,
            removed: diff.removed.len(),
        });
    }
}

/// Synthesize the cheapest outcome-preserving barrier placement for
/// `case` with the default (memoized DPOR) explorer.
#[must_use]
pub fn synthesize(case: &LintCase) -> SynthResult {
    synthesize_with(case, explore)
}

/// [`synthesize`] with an explicit exploration backend.
#[must_use]
pub fn synthesize_with(case: &LintCase, explorer: ExploreFn) -> SynthResult {
    let program = &case.program;
    let base = explorer(program, MemoryModel::ArmWmm);
    let (sites, singles) = site_options(program, &base, explorer);

    let seed_choices: Vec<(BarrierSite, Barrier)> = sites
        .iter()
        .map(|s| (s.site, s.site.kind.as_barrier()))
        .collect();
    let seed = Placement {
        choices: seed_choices.clone(),
        program: program.clone(),
        score: seed_choices.iter().map(|(_, b)| cost_rank(*b) as u32).sum(),
        barrier_count: seed_choices.len(),
        removed: 0,
    };

    let mut incumbents = Incumbents::new();
    incumbents.offer(seed.clone());
    // Seed every individually-verified single-site rewrite: this is the
    // space `armbar-lint` reports on, so whatever the joint search does
    // the result is at least as cheap as any accepted lint suggestion.
    for (rewrite, mutated, removed) in singles {
        let choices: Vec<(BarrierSite, Barrier)> = seed_choices
            .iter()
            .map(|&(site, orig)| {
                if site == rewrite.site() {
                    (site, rewrite.approach())
                } else {
                    (site, orig)
                }
            })
            .collect();
        incumbents.offer(Placement {
            score: choices.iter().map(|(_, b)| cost_rank(*b) as u32).sum(),
            barrier_count: choices.iter().filter(|(_, b)| *b != Barrier::None).count(),
            choices,
            program: mutated,
            removed,
        });
    }

    let n = sites.len();
    let mut min_score_rest = vec![0u32; n + 1];
    for i in (0..n).rev() {
        let min_score = sites[i].options.iter().map(SynthOption::score).min();
        min_score_rest[i] = min_score_rest[i + 1] + min_score.unwrap_or(0);
    }

    let best_score = incumbents.best_score();
    let mut search = Search {
        program,
        base: &base,
        explorer,
        sites: &sites,
        min_score_rest,
        best_score,
        incumbents,
        leaves_checked: 0,
        nodes_pruned: 0,
        complete: true,
    };
    search.dfs(0, &mut Vec::with_capacity(n), 0, 0);

    let space = sites
        .iter()
        .map(|s| s.options.len() as u64)
        .product::<u64>();
    let Search {
        incumbents,
        leaves_checked,
        nodes_pruned,
        complete,
        ..
    } = search;
    let by_count: Vec<Placement> = incumbents.by_count.into_values().collect();
    let best = by_count
        .iter()
        .min_by_key(|p| (p.score, p.barrier_count))
        .expect("seed placement is always present")
        .clone();
    SynthResult {
        case: case.name.clone(),
        program: program.clone(),
        sites,
        seed,
        best,
        by_count,
        leaves_checked,
        nodes_pruned,
        space,
        complete,
    }
}

/// Price `result` on every platform profile and keep, per platform, the
/// Pareto-optimal points over `(barrier count, replay cycles)` — count
/// ascending, cycles strictly decreasing. The seed placement competes, so
/// the min-cycles point of every platform is never dearer than the seed.
#[must_use]
pub fn pareto_fronts(result: &SynthResult, iterations: u64) -> Vec<FrontPoint> {
    let mut out = Vec::new();
    for kind in PlatformKind::ALL {
        let seed_cycles = replay_cycles(&result.seed.program, Platform::of(kind), iterations);
        // Candidates: every per-count incumbent, plus the seed itself
        // (its bucket may hold a cheaper same-count placement).
        let mut candidates: Vec<(bool, &Placement, u64)> = result
            .by_count
            .iter()
            .map(|p| {
                let cycles = replay_cycles(&p.program, Platform::of(kind), iterations);
                (false, p, cycles)
            })
            .collect();
        if !result
            .by_count
            .iter()
            .any(|p| p.choices == result.seed.choices)
        {
            candidates.push((true, &result.seed, seed_cycles));
        }
        candidates
            .sort_by_key(|(is_seed, p, cycles)| (p.barrier_count, *cycles, p.score, *is_seed));
        let mut floor = u64::MAX;
        for (_, p, cycles) in candidates {
            if cycles >= floor {
                continue; // dominated by a smaller-or-equal-count point
            }
            floor = cycles;
            out.push(FrontPoint {
                platform: kind,
                barrier_count: p.barrier_count,
                score: p.score,
                cycles,
                saved_vs_seed: i64::try_from(seed_cycles).unwrap_or(i64::MAX)
                    - i64::try_from(cycles).unwrap_or(i64::MAX),
                removed: p.removed,
                is_seed: p.choices == result.seed.choices,
                label: p.label(),
            });
        }
    }
    out
}

/// The min-cycles point of `platform`'s front — what the synthesizer
/// would actually deploy there. Guaranteed no dearer than the seed.
#[must_use]
pub fn chosen_point(front: &[FrontPoint], platform: PlatformKind) -> Option<&FrontPoint> {
    front
        .iter()
        .filter(|p| p.platform == platform)
        .min_by_key(|p| (p.cycles, p.barrier_count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_wmm::litmus::message_passing;

    fn case(name: &str, program: Program) -> LintCase {
        LintCase {
            name: name.to_string(),
            program,
            forbidden: None,
        }
    }

    #[test]
    fn dsb_mp_synthesizes_to_the_cheap_placement() {
        let p = message_passing(Barrier::DsbFull, Barrier::DsbFull).program;
        let r = synthesize(&case("mp-dsb", p));
        assert!(r.complete);
        assert!(
            r.best.score < r.seed.score,
            "two DSB fulls must admit a cheaper placement"
        );
        assert_eq!(r.best.removed, 0, "MP rewrites preserve exactly");
        // The joint optimum keeps both orderings: never fewer than 2 sites
        // retained, and the forbidden outcome stays forbidden.
        let base = explore(&r.seed.program, MemoryModel::ArmWmm);
        let opt = explore(&r.best.program, MemoryModel::ArmWmm);
        assert!(base.diff(&opt).added.is_empty());
    }

    #[test]
    fn placements_never_widen_or_exceed_seed_score() {
        let p = message_passing(Barrier::DmbFull, Barrier::DmbFull).program;
        let r = synthesize(&case("mp-full", p));
        let base = explore(&r.seed.program, MemoryModel::ArmWmm);
        for placement in &r.by_count {
            assert!(placement.score <= r.seed.score);
            let set = explore(&placement.program, MemoryModel::ArmWmm);
            let diff = base.diff(&set);
            assert!(diff.added.is_empty(), "{} widened", placement.label());
            assert_eq!(diff.removed.len(), placement.removed);
        }
    }

    #[test]
    fn redundant_fences_are_jointly_removed() {
        // Single-thread program: every fence is redundant (no other thread
        // observes the stores), so the optimum strips all of them at once.
        let p = Program {
            threads: vec![armbar_wmm::Thread {
                instrs: vec![
                    armbar_wmm::Instr::store(0, 1),
                    armbar_wmm::Instr::Fence(Barrier::DmbSt),
                    armbar_wmm::Instr::store(1, 1),
                    armbar_wmm::Instr::Fence(Barrier::DsbFull),
                    armbar_wmm::Instr::store(2, 1),
                ],
            }],
            init: vec![],
        };
        let r = synthesize(&case("solo", p));
        assert_eq!(r.best.score, 0, "all fences must go");
        assert_eq!(r.best.barrier_count, 0);
        assert_eq!(r.best.removed, 0);
        assert!(r.complete);
    }

    #[test]
    fn fronts_cover_all_platforms_and_respect_the_seed() {
        let p = message_passing(Barrier::DsbFull, Barrier::DmbLd).program;
        let r = synthesize(&case("mp", p));
        let front = pareto_fronts(&r, 20);
        for kind in PlatformKind::ALL {
            let points: Vec<&FrontPoint> = front.iter().filter(|f| f.platform == kind).collect();
            assert!(!points.is_empty(), "{kind:?} missing from the front");
            // Strictly decreasing cycles with ascending count.
            for w in points.windows(2) {
                assert!(w[0].barrier_count <= w[1].barrier_count);
                assert!(w[0].cycles > w[1].cycles);
            }
            let chosen = chosen_point(&front, kind).expect("non-empty front");
            assert!(chosen.saved_vs_seed >= 0, "chosen point dearer than seed");
        }
    }

    #[test]
    fn programs_without_sites_synthesize_to_themselves() {
        let p = message_passing(Barrier::None, Barrier::None).program;
        let r = synthesize(&case("bare", p));
        assert_eq!(r.best.score, 0);
        assert_eq!(r.best.barrier_count, 0);
        assert_eq!(r.space, 1);
        assert!(r.complete);
        assert_eq!(r.best.label(), "seed");
    }

    #[test]
    fn delegation_handoffs_synthesize_positive_savings() {
        // The exp-dlock handoff cases (naive-port fences) must admit a
        // strictly cheaper verified placement, and the chosen Pareto point
        // must save replay cycles over the seed on every platform.
        let dlock = [
            "fc-publication+dsb.st+dmb.ld",
            "ccsynch-status+dmb.full+dmb.full",
            "rcl-reqword+dsb.full+dmb.ld",
        ];
        let cases = crate::corpus::corpus();
        for name in dlock {
            let c = cases
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing from corpus"));
            let lint_case = case(name, c.program.clone());
            let r = synthesize(&lint_case);
            assert!(r.complete, "{name}: search truncated");
            assert!(
                r.best.score < r.seed.score,
                "{name}: naive port must admit a cheaper placement"
            );
            let front = pareto_fronts(&r, 20);
            for kind in PlatformKind::ALL {
                let chosen = chosen_point(&front, kind).expect("non-empty front");
                assert!(
                    chosen.saved_vs_seed > 0,
                    "{name}: no cycle saving on {kind:?}"
                );
            }
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let p = message_passing(Barrier::DsbFull, Barrier::DsbFull).program;
        let a = synthesize(&case("mp", p.clone()));
        let b = synthesize(&case("mp", p));
        assert_eq!(a.best.choices, b.best.choices);
        assert_eq!(a.leaves_checked, b.leaves_checked);
        assert_eq!(a.nodes_pruned, b.nodes_pruned);
        let fa = pareto_fronts(&a, 20);
        let fb = pareto_fronts(&b, 20);
        assert_eq!(fa.len(), fb.len());
        for (x, y) in fa.iter().zip(&fb) {
            assert_eq!(
                (x.cycles, x.score, x.barrier_count),
                (y.cycles, y.score, y.barrier_count)
            );
        }
    }
}
