//! `armbar-lint` — run the witness-backed barrier analyzer over the
//! built-in corpus and print every finding with its proof artifact.
//!
//! ```text
//! armbar-lint [FILTER]
//! ```
//!
//! With a `FILTER` argument only cases whose name contains the substring
//! are analyzed (e.g. `armbar-lint MP`). Exit status is 1 when any
//! redundant, over-strong, or missing finding is reported (necessary
//! verdicts are informational), so the binary doubles as a CI gate.

use armbar_analyze::corpus::corpus;
use armbar_analyze::lint::{analyze_case, FindingKind, Proof};
use armbar_analyze::replay::saved_cycles;
use armbar_sim::PlatformKind;

/// Iterations used when pricing a rewrite on the simulator.
const REPLAY_ITERS: u64 = 200;

fn main() {
    let filter = std::env::args().nth(1);
    let cases: Vec<_> = corpus()
        .into_iter()
        .filter(|c| filter.as_ref().is_none_or(|f| c.name.contains(f)))
        .collect();
    if cases.is_empty() {
        eprintln!("no corpus case matches filter {filter:?}");
        std::process::exit(2);
    }

    let mut actionable = 0usize;
    for case in &cases {
        let findings = analyze_case(case);
        println!("== {} ({} findings)", case.name, findings.len());
        for f in &findings {
            let suggestion = match (f.kind, f.suggestion) {
                (FindingKind::Redundant, _) => "delete".to_string(),
                (_, Some(s)) => format!("use {s}"),
                (FindingKind::Missing, None) => "add ordering".to_string(),
                (_, None) => "keep".to_string(),
            };
            println!(
                "  [{:<11}] {:<6} {:<10} -> {}{}",
                f.kind.label(),
                f.site_label(),
                f.original.to_string(),
                suggestion,
                if f.caveat { "  (measure first)" } else { "" },
            );
            match &f.proof {
                Proof::OutcomesEqual {
                    states_base,
                    states_mutated,
                } => println!(
                    "      proof: outcome sets equal ({} outcomes; {} vs {} states)",
                    f.outcomes_base, states_base, states_mutated
                ),
                Proof::OutcomesPreserved { removed } => println!(
                    "      proof: no outcome added, {removed} removed ({} -> {} outcomes)",
                    f.outcomes_base, f.outcomes_after
                ),
                Proof::CounterExample(w) => {
                    let label = if f.kind == FindingKind::Missing {
                        "forbidden outcome reachable"
                    } else {
                        "removal admits new outcome"
                    };
                    println!("      witness ({label}):");
                    for line in w.render(&case.program).lines() {
                        println!("      {line}");
                    }
                }
            }
            if matches!(f.kind, FindingKind::Redundant | FindingKind::OverStrong) {
                actionable += 1;
                if let Some(rewritten) = &f.rewritten {
                    let saved = saved_cycles(&case.program, rewritten, REPLAY_ITERS);
                    let per: Vec<String> = PlatformKind::ALL
                        .iter()
                        .zip(saved)
                        .map(|(k, s)| format!("{}: {s:+}", k.name()))
                        .collect();
                    println!(
                        "      simulated cycles saved over {REPLAY_ITERS} iterations — {}",
                        per.join(", ")
                    );
                }
            }
        }
        for f in &findings {
            if f.kind == FindingKind::Missing {
                actionable += 1;
            }
        }
    }
    println!(
        "\n{} case(s), {} actionable finding(s)",
        cases.len(),
        actionable
    );
    if actionable > 0 {
        std::process::exit(1);
    }
}
