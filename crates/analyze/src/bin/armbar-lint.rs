//! `armbar-lint` — run the witness-backed barrier analyzer over the
//! built-in corpus, or over a real AArch64 assembly file, and print every
//! finding with its proof artifact.
//!
//! ```text
//! armbar-lint [FILTER]
//! armbar-lint <file.s>
//! ```
//!
//! An argument naming an existing file (or ending in `.s`) is lifted with
//! the `armbar-extract` front-end — spin loops bounded-unrolled, counted
//! loops constant-folded, dependency idioms recovered — and analyzed like
//! a corpus case (without an intent predicate: the file does not say
//! which outcomes its author forbids, so only redundant/over-strong/
//! necessary verdicts are produced, not missing-barrier ones). Any other
//! argument filters the built-in corpus by substring (e.g.
//! `armbar-lint MP`).
//!
//! Exit status: 0 when nothing actionable was found, 1 when any
//! redundant, over-strong, or missing finding is reported (necessary
//! verdicts are informational) — so the binary doubles as a CI gate — 2
//! when a corpus filter matches nothing, and 3 when an assembly file
//! cannot be read or lifted (the diagnostic carries `line:col`).

use armbar_analyze::corpus::{corpus, LintCase};
use armbar_analyze::lint::{analyze_case, FindingKind, Proof};
use armbar_analyze::replay::saved_cycles;
use armbar_sim::PlatformKind;

/// Iterations used when pricing a rewrite on the simulator.
const REPLAY_ITERS: u64 = 200;

/// Exit status for unreadable or unliftable assembly input.
const EXIT_PARSE: i32 = 3;

/// Analyze one case, print its report, and count its actionable findings.
fn report_case(case: &LintCase) -> usize {
    let mut actionable = 0usize;
    let findings = analyze_case(case);
    println!("== {} ({} findings)", case.name, findings.len());
    for f in &findings {
        let suggestion = match (f.kind, f.suggestion) {
            (FindingKind::Redundant, _) => "delete".to_string(),
            (_, Some(s)) => format!("use {s}"),
            (FindingKind::Missing, None) => "add ordering".to_string(),
            (_, None) => "keep".to_string(),
        };
        println!(
            "  [{:<11}] {:<6} {:<10} -> {}{}",
            f.kind.label(),
            f.site_label(),
            f.original.to_string(),
            suggestion,
            if f.caveat { "  (measure first)" } else { "" },
        );
        match &f.proof {
            Proof::OutcomesEqual {
                states_base,
                states_mutated,
            } => println!(
                "      proof: outcome sets equal ({} outcomes; {} vs {} states)",
                f.outcomes_base, states_base, states_mutated
            ),
            Proof::OutcomesPreserved { removed } => println!(
                "      proof: no outcome added, {removed} removed ({} -> {} outcomes)",
                f.outcomes_base, f.outcomes_after
            ),
            Proof::CounterExample(w) => {
                let label = if f.kind == FindingKind::Missing {
                    "forbidden outcome reachable"
                } else {
                    "removal admits new outcome"
                };
                println!("      witness ({label}):");
                for line in w.render(&case.program).lines() {
                    println!("      {line}");
                }
            }
        }
        if matches!(f.kind, FindingKind::Redundant | FindingKind::OverStrong) {
            actionable += 1;
            if let Some(rewritten) = &f.rewritten {
                let saved = saved_cycles(&case.program, rewritten, REPLAY_ITERS);
                let per: Vec<String> = PlatformKind::ALL
                    .iter()
                    .zip(saved)
                    .map(|(k, s)| format!("{}: {s:+}", k.name()))
                    .collect();
                println!(
                    "      simulated cycles saved over {REPLAY_ITERS} iterations — {}",
                    per.join(", ")
                );
            }
        }
    }
    actionable
        + findings
            .iter()
            .filter(|f| f.kind == FindingKind::Missing)
            .count()
}

/// Lift an assembly file into a lint case, reporting failures on stderr
/// with the `path:line:col: message` shape editors understand.
fn load_asm_case(path: &str) -> Result<LintCase, String> {
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let lifted = armbar_extract::lift(&src).map_err(|e| format!("{path}:{e}"))?;
    println!(
        "lifted {path}: {} thread(s), {} instruction(s), {} symbol(s)",
        lifted.program.threads.len(),
        lifted.total_instrs(),
        lifted.symbols.len()
    );
    for sym in &lifted.symbols {
        let vis = match sym.owner {
            Some(t) => format!("private to T{t}"),
            None => "shared".to_string(),
        };
        let init = sym.init.map(|v| format!(" = {v}")).unwrap_or_default();
        println!("  symbol {} @ m{}{} ({vis})", sym.name, sym.loc, init);
    }
    Ok(LintCase {
        name: path.to_string(),
        program: lifted.program,
        forbidden: None,
    })
}

fn main() {
    let arg = std::env::args().nth(1);

    // A real file (or a `.s` path, so typos still get the file-mode
    // diagnostic instead of an empty corpus filter) is lifted.
    if let Some(path) = arg
        .as_ref()
        .filter(|a| a.ends_with(".s") || std::path::Path::new(a).is_file())
    {
        match load_asm_case(path) {
            Ok(case) => {
                let actionable = report_case(&case);
                println!("\n1 case(s), {actionable} actionable finding(s)");
                if actionable > 0 {
                    std::process::exit(1);
                }
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(EXIT_PARSE);
            }
        }
        return;
    }

    let filter = arg;
    let cases: Vec<_> = corpus()
        .into_iter()
        .filter(|c| filter.as_ref().is_none_or(|f| c.name.contains(f)))
        .collect();
    if cases.is_empty() {
        eprintln!("no corpus case matches filter {filter:?}");
        std::process::exit(2);
    }

    let mut actionable = 0usize;
    for case in &cases {
        actionable += report_case(case);
    }
    println!(
        "\n{} case(s), {} actionable finding(s)",
        cases.len(),
        actionable
    );
    if actionable > 0 {
        std::process::exit(1);
    }
}
