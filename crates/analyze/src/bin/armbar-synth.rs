//! `armbar-synth` — whole-program barrier-placement synthesis over the
//! built-in corpus: branch-and-bound the joint rewrite space of every
//! case for the cheapest outcome-preserving placement, then price the
//! per-barrier-count frontier on all four platform profiles.
//!
//! ```text
//! armbar-synth [FILTER]
//! ```
//!
//! With a `FILTER` argument only cases whose name contains the substring
//! are synthesized. Exit status is 1 when any case admits a placement
//! strictly cheaper than its seed (there is work for the optimizer to
//! do), so the binary doubles as a CI gate like `armbar-lint`.

use armbar_analyze::corpus::corpus;
use armbar_analyze::synth::{chosen_point, pareto_fronts, synthesize};
use armbar_sim::PlatformKind;

/// Iterations used when pricing a placement on the simulator.
const REPLAY_ITERS: u64 = 200;

fn main() {
    let filter = std::env::args().nth(1);
    let cases: Vec<_> = corpus()
        .into_iter()
        .filter(|c| filter.as_ref().is_none_or(|f| c.name.contains(f)))
        .collect();
    if cases.is_empty() {
        eprintln!("no corpus case matches filter {filter:?}");
        std::process::exit(2);
    }

    let mut improvable = 0usize;
    for case in &cases {
        let r = synthesize(case);
        println!(
            "== {} ({} sites, space {}, {} leaves checked, {} subtrees pruned{})",
            case.name,
            r.sites.len(),
            r.space,
            r.leaves_checked,
            r.nodes_pruned,
            if r.complete { "" } else { ", budget hit" },
        );
        println!(
            "   seed: score {} with {} barrier(s)",
            r.seed.score, r.seed.barrier_count
        );
        println!(
            "   best: score {} with {} barrier(s) — {} [{}]",
            r.best.score,
            r.best.barrier_count,
            r.best.label(),
            r.best.proof_label(),
        );
        if r.best.score < r.seed.score {
            improvable += 1;
        }
        let front = pareto_fronts(&r, REPLAY_ITERS);
        for kind in PlatformKind::ALL {
            let points: Vec<String> = front
                .iter()
                .filter(|p| p.platform == kind)
                .map(|p| {
                    format!(
                        "({} barrier(s), {} cyc, {:+} vs seed, {})",
                        p.barrier_count, p.cycles, p.saved_vs_seed, p.removed
                    )
                })
                .collect();
            let chosen = chosen_point(&front, kind).expect("front never empty");
            println!(
                "   {:<12} front: {} -> deploy {}",
                kind.name(),
                points.join(" "),
                chosen.label
            );
        }
    }
    println!(
        "\n{} case(s), {} with cheaper placements",
        cases.len(),
        improvable
    );
    if improvable > 0 {
        std::process::exit(1);
    }
}
