//! The analyzer: classify every barrier site of a program and prove it.
//!
//! For each site the verdict pipeline is:
//!
//! 1. **Delete it** and re-run the exhaustive explorer. Removal only ever
//!    relaxes the ordering relation, so the mutated outcome set is a
//!    superset of the original; when it is *equal* the site is
//!    [`FindingKind::Redundant`] and the equality itself is the proof.
//! 2. Otherwise the site is **necessary**, and the first outcome the
//!    mutation admits yields a concrete [`Witness`] execution — the
//!    counterexample that would kill any removal suggestion.
//! 3. A necessary *fence* is then tested for [`FindingKind::OverStrong`]:
//!    the advisor's Table-3 recommendation for the ordering requirement
//!    the fence actually discharges is rewritten into the program
//!    ([`replace_fence`]) and re-verified — the substitute is suggested
//!    only when its outcome set adds nothing to the original's.
//! 4. Independently, when the program's intent predicate is reachable in
//!    the unmutated program, the case is [`FindingKind::Missing`] ordering
//!    and the witness interleaving is the diagnostic.
//!
//! Every emitted finding therefore carries a machine-checked [`Proof`];
//! nothing is reported on the advisor's word alone.

use armbar_barriers::advisor::{recommend, Approach, Multiplicity, OrderReq};
use armbar_barriers::strength::cost_rank;
use armbar_barriers::{AccessType, Acquire, Barrier, CostRank};
use armbar_wmm::explore::explore;
use armbar_wmm::mutate::{
    barrier_sites, remove_site, replace_fence, rewrite_acquire, BarrierSite, SiteKind,
};
use armbar_wmm::witness::{find_witness, Witness};
use armbar_wmm::{MemoryModel, Program};

use crate::corpus::LintCase;

/// The verdict classes `armbar-lint` emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Deleting the site provably changes nothing: the mutated program's
    /// outcome set equals the original's.
    Redundant,
    /// A cheaper approach discharges the same requirement: the rewritten
    /// program's outcome set adds nothing to the original's.
    OverStrong,
    /// The program's forbidden intent is reachable as-is: ordering is
    /// missing (racy), witness attached.
    Missing,
    /// The site is load-bearing and no cheaper verified substitute was
    /// found; the witness shows what breaks without it.
    Necessary,
}

impl FindingKind {
    /// Stable lowercase label used in reports and `lint.csv`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::Redundant => "redundant",
            FindingKind::OverStrong => "over-strong",
            FindingKind::Missing => "missing",
            FindingKind::Necessary => "necessary",
        }
    }
}

/// The machine-checked artifact backing a [`Finding`].
#[derive(Debug, Clone)]
pub enum Proof {
    /// Outcome sets are identical (removal changes nothing). Carries the
    /// explorer's state counts for the base and mutated runs.
    OutcomesEqual {
        /// DFS states of the original program.
        states_base: usize,
        /// DFS states of the mutated program.
        states_mutated: usize,
    },
    /// The rewritten program admits no outcome the original forbids
    /// (`added == 0`); it may shrink the set (`removed` outcomes fewer).
    OutcomesPreserved {
        /// Outcomes of the original that the rewrite no longer reaches.
        removed: usize,
    },
    /// A concrete execution reaching the outcome in question.
    CounterExample(Witness),
}

/// One verdict about one site (or, for [`FindingKind::Missing`], about a
/// whole case).
pub struct Finding {
    /// Corpus case name.
    pub case: String,
    /// The site, `None` for case-level missing-ordering findings.
    pub site: Option<BarrierSite>,
    /// Verdict.
    pub kind: FindingKind,
    /// The approach currently at the site (`Barrier::None` when missing).
    pub original: Barrier,
    /// Suggested replacement: `Barrier::None` = delete (redundant),
    /// `Some` cheaper approach (over-strong), `None` = keep / add ordering.
    pub suggestion: Option<Barrier>,
    /// The suggestion carries the advisor's measure-first caveat (STLR).
    pub caveat: bool,
    /// Cost band of the original approach.
    pub rank_before: CostRank,
    /// Cost band after applying the suggestion (unchanged when none).
    pub rank_after: CostRank,
    /// Outcome/state counts: original program.
    pub outcomes_base: usize,
    /// Outcome count after the suggested mutation (base when none).
    pub outcomes_after: usize,
    /// Outcomes the mutation would add (always 0 for emitted suggestions
    /// on redundant/over-strong; positive for the necessary-site
    /// counterexample diff).
    pub added: usize,
    /// Outcomes the mutation removes.
    pub removed: usize,
    /// DFS states: original program.
    pub states_base: usize,
    /// DFS states after the mutation (base when none).
    pub states_after: usize,
    /// Subtrees the explorer pruned on the original program (sleep-set
    /// DPOR skips + visited-set hits; deterministic, like `states_base`).
    pub pruned_base: usize,
    /// Subtrees pruned on the mutated program (base when none).
    pub pruned_after: usize,
    /// The artifact that proves the verdict.
    pub proof: Proof,
    /// The program with the suggestion applied (redundant/over-strong
    /// only) — what the replay harness simulates.
    pub rewritten: Option<Program>,
}

impl Finding {
    /// `T0#1`-style site label, `-` for case-level findings.
    #[must_use]
    pub fn site_label(&self) -> String {
        self.site
            .map_or_else(|| "-".to_string(), |s| format!("T{}#{}", s.tid, s.idx))
    }

    /// Compact `steps>steps` rendering of a witness proof, empty for
    /// equality proofs (`lint.csv`'s proof column).
    #[must_use]
    pub fn proof_label(&self) -> String {
        match &self.proof {
            Proof::OutcomesEqual { .. } => "outcomes-equal".to_string(),
            Proof::OutcomesPreserved { removed } => format!("outcomes-preserved(-{removed})"),
            Proof::CounterExample(w) => {
                let steps: Vec<String> = w
                    .steps
                    .iter()
                    .map(|s| format!("T{}#{}", s.tid, s.idx))
                    .collect();
                format!("witness:{}", steps.join(">"))
            }
        }
    }
}

/// The ordering requirement a fence at `site` discharges, derived from
/// the accesses around it: the earlier side is the access class before
/// the fence in program order, the later side the class after it
/// (mixed classes become the table's `Any`). `None` when the fence has
/// no access on one side — it orders nothing and will already have been
/// caught as redundant.
fn fence_requirement(program: &Program, site: BarrierSite) -> Option<OrderReq> {
    let instrs = &program.threads[site.tid].instrs;
    let side = |range: &mut dyn Iterator<Item = usize>| -> (Option<AccessType>, usize) {
        let mut kinds = Vec::new();
        for i in range {
            if let Some(t) = instrs[i].access_type() {
                kinds.push(t);
            }
        }
        let uniform = kinds
            .iter()
            .all(|&k| k == kinds[0])
            .then(|| kinds.first().copied())
            .flatten();
        (uniform, kinds.len())
    };
    let (from, n_from) = side(&mut (0..site.idx));
    let (to, n_to) = side(&mut (site.idx + 1..instrs.len()));
    if n_from == 0 || n_to == 0 {
        return None;
    }
    let deps_feasible = instrs[..site.idx]
        .iter()
        .any(|i| matches!(i.access_type(), Some(AccessType::Load)));
    Some(OrderReq {
        from,
        to,
        to_multiplicity: if n_to == 1 {
            Multiplicity::One
        } else {
            Multiplicity::Many
        },
        deps_feasible,
        // A fence's surroundings cannot show whether SC ordering is needed,
        // so the advisor is queried conservatively; RCpc enters through the
        // dedicated acquire-site downgrade below, which proves equality.
        sc_required: true,
    })
}

/// Advisor candidates for `req` that are strictly cheaper than `orig`,
/// cheapest first, with the measure-first caveat preserved.
fn cheaper_candidates(req: OrderReq, orig: Barrier) -> Vec<(Barrier, bool)> {
    let rec = recommend(req);
    let mut out: Vec<(Barrier, bool)> = Vec::new();
    for a in rec.preferred.iter().chain(&rec.alternatives) {
        let (b, caveat) = match a {
            Approach::Use(b) => (*b, false),
            Approach::MeasureAgainst { candidate, .. } => (*candidate, true),
        };
        if cost_rank(b) < cost_rank(orig) && !out.iter().any(|(x, _)| *x == b) {
            out.push((b, caveat));
        }
    }
    out.sort_by_key(|(b, _)| cost_rank(*b));
    out
}

/// The exploration backend `analyze_case_with` runs: same signature as
/// [`explore`]. Benchmarks pass [`armbar_wmm::explore_oracle`] to price
/// the whole pipeline on the pre-DPOR explorer.
pub type ExploreFn = fn(&Program, MemoryModel) -> armbar_wmm::OutcomeSet;

/// Analyze one case: every site classified, plus the case-level missing
/// verdict, in deterministic (site, then kind) order. Uses the default
/// (memoized DPOR) explorer.
#[must_use]
pub fn analyze_case(case: &LintCase) -> Vec<Finding> {
    analyze_case_with(case, explore)
}

/// [`analyze_case`] with an explicit exploration backend.
#[must_use]
pub fn analyze_case_with(case: &LintCase, explorer: ExploreFn) -> Vec<Finding> {
    let model = MemoryModel::ArmWmm;
    let base = explorer(&case.program, model);
    let mut findings = Vec::new();

    // Case-level: is the forbidden intent reachable right now?
    if let Some(forbidden) = &case.forbidden {
        if base.any(|o| forbidden(o)) {
            let w = find_witness(&case.program, model, |o| forbidden(o))
                .expect("explorer says reachable, witness search must agree");
            debug_assert_eq!(
                w.replay(&case.program, model).as_ref(),
                Some(&w.outcome),
                "missing-ordering witness must replay"
            );
            findings.push(Finding {
                case: case.name.clone(),
                site: None,
                kind: FindingKind::Missing,
                original: Barrier::None,
                suggestion: None,
                caveat: false,
                rank_before: CostRank::Free,
                rank_after: CostRank::Free,
                outcomes_base: base.len(),
                outcomes_after: base.len(),
                added: 0,
                removed: 0,
                states_base: base.states_visited,
                states_after: base.states_visited,
                pruned_base: base.states_pruned,
                pruned_after: base.states_pruned,
                proof: Proof::CounterExample(w),
                rewritten: None,
            });
        }
    }

    for site in barrier_sites(&case.program) {
        let orig = site.kind.as_barrier();
        let cut = remove_site(&case.program, site);
        let cut_set = explorer(&cut, model);
        let diff = base.diff(&cut_set);
        debug_assert!(
            diff.removed.is_empty(),
            "removal must only relax the outcome set"
        );
        if diff.is_equal() {
            findings.push(Finding {
                case: case.name.clone(),
                site: Some(site),
                kind: FindingKind::Redundant,
                original: orig,
                suggestion: Some(Barrier::None),
                caveat: false,
                rank_before: cost_rank(orig),
                rank_after: CostRank::Free,
                outcomes_base: base.len(),
                outcomes_after: cut_set.len(),
                added: 0,
                removed: 0,
                states_base: base.states_visited,
                states_after: cut_set.states_visited,
                pruned_base: base.states_pruned,
                pruned_after: cut_set.states_pruned,
                proof: Proof::OutcomesEqual {
                    states_base: base.states_visited,
                    states_mutated: cut_set.states_visited,
                },
                rewritten: Some(cut),
            });
            continue;
        }

        // Necessary. The first (canonically smallest) newly-admitted
        // outcome, executed, is the counterexample that kills removal.
        let first_added = diff.added[0].clone();
        let witness = find_witness(&cut, model, |o| *o == first_added)
            .expect("added outcome must be reachable in the mutated program");
        debug_assert_eq!(
            witness.replay(&cut, model).as_ref(),
            Some(&witness.outcome),
            "kill witness must replay on the mutated program"
        );

        // Over-strong check for fences: can a cheaper verified substitute
        // discharge the same requirement?
        let mut substituted = false;
        if matches!(site.kind, SiteKind::Fence(_)) {
            if let Some(req) = fence_requirement(&case.program, site) {
                for (cand, caveat) in cheaper_candidates(req, orig) {
                    let Some(rewritten) = replace_fence(&case.program, site, cand) else {
                        continue;
                    };
                    let sub_set = explorer(&rewritten, model);
                    let sub_diff = base.diff(&sub_set);
                    if !sub_diff.added.is_empty() {
                        continue; // substitute would widen — rejected.
                    }
                    findings.push(Finding {
                        case: case.name.clone(),
                        site: Some(site),
                        kind: FindingKind::OverStrong,
                        original: orig,
                        suggestion: Some(cand),
                        caveat,
                        rank_before: cost_rank(orig),
                        rank_after: cost_rank(cand),
                        outcomes_base: base.len(),
                        outcomes_after: sub_set.len(),
                        added: 0,
                        removed: sub_diff.removed.len(),
                        states_base: base.states_visited,
                        states_after: sub_set.states_visited,
                        pruned_base: base.states_pruned,
                        pruned_after: sub_set.states_pruned,
                        proof: Proof::OutcomesPreserved {
                            removed: sub_diff.removed.len(),
                        },
                        rewritten: Some(rewritten),
                    });
                    substituted = true;
                    break;
                }
            }
        }

        // Over-strong check for RCsc acquires: does dialling LDAR down to
        // LDAPR (keeping acquire-vs-younger ordering, dropping only the
        // earlier-release-before-this-load rule) admit any new outcome? A
        // relaxation can only grow the set, so an empty diff here is full
        // outcome-set equality, not mere preservation.
        if site.kind == SiteKind::Acquire {
            if let Some(rewritten) = rewrite_acquire(&case.program, site, Acquire::Pc) {
                let sub_set = explorer(&rewritten, model);
                let sub_diff = base.diff(&sub_set);
                debug_assert!(
                    sub_diff.removed.is_empty(),
                    "weakening LDAR to LDAPR can only relax the outcome set"
                );
                if sub_diff.added.is_empty() {
                    findings.push(Finding {
                        case: case.name.clone(),
                        site: Some(site),
                        kind: FindingKind::OverStrong,
                        original: orig,
                        suggestion: Some(Barrier::Ldapr),
                        caveat: false,
                        rank_before: cost_rank(orig),
                        rank_after: cost_rank(Barrier::Ldapr),
                        outcomes_base: base.len(),
                        outcomes_after: sub_set.len(),
                        added: 0,
                        removed: 0,
                        states_base: base.states_visited,
                        states_after: sub_set.states_visited,
                        pruned_base: base.states_pruned,
                        pruned_after: sub_set.states_pruned,
                        proof: Proof::OutcomesEqual {
                            states_base: base.states_visited,
                            states_mutated: sub_set.states_visited,
                        },
                        rewritten: Some(rewritten),
                    });
                    substituted = true;
                }
            }
        }
        if !substituted {
            findings.push(Finding {
                case: case.name.clone(),
                site: Some(site),
                kind: FindingKind::Necessary,
                original: orig,
                suggestion: None,
                caveat: false,
                rank_before: cost_rank(orig),
                rank_after: cost_rank(orig),
                outcomes_base: base.len(),
                outcomes_after: cut_set.len(),
                added: diff.added.len(),
                removed: 0,
                states_base: base.states_visited,
                states_after: cut_set.states_visited,
                pruned_base: base.states_pruned,
                pruned_after: cut_set.states_pruned,
                proof: Proof::CounterExample(witness),
                rewritten: None,
            });
        }
    }
    findings
}

/// Analyze the whole corpus in corpus order.
#[must_use]
pub fn analyze_corpus(cases: &[LintCase]) -> Vec<Finding> {
    cases.iter().flat_map(analyze_case).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;
    use armbar_wmm::litmus::message_passing;

    fn case_of(t: armbar_wmm::LitmusTest) -> LintCase {
        LintCase {
            name: t.name,
            program: t.program,
            forbidden: Some(t.relaxed),
        }
    }

    #[test]
    fn broken_mp_is_missing_with_witness() {
        let findings = analyze_case(&case_of(message_passing(Barrier::None, Barrier::None)));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::Missing);
        assert!(matches!(findings[0].proof, Proof::CounterExample(_)));
    }

    #[test]
    fn minimal_mp_is_all_necessary() {
        // DMB st + ADDR DEP is already the cheapest verified placement:
        // nothing is redundant, nothing cheaper substitutes.
        let findings = analyze_case(&case_of(message_passing(Barrier::DmbSt, Barrier::AddrDep)));
        assert!(findings.iter().all(|f| f.kind == FindingKind::Necessary));
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn dsb_mp_is_over_strong_on_both_sides() {
        let findings = analyze_case(&case_of(message_passing(
            Barrier::DsbFull,
            Barrier::DsbFull,
        )));
        let over: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::OverStrong)
            .collect();
        assert_eq!(over.len(), 2, "both DSBs must downgrade");
        for f in over {
            assert!(f.rank_after < f.rank_before);
            assert_eq!(f.added, 0, "suggestion must not widen");
            assert!(f.rewritten.is_some());
        }
    }

    #[test]
    fn every_suggestion_carries_a_proof_artifact() {
        for f in analyze_corpus(&corpus()) {
            match f.kind {
                FindingKind::Redundant => {
                    assert!(matches!(f.proof, Proof::OutcomesEqual { .. }), "{}", f.case);
                }
                FindingKind::OverStrong => {
                    // Fence substitutions prove preservation; the LDAR ->
                    // LDAPR downgrade proves full outcome-set equality.
                    assert!(
                        matches!(
                            f.proof,
                            Proof::OutcomesPreserved { .. } | Proof::OutcomesEqual { .. }
                        ),
                        "{}",
                        f.case
                    );
                    assert_eq!(f.added, 0, "{}", f.case);
                }
                FindingKind::Missing | FindingKind::Necessary => {
                    assert!(
                        matches!(f.proof, Proof::CounterExample(_)),
                        "{} needs a witness",
                        f.case
                    );
                }
            }
        }
    }

    #[test]
    fn delegation_handoff_ports_downgrade_with_proofs() {
        // The exp-dlock corpus cases carry the fences the naive ports
        // shipped with; each must yield at least one accepted over-strong
        // rewrite (cheaper rank, rewritten program attached), and every
        // kept site must carry its witness — the lint never says
        // "necessary" without a counter-example.
        let dlock = [
            "fc-publication+dsb.st+dmb.ld",
            "ccsynch-status+dmb.full+dmb.full",
            "rcl-reqword+dsb.full+dmb.ld",
        ];
        let cases = corpus();
        for name in dlock {
            let case = cases
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} missing from corpus"));
            let findings = analyze_case(case);
            let over: Vec<&Finding> = findings
                .iter()
                .filter(|f| f.kind == FindingKind::OverStrong)
                .collect();
            assert!(!over.is_empty(), "{name}: naive port must downgrade");
            for f in &over {
                assert!(f.rank_after < f.rank_before, "{name}: no saving");
                assert!(f.rewritten.is_some(), "{name}: rewrite missing");
                assert_eq!(f.added, 0, "{name}: rewrite widened");
            }
            for f in findings.iter().filter(|f| f.kind == FindingKind::Necessary) {
                assert!(
                    matches!(f.proof, Proof::CounterExample(_)),
                    "{name}: necessary verdict without witness"
                );
            }
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let cases = corpus();
        let a: Vec<String> = analyze_corpus(&cases)
            .iter()
            .map(|f| format!("{}:{}:{}", f.case, f.site_label(), f.kind.label()))
            .collect();
        let b: Vec<String> = analyze_corpus(&cases)
            .iter()
            .map(|f| format!("{}:{}:{}", f.case, f.site_label(), f.kind.label()))
            .collect();
        assert_eq!(a, b);
    }
}
