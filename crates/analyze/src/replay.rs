//! Dynamic cross-check: replay a litmus-sized [`Program`] (original and
//! rewritten) through the cycle-level simulator and report the cycles a
//! lint suggestion actually saves on each platform profile.
//!
//! The static analyzer proves a rewrite *safe*; this module prices it.
//! Each `wmm` thread becomes a [`SimThread`] that re-issues its body for a
//! fixed number of iterations (barrier costs are per-execution, so a
//! single pass would drown in startup noise), one thread per core, and the
//! machine runs to quiescence. The difference in total machine cycles
//! between the original and the rewritten program — per
//! [`PlatformKind`] — is the `saved_*` column of `lint.csv`.

use armbar_barriers::Barrier;
use armbar_sim::op::{Op, SimThread, ThreadCtx};
use armbar_sim::{Machine, Platform, PlatformKind};
use armbar_wmm::{Instr, Program, Src};

/// Locations are mapped to line-disjoint addresses so coherence traffic,
/// not false sharing, dominates — matching the litmus intent.
fn loc_addr(loc: u8) -> u64 {
    0x1000 + u64::from(loc) * 0x80
}

/// Map one `wmm` instruction to its simulator operation. All litmus loads
/// are observations, so every load consumes its value (suspending the
/// thread exactly like the real test harness's assertion reads);
/// dependency flags map onto `dep_on_last_load`.
fn op_of(instr: &Instr) -> Option<Op> {
    match instr {
        Instr::Load {
            loc,
            acquire,
            addr_dep,
            ..
        } => Some(Op::Load {
            addr: loc_addr(*loc),
            use_value: true,
            acquire: *acquire,
            dep_on_last_load: addr_dep.is_some(),
        }),
        Instr::Store {
            loc,
            src,
            release,
            addr_dep,
            ctrl_dep,
        } => {
            let value = match src {
                Src::Const(v) | Src::DepConst { value: v, .. } => *v,
                Src::Reg(_) => 1,
            };
            let dep = addr_dep.is_some()
                || ctrl_dep.is_some()
                || matches!(src, Src::Reg(_) | Src::DepConst { .. });
            Some(Op::Store {
                addr: loc_addr(*loc),
                value,
                release: *release,
                dep_on_last_load: dep,
            })
        }
        Instr::Fence(Barrier::None) => None,
        Instr::Fence(b) => Some(Op::Fence(*b)),
    }
}

/// A thread replaying one litmus thread body `iterations` times.
struct ReplayThread {
    ops: Vec<Op>,
    pos: usize,
    iterations: u64,
}

impl ReplayThread {
    fn new(instrs: &[Instr], iterations: u64) -> ReplayThread {
        let mut ops: Vec<Op> = instrs.iter().filter_map(op_of).collect();
        ops.push(Op::IterationMark);
        ReplayThread {
            ops,
            pos: 0,
            iterations,
        }
    }
}

impl SimThread for ReplayThread {
    fn next(&mut self, _ctx: &mut ThreadCtx) -> Op {
        if self.iterations == 0 {
            return Op::Halt;
        }
        let op = self.ops[self.pos];
        self.pos += 1;
        if self.pos == self.ops.len() {
            self.pos = 0;
            self.iterations -= 1;
        }
        op
    }
}

/// Total machine cycles to replay every thread of `program` for
/// `iterations` body repetitions on `platform` (threads on distinct
/// cores, init values preset).
#[must_use]
pub fn replay_cycles(program: &Program, platform: Platform, iterations: u64) -> u64 {
    let mut m = Machine::new(platform);
    for (tid, thread) in program.threads.iter().enumerate() {
        m.add_thread_on(tid, Box::new(ReplayThread::new(&thread.instrs, iterations)));
    }
    for &(loc, v) in &program.init {
        m.preset_memory(loc_addr(loc), v);
    }
    let stats = m.run(iterations.saturating_mul(100_000).max(1_000_000));
    debug_assert!(stats.halted, "litmus replay must quiesce");
    stats.cycles
}

/// Cycles saved by `rewritten` relative to `original`, per platform in
/// [`PlatformKind::ALL`] order. Negative values mean the rewrite is
/// slower there (possible for STLR — exactly why the advisor attaches
/// its measure-first caveat).
#[must_use]
pub fn saved_cycles(original: &Program, rewritten: &Program, iterations: u64) -> [i64; 4] {
    let mut out = [0i64; 4];
    for (i, kind) in PlatformKind::ALL.iter().enumerate() {
        let base = replay_cycles(original, Platform::of(*kind), iterations);
        let var = replay_cycles(rewritten, Platform::of(*kind), iterations);
        out[i] = i64::try_from(base).unwrap_or(i64::MAX) - i64::try_from(var).unwrap_or(i64::MAX);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_wmm::litmus::message_passing;

    #[test]
    fn replay_quiesces_and_counts_cycles() {
        let p = message_passing(Barrier::DmbSt, Barrier::DmbLd).program;
        let c = replay_cycles(&p, Platform::kunpeng916(), 50);
        assert!(c > 0);
        // Deterministic.
        assert_eq!(c, replay_cycles(&p, Platform::kunpeng916(), 50));
    }

    #[test]
    fn dropping_a_dsb_saves_cycles_everywhere() {
        let heavy = message_passing(Barrier::DsbFull, Barrier::DmbLd).program;
        let light = message_passing(Barrier::DmbSt, Barrier::DmbLd).program;
        for s in saved_cycles(&heavy, &light, 50) {
            assert!(s > 0, "DSB full -> DMB st must save cycles, got {s}");
        }
    }

    #[test]
    fn dependency_rewrite_is_no_slower_than_a_fence() {
        let fence = message_passing(Barrier::DmbSt, Barrier::DmbLd).program;
        let dep = message_passing(Barrier::DmbSt, Barrier::AddrDep).program;
        for s in saved_cycles(&fence, &dep, 50) {
            assert!(s >= 0, "ADDR DEP must not cost more than DMB ld, got {s}");
        }
    }
}
