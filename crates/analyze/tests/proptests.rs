//! The analyzer's soundness property, fuzzed: for random litmus-sized
//! programs, every Redundant/Over-strong suggestion — once applied —
//! yields an outcome set equal to (or a subset of) the original's. The
//! lint must never widen allowed behaviors.

use proptest::prelude::*;

use armbar_analyze::corpus::LintCase;
use armbar_analyze::lint::{analyze_case, FindingKind};
use armbar_analyze::replay::replay_cycles;
use armbar_analyze::synth::{chosen_point, pareto_fronts, synthesize};
use armbar_barriers::Barrier;
use armbar_sim::{Platform, PlatformKind};
use armbar_wmm::explore::explore;
use armbar_wmm::{Instr, MemoryModel, Program, Thread};

/// Closed instruction generator over 3 locations / 3 registers, biased
/// toward barrier-carrying shapes so sites actually appear.
fn gen_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u8..3, 0u8..3).prop_map(|(r, l)| Instr::load(r, l)),
        (0u8..3, 0u8..3).prop_map(|(r, l)| Instr::load_acq(r, l)),
        (0u8..3, 0u8..3).prop_map(|(r, l)| Instr::load_acq_pc(r, l)),
        (0u8..3, 0u8..3, 0u8..3).prop_map(|(r, l, d)| Instr::load_addr_dep(r, l, d)),
        (0u8..3, 1u64..4).prop_map(|(l, v)| Instr::store(l, v)),
        (0u8..3, 1u64..4).prop_map(|(l, v)| Instr::store_rel(l, v)),
        (0u8..3, 1u64..4, 0u8..3).prop_map(|(l, v, d)| Instr::store_data_dep(l, v, d)),
        (0u8..3, 1u64..4, 0u8..3).prop_map(|(l, v, d)| Instr::store_ctrl_dep(l, v, d)),
        Just(Instr::Fence(Barrier::DmbFull)),
        Just(Instr::Fence(Barrier::DmbSt)),
        Just(Instr::Fence(Barrier::DmbLd)),
        Just(Instr::Fence(Barrier::DsbFull)),
        Just(Instr::Fence(Barrier::DsbSt)),
        Just(Instr::Fence(Barrier::CtrlIsb)),
    ]
}

fn gen_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(prop::collection::vec(gen_instr(), 1..5), 1..3).prop_map(|ts| Program {
        threads: ts.into_iter().map(|instrs| Thread { instrs }).collect(),
        init: vec![],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline soundness property: applied suggestions never widen.
    #[test]
    fn suggestions_never_widen_allowed_behaviors(p in gen_program()) {
        let base = explore(&p, MemoryModel::ArmWmm);
        let case = LintCase {
            name: "fuzz".to_string(),
            program: p,
            forbidden: None,
        };
        for f in analyze_case(&case) {
            let Some(rewritten) = &f.rewritten else { continue };
            let got = explore(rewritten, MemoryModel::ArmWmm);
            let diff = base.diff(&got);
            prop_assert!(
                diff.added.is_empty(),
                "{:?} suggestion at {} widened the outcome set",
                f.kind,
                f.site_label()
            );
            if f.kind == FindingKind::Redundant {
                prop_assert!(
                    diff.is_equal(),
                    "redundant verdict at {} must be outcome-preserving exactly",
                    f.site_label()
                );
            }
        }
    }

    /// RCpc-specific soundness: every LDAR -> LDAPR downgrade the lint
    /// emits is backed by *exact* outcome-set equality — weakening an
    /// acquire can only relax, so one widened outcome anywhere in a random
    /// dependency-rich program must have suppressed the suggestion.
    #[test]
    fn ldapr_downgrades_never_widen_allowed_behaviors(p in gen_program()) {
        let base = explore(&p, MemoryModel::ArmWmm);
        let case = LintCase {
            name: "fuzz".to_string(),
            program: p,
            forbidden: None,
        };
        for f in analyze_case(&case) {
            if f.suggestion != Some(Barrier::Ldapr) {
                continue;
            }
            prop_assert_eq!(f.kind, FindingKind::OverStrong);
            prop_assert_eq!(f.original, Barrier::Ldar);
            let rewritten = f.rewritten.as_ref().expect("downgrade attaches the rewrite");
            let got = explore(rewritten, MemoryModel::ArmWmm);
            prop_assert!(
                base.diff(&got).is_equal(),
                "LDAR -> LDAPR at {} changed the outcome set",
                f.site_label()
            );
        }
    }

    /// Verdict bookkeeping stays consistent with the attached artifacts:
    /// counts match a fresh exploration and kinds partition correctly.
    #[test]
    fn finding_counts_match_fresh_exploration(p in gen_program()) {
        let base = explore(&p, MemoryModel::ArmWmm);
        let case = LintCase { name: "fuzz".to_string(), program: p, forbidden: None };
        for f in analyze_case(&case) {
            prop_assert_eq!(f.outcomes_base, base.len());
            prop_assert_eq!(f.states_base, base.states_visited);
            match f.kind {
                FindingKind::Redundant | FindingKind::OverStrong => {
                    prop_assert_eq!(f.added, 0);
                    prop_assert!(f.rewritten.is_some());
                    prop_assert!(f.rank_after <= f.rank_before);
                }
                FindingKind::Necessary => {
                    prop_assert!(f.added > 0, "necessary means removal widens");
                    prop_assert!(f.rewritten.is_none());
                }
                FindingKind::Missing => prop_assert!(false, "no intent given"),
            }
        }
    }

    /// The synthesizer's headline soundness property: every placement it
    /// emits — the best one and every per-count incumbent — is re-checked
    /// here against a fresh exploration and must never widen the outcome
    /// set; its `removed` proof field must match the real diff; and the
    /// joint search must never land above the seed's cost-rank score.
    #[test]
    fn synthesized_placements_never_widen_or_exceed_seed(p in gen_program()) {
        let base = explore(&p, MemoryModel::ArmWmm);
        let case = LintCase { name: "fuzz".to_string(), program: p, forbidden: None };
        let r = synthesize(&case);
        prop_assert!(
            r.best.score <= r.seed.score,
            "best placement ({}) scores above the seed",
            r.best.label()
        );
        for placement in r.by_count.iter().chain([&r.best]) {
            let got = explore(&placement.program, MemoryModel::ArmWmm);
            let diff = base.diff(&got);
            prop_assert!(
                diff.added.is_empty(),
                "placement {} widened the outcome set",
                placement.label()
            );
            prop_assert_eq!(
                diff.removed.len(),
                placement.removed,
                "placement {} carries a stale proof",
                placement.label()
            );
        }
    }

    /// The pricing contract behind `results/synth.csv`: on each of the
    /// four platform profiles the deployment choice simulates in no more
    /// cycles than the seed placement — the synthesizer may fail to
    /// improve a program, but it must never recommend a regression.
    #[test]
    fn chosen_placements_never_cost_more_than_seed(p in gen_program()) {
        let case = LintCase { name: "fuzz".to_string(), program: p, forbidden: None };
        let r = synthesize(&case);
        let front = pareto_fronts(&r, 10);
        for kind in PlatformKind::ALL {
            let seed_cycles = replay_cycles(&r.seed.program, Platform::of(kind), 10);
            let chosen = chosen_point(&front, kind).expect("front covers every platform");
            prop_assert!(
                chosen.cycles <= seed_cycles,
                "{}: chosen placement {} costs {} cycles vs seed {}",
                kind.name(),
                chosen.label,
                chosen.cycles,
                seed_cycles
            );
            prop_assert_eq!(
                chosen.saved_vs_seed,
                seed_cycles as i64 - chosen.cycles as i64,
                "{}: saved_vs_seed bookkeeping drifted",
                kind.name()
            );
        }
    }
}
