//! End-to-end CLI tests for `armbar-lint <file.s>`: real process, real
//! files, the exact exit codes the docs promise (0 clean, 1 actionable,
//! 2 empty filter, 3 parse/IO failure).

use std::path::Path;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_armbar-lint");

fn repo_path(rel: &str) -> String {
    // Tests run with the crate directory as cwd; fixtures live at the
    // workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn lifting_the_ticket_fixture_finds_the_seeded_overstrong_fence() {
    let out = Command::new(BIN)
        .arg(repo_path("corpus/asm/ticket_lock.s"))
        .output()
        .expect("armbar-lint runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded fixture must yield an actionable finding; stdout:\n{stdout}"
    );
    assert!(stdout.contains("lifted"), "missing lift banner:\n{stdout}");
    assert!(
        stdout.contains("DSB st") && stdout.contains("use DMB st"),
        "expected the over-strong DSB st downgrade:\n{stdout}"
    );
    assert!(
        stdout.contains("symbol grant @ m62"),
        "expected the symbol map in the report:\n{stdout}"
    );
}

#[test]
fn malformed_asm_exits_3_with_line_and_col() {
    let out = Command::new(BIN)
        .arg(repo_path("corpus/asm/bad/unbounded_loop.s"))
        .output()
        .expect("armbar-lint runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unbounded_loop.s:9:5:"),
        "expected path:line:col diagnostic, got:\n{stderr}"
    );
    assert!(stderr.contains("unbounded loop"), "{stderr}");
}

#[test]
fn missing_file_exits_3() {
    let out = Command::new(BIN)
        .arg("definitely_missing_file.s")
        .output()
        .expect("armbar-lint runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read file"), "{stderr}");
}

#[test]
fn empty_corpus_filter_still_exits_2() {
    let out = Command::new(BIN)
        .arg("no-such-corpus-case-substring")
        .output()
        .expect("armbar-lint runs");
    assert_eq!(out.status.code(), Some(2));
}
