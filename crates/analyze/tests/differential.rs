//! Corpus-wide differential suite: the DPOR engine vs the SipHash oracle
//! on every lint-corpus program and every barrier-site cut the lint
//! actually explores, plus random barrier-mutants, at worker counts 1
//! and 4 — and a replay check over every counterexample witness the
//! analyzer emits.
//!
//! This is also where the acceptance criterion for the engine's state
//! reduction lives: summed over the MP-placement family, the engine must
//! visit at least 5x fewer states than the enumerative oracle.

use proptest::prelude::*;

use armbar_analyze::corpus::corpus;
use armbar_analyze::lint::{analyze_corpus, Proof};
use armbar_wmm::mutate::{barrier_sites, remove_site};
use armbar_wmm::{
    explore_dpor_uncached, explore_with_sip_hasher, MemoryModel, OutcomeSet, Program,
};

const MODEL: MemoryModel = MemoryModel::ArmWmm;

/// The enumerative oracle is the differential reference only where it is
/// tractable: litmus-sized cases. Implementation-sized corpus cases
/// (above one mask word) are covered engine-vs-engine here and against
/// the oracle on purpose-built shapes in `armbar-wmm`'s
/// `large_programs` suite.
fn litmus_sized(p: &Program) -> bool {
    p.threads.iter().map(|t| t.instrs.len()).sum::<usize>() <= 64
}

/// Engine at 1 and 4 workers vs the oracle; returns (oracle, engine).
fn check(p: &Program, what: &str) -> (OutcomeSet, OutcomeSet) {
    let oracle = explore_with_sip_hasher(p, MODEL);
    let serial = explore_dpor_uncached(p, MODEL, 1);
    let parallel = explore_dpor_uncached(p, MODEL, 4);
    assert_eq!(
        serial.outcomes, oracle.outcomes,
        "{what}: engine outcome set diverged from oracle"
    );
    assert_eq!(
        serial, parallel,
        "{what}: worker count changed the result (counts must be schedule-independent)"
    );
    (oracle, serial)
}

#[test]
fn corpus_and_all_cuts_differential() {
    for case in corpus() {
        if !litmus_sized(&case.program) {
            continue;
        }
        check(&case.program, &case.name);
        for site in barrier_sites(&case.program) {
            let cut = remove_site(&case.program, site);
            check(
                &cut,
                &format!("{} cut T{}#{}", case.name, site.tid, site.idx),
            );
        }
    }
}

#[test]
fn implementation_sized_corpus_cases_are_schedule_independent() {
    // The big cases skip the oracle but not the engine's own invariants:
    // serial and 4-worker runs must be byte-identical (outcome sets AND
    // state counters) on the case and on every barrier-site cut.
    let mut seen = 0usize;
    for case in corpus() {
        if litmus_sized(&case.program) {
            continue;
        }
        seen += 1;
        let mut programs = vec![case.program.clone()];
        programs.extend(
            barrier_sites(&case.program)
                .into_iter()
                .map(|site| remove_site(&case.program, site)),
        );
        for (i, p) in programs.iter().enumerate() {
            let serial = explore_dpor_uncached(p, MODEL, 1);
            let parallel = explore_dpor_uncached(p, MODEL, 4);
            assert_eq!(
                serial, parallel,
                "{} variant {i}: worker count changed the result",
                case.name
            );
            assert!(serial.states_visited > 0);
        }
    }
    assert!(seen >= 2, "corpus lost its implementation-sized cases");
}

#[test]
fn mp_family_state_reduction_is_at_least_5x() {
    let mut oracle_total = 0usize;
    let mut engine_total = 0usize;
    for case in corpus() {
        if !case.name.starts_with("MP+") {
            continue;
        }
        let (oracle, engine) = check(&case.program, &case.name);
        println!(
            "{:32} oracle {:5} engine {:5}",
            case.name, oracle.states_visited, engine.states_visited
        );
        oracle_total += oracle.states_visited;
        engine_total += engine.states_visited;
    }
    assert!(oracle_total > 0, "no MP+ cases in corpus?");
    let ratio = oracle_total as f64 / engine_total as f64;
    println!("MP family: oracle {oracle_total} vs engine {engine_total} states ({ratio:.1}x)");
    assert!(
        ratio >= 5.0,
        "MP-family state reduction {ratio:.2}x below the 5x acceptance bar \
         (oracle {oracle_total}, engine {engine_total})"
    );
}

#[test]
fn every_counterexample_witness_replays() {
    let cases = corpus();
    let findings = analyze_corpus(&cases);
    let mut replayed = 0usize;
    for f in &findings {
        let Proof::CounterExample(w) = &f.proof else {
            continue;
        };
        let case = cases
            .iter()
            .find(|c| c.name == f.case)
            .expect("finding names a corpus case");
        // Missing-ordering witnesses run on the case itself; necessary-site
        // witnesses run on the program with the site cut out.
        let program = match f.site {
            None => case.program.clone(),
            Some(site) => remove_site(&case.program, site),
        };
        assert_eq!(
            w.replay(&program, MODEL).as_ref(),
            Some(&w.outcome),
            "{} {}: witness does not replay to its claimed outcome",
            f.case,
            f.site_label()
        );
        replayed += 1;
    }
    assert!(replayed > 0, "corpus produced no counterexample witnesses");
}

/// Derive a random barrier-mutant of a corpus case by cutting `cuts`
/// pseudo-randomly chosen sites (re-enumerating sites after each cut so
/// indices stay valid).
fn mutant(case_idx: usize, cuts: usize, seed: u64) -> (String, Program) {
    let cases: Vec<_> = corpus()
        .into_iter()
        .filter(|c| litmus_sized(&c.program))
        .collect();
    let case = &cases[case_idx % cases.len()];
    let mut p = case.program.clone();
    for round in 0..cuts {
        let sites = barrier_sites(&p);
        if sites.is_empty() {
            break;
        }
        let pick = (seed.rotate_left(round as u32 * 7) as usize) % sites.len();
        p = remove_site(&p, sites[pick]);
    }
    (case.name.clone(), p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random barrier-mutants of corpus programs: engine == oracle and
    /// serial == 4-worker on every one.
    #[test]
    fn random_corpus_mutants_differential(
        case_idx in 0usize..32,
        cuts in 0usize..4,
        seed in any::<u64>(),
    ) {
        let (name, p) = mutant(case_idx, cuts, seed);
        check(&p, &format!("mutant of {name} (cuts={cuts}, seed={seed:#x})"));
    }
}
