//! The degenerate-case acceptance criterion for the synthesizer: every
//! single-site rewrite `armbar-lint` accepts is a point in the joint
//! search space, so whole-program synthesis must always land at a
//! placement at least as cheap (by cost-rank score) as applying any one
//! lint suggestion alone — and never above the untouched seed.

use armbar_analyze::corpus::corpus;
use armbar_analyze::lint::analyze_case;
use armbar_analyze::synth::synthesize;
use armbar_barriers::{cost_rank, Barrier};

#[test]
fn synthesis_is_at_least_as_cheap_as_every_accepted_lint_rewrite() {
    for case in corpus() {
        let r = synthesize(&case);
        assert!(
            r.complete,
            "{}: search must run to completion on the shipped corpus",
            case.name
        );
        assert!(
            r.best.score <= r.seed.score,
            "{}: synthesis must never exceed the seed score",
            case.name
        );
        for f in analyze_case(&case) {
            if f.rewritten.is_none() {
                continue; // rejected or case-level finding: not a rewrite
            }
            // Score of the seed with exactly this one suggestion applied:
            // the site's rank drops from the original's to the
            // suggestion's (deletion = Free).
            let before = cost_rank(f.original) as u32;
            let after = cost_rank(f.suggestion.unwrap_or(Barrier::None)) as u32;
            let single = r.seed.score - before + after;
            assert!(
                r.best.score <= single,
                "{}: lint's single rewrite at {} scores {single} but synthesis stopped at {} ({})",
                case.name,
                f.site_label(),
                r.best.score,
                r.best.label()
            );
        }
    }
}
