//! The acceptance cases from the issue: a known-redundant barrier is
//! caught, a known-necessary barrier is not flagged (and its witness is
//! shown), and the lint proposes the dependency/Pilot-style rewrite for
//! MP with simulated cycle savings.

use armbar_analyze::corpus::corpus;
use armbar_analyze::lint::{analyze_case, analyze_corpus, FindingKind, Proof};
use armbar_analyze::replay::saved_cycles;
use armbar_barriers::Barrier;
use armbar_wmm::SiteKind;

fn case(name: &str) -> armbar_analyze::LintCase {
    corpus()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("corpus case {name} missing"))
}

#[test]
fn known_redundant_stray_fence_is_caught_with_equality_proof() {
    let c = case("MP+dmb.st+dmb.ld+stray-st");
    let findings = analyze_case(&c);
    let red: Vec<_> = findings
        .iter()
        .filter(|f| f.kind == FindingKind::Redundant)
        .collect();
    assert_eq!(red.len(), 1, "exactly the stray trailing fence");
    let f = red[0];
    let site = f.site.expect("site-level finding");
    assert_eq!((site.tid, site.idx), (0, 3), "the trailing DMB st");
    assert_eq!(f.original, Barrier::DmbSt);
    assert!(matches!(f.proof, Proof::OutcomesEqual { .. }));
    assert_eq!(f.added, 0);
    assert_eq!(f.removed, 0);
    // And the load-bearing producer fence in the same program is NOT
    // flagged for deletion.
    assert!(findings.iter().any(|f| {
        f.kind == FindingKind::Necessary && f.site.is_some_and(|s| (s.tid, s.idx) == (0, 1))
    }));
}

#[test]
fn known_necessary_barrier_is_kept_and_its_witness_shows_the_break() {
    // MP with DMB st/LDAR placement: both sites are load-bearing (neither
    // may be deleted), but with RCpc modelled the consumer LDAR is no
    // longer *minimal* — nothing in one-directional MP needs the RCsc
    // release-before-acquire rule, so the lint downgrades it to LDAPR
    // with a full outcome-set-equality proof.
    let c = case("MP+DMB st+LDAR");
    let findings = analyze_case(&c);
    assert!(
        !findings.iter().any(|f| f.kind == FindingKind::Redundant),
        "neither site may be deleted"
    );

    let fence = findings
        .iter()
        .find(|f| f.kind == FindingKind::Necessary)
        .expect("producer fence stays necessary");
    assert_eq!(fence.original, Barrier::DmbSt);
    let Proof::CounterExample(w) = &fence.proof else {
        panic!("necessary verdicts must carry the kill witness");
    };
    // The witness reaches the relaxed outcome: flag seen, data stale.
    assert_eq!(w.outcome.reg(1, 0), 1);
    assert_ne!(w.outcome.reg(1, 1), 23);

    let ldar = findings
        .iter()
        .find(|f| f.site.is_some_and(|s| s.kind == SiteKind::Acquire))
        .expect("LDAR site analyzed");
    assert_eq!(ldar.kind, FindingKind::OverStrong);
    assert_eq!(ldar.original, Barrier::Ldar);
    assert_eq!(ldar.suggestion, Some(Barrier::Ldapr));
    assert!(ldar.rank_after < ldar.rank_before);
    assert_eq!((ldar.added, ldar.removed), (0, 0));
    assert!(matches!(ldar.proof, Proof::OutcomesEqual { .. }));
}

#[test]
fn release_then_reacquire_ldar_downgrade_saves_cycles_on_every_platform() {
    // The acceptance case: an LDAR issued while the thread's own STLR is
    // still draining pays the RCsc wait; LDAPR provably (outcome-set
    // equality) discharges the same ordering and skips the drain, so the
    // priced savings are positive on every platform profile.
    let c = case("rel-reacquire+stlr+ldar");
    let findings = analyze_case(&c);
    assert!(
        !findings.iter().any(|f| f.kind == FindingKind::Missing),
        "the idiom is correctly ordered as written"
    );
    let down = findings
        .iter()
        .find(|f| {
            f.kind == FindingKind::OverStrong && f.site.is_some_and(|s| (s.tid, s.idx) == (0, 2))
        })
        .expect("the re-acquiring LDAR must downgrade");
    assert_eq!(down.original, Barrier::Ldar);
    assert_eq!(down.suggestion, Some(Barrier::Ldapr));
    assert!(matches!(down.proof, Proof::OutcomesEqual { .. }));
    let rewritten = down.rewritten.as_ref().expect("verified rewrite attached");
    for saved in saved_cycles(&c.program, rewritten, 200) {
        assert!(
            saved > 0,
            "LDAPR must beat LDAR behind an STLR, saved {saved}"
        );
    }
}

#[test]
fn mp_gets_the_dependency_rewrite_with_positive_simulated_savings() {
    // The Fig-6a "DMB ld - DMB st" placement: the consumer-side DMB ld
    // should become a free address dependency (the Pilot-style rewrite).
    let c = case("MP+DMB st+DMB ld");
    let findings = analyze_case(&c);
    let dep = findings
        .iter()
        .find(|f| f.kind == FindingKind::OverStrong)
        .expect("consumer fence must be over-strong");
    assert_eq!(dep.original, Barrier::DmbLd);
    assert_eq!(dep.suggestion, Some(Barrier::AddrDep));
    assert!(dep.rank_after < dep.rank_before);
    assert_eq!(dep.added, 0, "rewrite must not widen the outcome set");
    let rewritten = dep.rewritten.as_ref().expect("verified rewrite attached");
    // The fence is gone and the data load carries the bogus address dep.
    assert_eq!(rewritten.threads[1].instrs.len(), 2);
    for saved in saved_cycles(&c.program, rewritten, 200) {
        assert!(saved > 0, "dependency must beat DMB ld, saved {saved}");
    }
}

#[test]
fn racy_mp_reports_missing_ordering_with_witness() {
    let c = case("MP+No Barrier+No Barrier");
    let findings = analyze_case(&c);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].kind, FindingKind::Missing);
    let Proof::CounterExample(w) = &findings[0].proof else {
        panic!("missing findings carry the racy interleaving");
    };
    assert_eq!(w.outcome.reg(1, 0), 1);
    assert_ne!(w.outcome.reg(1, 1), 23);
}

#[test]
fn clean_pilot_case_produces_no_findings() {
    assert!(analyze_case(&case("MP+pilot")).is_empty());
}

#[test]
fn implementation_sized_mcs_case_downgrades_the_dsb_and_drops_the_stray() {
    // The 113-instruction unrolled MCS handoff runs through the same
    // pipeline as every litmus case — packed engine, no fallback. The
    // seeded DSB prologue must downgrade (a DMB discharges the same
    // publication ordering) and the stray trailing fence must go.
    let c = case("mcs-unrolled+dsb.full+stray-st");
    let findings = analyze_case(&c);
    assert!(
        !findings.iter().any(|f| f.kind == FindingKind::Missing),
        "the handoff is correctly ordered as written"
    );
    let dsb = findings
        .iter()
        .find(|f| f.original == Barrier::DsbFull)
        .expect("the seeded prologue DSB is analyzed");
    assert_eq!(dsb.kind, FindingKind::OverStrong);
    assert!(dsb.rank_after < dsb.rank_before);
    assert_eq!(dsb.added, 0, "downgrade must not widen the outcome set");
    let stray_idx = c.program.threads[1].instrs.len() - 1;
    let stray = findings
        .iter()
        .find(|f| f.site.is_some_and(|s| (s.tid, s.idx) == (1, stray_idx)))
        .expect("the stray trailing fence is analyzed");
    assert_eq!(stray.kind, FindingKind::Redundant);
    assert!(matches!(stray.proof, Proof::OutcomesEqual { .. }));
}

#[test]
fn implementation_sized_pilot_case_flags_only_the_stray_fence() {
    // 70 instructions, one fence — and coherence over the single-copy
    // atomic words makes it redundant, exactly the paper's Pilot point
    // lifted from litmus size to function size.
    let c = case("pilot-unrolled+stray-st");
    let findings = analyze_case(&c);
    // Two sites — the seeded stray fence and the responder's data
    // dependency — and coherence makes both redundant; in particular
    // nothing is missing: the round-trip is correct with no barrier at
    // all.
    assert!(
        findings.iter().all(|f| f.kind == FindingKind::Redundant),
        "every site must be redundant"
    );
    let stray = findings
        .iter()
        .find(|f| f.site.is_some_and(|s| (s.tid, s.idx) == (0, 10)))
        .expect("the seeded stray fence is analyzed");
    assert_eq!(stray.original, Barrier::DmbSt);
    assert!(matches!(stray.proof, Proof::OutcomesEqual { .. }));
}

#[test]
fn dsb_sites_always_downgrade_somewhere_in_the_corpus() {
    let findings = analyze_corpus(&corpus());
    assert!(findings.iter().any(|f| {
        f.kind == FindingKind::OverStrong
            && f.original == Barrier::DsbFull
            && f.suggestion == Some(Barrier::DmbSt)
    }));
    assert!(findings.iter().any(|f| {
        f.kind == FindingKind::OverStrong
            && f.original == Barrier::DsbFull
            && f.suggestion == Some(Barrier::DmbFull)
    }));
}
