//! A hand-rolled FxHash-style hasher for the workspace's hot hash maps.
//!
//! The simulator's directory and memory maps and the explorer's visited-set
//! are keyed by small fixed-width values (cache-line numbers, addresses,
//! compact interleaving states). `std`'s default SipHash is DoS-resistant
//! but pays ~1–2ns per word of keyed mixing; none of these maps ever see
//! attacker-controlled keys, so the workspace swaps in the multiply-rotate
//! scheme used by the Rust compiler itself (`rustc-hash`'s FxHash): each
//! 8-byte word is folded in with a rotate, xor, and one 64-bit multiply.
//!
//! No external dependency is involved — the whole hasher is ~40 lines.

#![forbid(unsafe_code)]

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit multiply-rotate hasher (rustc's FxHash scheme).
///
/// Not DoS-resistant: only use for keys that are not attacker-controlled.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier used to scramble each folded word
/// (`floor(2^64 / phi)`, forced odd).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Hash any `Hash` value to a stable `u64` with [`FxHasher`].
///
/// Stable across processes and runs (the hasher is unkeyed), which makes it
/// usable for on-disk cache fingerprints as long as the input itself is a
/// stable byte sequence.
#[must_use]
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_across_hasher_instances() {
        assert_eq!(hash64(&0xDEAD_BEEFu64), hash64(&0xDEAD_BEEFu64));
        assert_eq!(hash64("fig3/kunpeng916"), hash64("fig3/kunpeng916"));
    }

    #[test]
    fn nearby_keys_scatter() {
        // Line numbers are sequential in practice; the multiply must spread
        // them across the full 64-bit space (no shared high-bit prefix).
        let a = hash64(&1u64);
        let b = hash64(&2u64);
        assert_ne!(a >> 48, b >> 48);
    }

    #[test]
    fn byte_strings_distinguish_length() {
        assert_ne!(hash64(&b"ab"[..]), hash64(&b"ab\0"[..]));
        assert_ne!(hash64(&b""[..]), hash64(&b"\0"[..]));
    }

    #[test]
    fn maps_and_sets_behave_like_std() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1_000 {
            m.insert(i, (i * 3) as u32);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m[&999], 2_997);

        let mut s: FxHashSet<(u8, u64)> = FxHashSet::default();
        assert!(s.insert((1, 7)));
        assert!(!s.insert((1, 7)));
        assert!(s.contains(&(1, 7)));
    }
}
