//! Ticket lock with configurable barriers (Linux-kernel style).
//!
//! Acquire: atomically take a ticket, spin until `owner` reaches it, then an
//! acquire-side ordering point keeps the critical section from floating
//! above the lock. Release: an ordering point keeps the critical section's
//! accesses from floating below, then `owner` advances.
//!
//! The release-side barrier is the interesting one (Figure 7(a)): after a
//! critical section that touched remote cache lines, it sits strictly after
//! RMRs and its cost balloons (Observation 2).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

use armbar_barriers::{native, Barrier};

use crate::exec::{Executor, OpId, OpTable};

/// Execute a configurable barrier point on the host, degrading
/// access-attached idioms to the nearest standalone equivalent (the
/// simulator models them precisely; the host path needs correctness only).
pub(crate) fn run_barrier(b: Barrier) {
    match b {
        Barrier::None => {}
        Barrier::Ldar | Barrier::DmbLd | Barrier::AddrDep | Barrier::DataDep | Barrier::Ctrl => {
            native::dmb_ld();
        }
        Barrier::CtrlIsb => {
            native::dmb_ld();
            native::isb();
        }
        Barrier::Stlr => native::dmb_full(),
        other => native::execute(other),
    }
}

/// A ticket lock protecting state `T`.
#[derive(Debug)]
pub struct TicketLock<T> {
    next: CachePadded<AtomicU64>,
    owner: CachePadded<AtomicU64>,
    /// Barrier executed after acquiring, before the critical section.
    pub acquire_barrier: Barrier,
    /// Barrier executed after the critical section, before releasing.
    pub release_barrier: Barrier,
    state: std::cell::UnsafeCell<T>,
    ops: OpTable<T>,
}

// SAFETY: `state` is only accessed between a successful acquire and the
// corresponding release, which the ticket protocol makes mutually exclusive;
// the acquire/release orderings on `owner` publish the state hand-off.
unsafe impl<T: Send> Sync for TicketLock<T> {}
unsafe impl<T: Send> Send for TicketLock<T> {}

impl<T> TicketLock<T> {
    /// A ticket lock with the paper's default barriers (acquire-side load
    /// barrier, release-side store barrier).
    #[must_use]
    pub fn new(state: T, ops: OpTable<T>) -> TicketLock<T> {
        TicketLock::with_barriers(state, ops, Barrier::Ldar, Barrier::DmbSt)
    }

    /// A ticket lock with explicit acquire/release barriers.
    #[must_use]
    pub fn with_barriers(
        state: T,
        ops: OpTable<T>,
        acquire_barrier: Barrier,
        release_barrier: Barrier,
    ) -> TicketLock<T> {
        TicketLock {
            next: CachePadded::new(AtomicU64::new(0)),
            owner: CachePadded::new(AtomicU64::new(0)),
            acquire_barrier,
            release_barrier,
            state: std::cell::UnsafeCell::new(state),
            ops,
        }
    }

    fn acquire(&self) {
        // Take a ticket. Relaxed is enough: the spin on `owner` plus the
        // acquire barrier publishes the critical section.
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let backoff = crossbeam::utils::Backoff::new();
        while self.owner.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        run_barrier(self.acquire_barrier);
    }

    fn release(&self) {
        run_barrier(self.release_barrier);
        // `owner` only ever advances by the holder; Release pairs with the
        // spinner's Acquire (belt and braces alongside the explicit barrier).
        let cur = self.owner.load(Ordering::Relaxed);
        self.owner.store(cur + 1, Ordering::Release);
    }

    /// Run `f` under the lock (closure form for host code).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.acquire();
        // SAFETY: we hold the lock (see `Sync` impl).
        let r = f(unsafe { &mut *self.state.get() });
        self.release();
        r
    }
}

impl<T: Send> Executor<T> for TicketLock<T> {
    fn execute(&self, _handle: usize, id: OpId, arg: u64) -> u64 {
        let op = self.ops.get(id);
        self.with(|s| op(s, arg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inc_table() -> (OpTable<u64>, OpId) {
        let mut t = OpTable::new();
        let inc = t.register(|s, by| {
            *s += by;
            *s
        });
        (t, inc)
    }

    #[test]
    fn counter_increments_race_free() {
        let (table, inc) = inc_table();
        let lock = TicketLock::new(0u64, table);
        const THREADS: usize = 4;
        const PER: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER {
                        lock.execute(0, inc, 1);
                    }
                });
            }
        });
        assert_eq!(lock.with(|s| *s), THREADS as u64 * PER);
    }

    #[test]
    fn fifo_order_single_thread() {
        let (table, inc) = inc_table();
        let lock = TicketLock::new(0u64, table);
        for i in 1..=100 {
            assert_eq!(lock.execute(0, inc, 1), i);
        }
    }

    #[test]
    fn all_barrier_choices_remain_correct() {
        for rel in [
            Barrier::DmbFull,
            Barrier::DmbSt,
            Barrier::DsbFull,
            Barrier::Stlr,
            Barrier::None, // incorrect on ARM; fine under host TSO
        ] {
            let (table, inc) = inc_table();
            let lock = TicketLock::with_barriers(0u64, table, Barrier::Ldar, rel);
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        for _ in 0..2_000 {
                            lock.execute(0, inc, 1);
                        }
                    });
                }
            });
            assert_eq!(lock.with(|s| *s), 6_000, "release barrier {rel}");
        }
    }

    #[test]
    fn with_returns_closure_value() {
        let lock = TicketLock::new(vec![1, 2, 3], OpTable::new());
        let sum: i32 = lock.with(|v| v.iter().sum());
        assert_eq!(sum, 6);
    }
}
