//! MCS queue lock (Mellor-Crummey & Scott [30]) with configurable barriers.
//!
//! Each waiter spins on its *own* node's flag, so the hand-off touches one
//! remote line per transfer instead of hammering a global word. Nodes live
//! in a fixed pool indexed by thread handle — no allocation and no raw
//! pointers; the queue tail stores `node index + 1` (0 = free).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::{Backoff, CachePadded};

use armbar_barriers::Barrier;

use crate::exec::{Executor, OpId, OpTable};
use crate::ticket::run_barrier;

const NO_NODE: usize = 0;

struct Node {
    /// Successor node index + 1 (0 = none yet).
    next: CachePadded<AtomicUsize>,
    /// The waiter spins here; the predecessor flips it at hand-off.
    locked: CachePadded<AtomicU64>,
}

/// An MCS lock protecting state `T`, for up to `max_threads` handles.
pub struct McsLock<T> {
    tail: CachePadded<AtomicUsize>,
    nodes: Vec<Node>,
    /// Barrier after acquiring, before the critical section.
    pub acquire_barrier: Barrier,
    /// Barrier after the critical section, before releasing.
    pub release_barrier: Barrier,
    state: std::cell::UnsafeCell<T>,
    ops: OpTable<T>,
}

// SAFETY: `state` is only accessed by the queue head between acquire and
// release; the MCS protocol (tail swap + per-node hand-off with
// acquire/release orderings) makes that mutually exclusive.
unsafe impl<T: Send> Sync for McsLock<T> {}
unsafe impl<T: Send> Send for McsLock<T> {}

impl<T> McsLock<T> {
    /// An MCS lock for up to `max_threads` concurrent handles, with the
    /// paper's default barriers.
    #[must_use]
    pub fn new(max_threads: usize, state: T, ops: OpTable<T>) -> McsLock<T> {
        McsLock::with_barriers(max_threads, state, ops, Barrier::Ldar, Barrier::DmbSt)
    }

    /// Explicit-barrier constructor.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads == 0`.
    #[must_use]
    pub fn with_barriers(
        max_threads: usize,
        state: T,
        ops: OpTable<T>,
        acquire_barrier: Barrier,
        release_barrier: Barrier,
    ) -> McsLock<T> {
        assert!(max_threads > 0);
        McsLock {
            tail: CachePadded::new(AtomicUsize::new(NO_NODE)),
            nodes: (0..max_threads)
                .map(|_| Node {
                    next: CachePadded::new(AtomicUsize::new(NO_NODE)),
                    locked: CachePadded::new(AtomicU64::new(0)),
                })
                .collect(),
            acquire_barrier,
            release_barrier,
            state: std::cell::UnsafeCell::new(state),
            ops,
        }
    }

    fn acquire(&self, handle: usize) {
        let me = &self.nodes[handle];
        me.next.store(NO_NODE, Ordering::Relaxed);
        me.locked.store(1, Ordering::Relaxed);
        // Enqueue: AcqRel so we see the predecessor's node fields and they
        // see ours.
        let prev = self.tail.swap(handle + 1, Ordering::AcqRel);
        if prev != NO_NODE {
            self.nodes[prev - 1]
                .next
                .store(handle + 1, Ordering::Release);
            let backoff = Backoff::new();
            while me.locked.load(Ordering::Acquire) == 1 {
                backoff.snooze();
            }
        }
        run_barrier(self.acquire_barrier);
    }

    fn release(&self, handle: usize) {
        run_barrier(self.release_barrier);
        let me = &self.nodes[handle];
        let mut next = me.next.load(Ordering::Acquire);
        if next == NO_NODE {
            // No visible successor: try to reset the tail.
            if self
                .tail
                .compare_exchange(handle + 1, NO_NODE, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // A successor is mid-enqueue; wait for its link.
            let backoff = Backoff::new();
            loop {
                next = me.next.load(Ordering::Acquire);
                if next != NO_NODE {
                    break;
                }
                backoff.snooze();
            }
        }
        self.nodes[next - 1].locked.store(0, Ordering::Release);
    }

    /// Run `f` under the lock using the caller's pre-assigned handle.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is out of range.
    pub fn with<R>(&self, handle: usize, f: impl FnOnce(&mut T) -> R) -> R {
        assert!(handle < self.nodes.len(), "handle out of range");
        self.acquire(handle);
        // SAFETY: we hold the lock (see `Sync` impl).
        let r = f(unsafe { &mut *self.state.get() });
        self.release(handle);
        r
    }
}

impl<T: Send> Executor<T> for McsLock<T> {
    fn execute(&self, handle: usize, id: OpId, arg: u64) -> u64 {
        let op = self.ops.get(id);
        self.with(handle, |s| op(s, arg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_roundtrip() {
        let lock = McsLock::new(1, 5u64, OpTable::new());
        assert_eq!(lock.with(0, |s| *s), 5);
        lock.with(0, |s| *s = 9);
        assert_eq!(lock.with(0, |s| *s), 9);
    }

    #[test]
    fn contended_counter_is_exact() {
        let mut table = OpTable::new();
        let inc = table.register(|s: &mut u64, by| {
            *s += by;
            *s
        });
        const THREADS: usize = 4;
        const PER: u64 = 5_000;
        let lock = McsLock::new(THREADS, 0u64, table);
        std::thread::scope(|s| {
            for h in 0..THREADS {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..PER {
                        lock.execute(h, inc, 1);
                    }
                });
            }
        });
        assert_eq!(lock.with(0, |s| *s), THREADS as u64 * PER);
    }

    #[test]
    fn reentrant_handles_sequentially() {
        let lock = McsLock::new(3, Vec::<u64>::new(), OpTable::new());
        for h in [0usize, 1, 2, 0, 1, 2] {
            lock.with(h, |v| v.push(h as u64));
        }
        assert_eq!(lock.with(0, |v| v.clone()), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "handle out of range")]
    fn bad_handle_rejected() {
        let lock = McsLock::new(1, (), OpTable::new());
        lock.with(1, |()| ());
    }
}
