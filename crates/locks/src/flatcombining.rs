//! Flat combining (Hendler, Incze, Shavit & Tzafrir): a publication list
//! plus an elected combiner.
//!
//! Every thread owns a padded *publication record*; posting a request is
//! one store into it. Whoever wins the combiner lock (test-and-test-and-set)
//! scans the whole list and executes every pending request before
//! releasing — one lock hand-off amortizes over many critical sections,
//! and the scan batches the response barriers exactly like FFWD's sweep.
//!
//! The request word doubles as the completion signal: the combiner clears
//! it after publishing the response, so a waiter spins on its own record
//! only. Barrier placement follows Algorithm 5 — a request barrier between
//! detecting a posted request and executing it, and a response barrier
//! between the critical section's stores and the completion store. The
//! Pilot variant (Algorithm 6) publishes `ret ^ hash` as the notification
//! itself and needs neither the response barrier nor the completion store
//! on the waiter's hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::{Backoff, CachePadded};

use armbar_barriers::Barrier;
use armbar_pilot::HashPool;

use crate::exec::{Executor, OpId, OpTable};
use crate::ffwd::ResponseMode;
use crate::ticket::run_barrier;

/// Scan passes one combiner performs per lock tenure. A second pass picks
/// up requests posted while the first was running, amortizing the lock
/// hand-off further; passes that serve nothing end the tenure early.
const SCAN_PASSES: u32 = 2;

/// One thread's publication record. The request word lives on its own
/// line; response state shares a second line.
struct PubRecord {
    /// `op + 1` while a request is pending, 0 otherwise (the combiner
    /// clears it, which is the flag-mode completion signal).
    req: CachePadded<AtomicU64>,
    arg: AtomicU64,
    /// Response word (raw, or `ret ^ hash` in Pilot mode).
    ret: CachePadded<AtomicU64>,
    /// Pilot fallback flag for shuffle collisions.
    flag: AtomicU64,
    /// Pilot hash-schedule position of this record.
    round: AtomicU64,
}

struct Shared<T> {
    records: Vec<PubRecord>,
    /// The combiner lock: 0 free, 1 held.
    lock: CachePadded<AtomicU64>,
    state: std::cell::UnsafeCell<T>,
}

// SAFETY: `state` is only touched while holding the combiner lock.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

/// The flat-combining lock. Per-thread handles index the publication list.
pub struct FlatCombining<T> {
    shared: Arc<Shared<T>>,
    ops: Arc<OpTable<T>>,
    mode: ResponseMode,
    /// Barrier between detecting a posted request and executing it
    /// (Algorithm 5 line 4).
    pub req_barrier: Barrier,
    /// Barrier between the critical section and the completion store
    /// (Algorithm 5 line 7); unused on the Pilot path.
    pub resp_barrier: Barrier,
    pool: HashPool,
}

impl<T: Send> FlatCombining<T> {
    /// Flag-completion flat combining with the paper's best barrier pair.
    #[must_use]
    pub fn new(max_threads: usize, state: T, ops: OpTable<T>) -> FlatCombining<T> {
        FlatCombining::with_barriers(
            max_threads,
            state,
            ops,
            ResponseMode::Flag,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Pilot-completion flat combining (Algorithm 6 applied to the
    /// publication list).
    #[must_use]
    pub fn new_pilot(max_threads: usize, state: T, ops: OpTable<T>) -> FlatCombining<T> {
        FlatCombining::with_barriers(
            max_threads,
            state,
            ops,
            ResponseMode::Pilot,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads == 0`.
    #[must_use]
    pub fn with_barriers(
        max_threads: usize,
        state: T,
        ops: OpTable<T>,
        mode: ResponseMode,
        req_barrier: Barrier,
        resp_barrier: Barrier,
    ) -> FlatCombining<T> {
        assert!(max_threads > 0);
        FlatCombining {
            shared: Arc::new(Shared {
                records: (0..max_threads)
                    .map(|_| PubRecord {
                        req: CachePadded::new(AtomicU64::new(0)),
                        arg: AtomicU64::new(0),
                        ret: CachePadded::new(AtomicU64::new(0)),
                        flag: AtomicU64::new(0),
                        round: AtomicU64::new(0),
                    })
                    .collect(),
                lock: CachePadded::new(AtomicU64::new(0)),
                state: std::cell::UnsafeCell::new(state),
            }),
            ops: Arc::new(ops),
            mode,
            req_barrier,
            resp_barrier,
            pool: HashPool::default_pool(),
        }
    }

    /// Submit one critical section from handle `h` and wait for the result.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn execute_on(&self, h: usize, op: OpId, arg: u64) -> u64 {
        let rec = &self.shared.records[h];
        // Pilot decode state must be sampled before the request is visible.
        let old_ret = rec.ret.load(Ordering::Relaxed);
        let old_flag = rec.flag.load(Ordering::Relaxed);
        let round = rec.round.load(Ordering::Acquire);
        // Post: op/arg first, then the request word that publishes them.
        rec.arg.store(arg, Ordering::Relaxed);
        rec.req.store(op.0 as u64 + 1, Ordering::Release);

        let backoff = Backoff::new();
        loop {
            // Served while we waited?
            match self.mode {
                ResponseMode::Flag => {
                    if rec.req.load(Ordering::Acquire) == 0 {
                        // Order the completion load before the ret load.
                        run_barrier(Barrier::DmbLd);
                        return rec.ret.load(Ordering::Relaxed);
                    }
                }
                ResponseMode::Pilot => {
                    let data = rec.ret.load(Ordering::Relaxed);
                    if data != old_ret {
                        return data ^ self.pool.seed_at(round as usize);
                    }
                    if rec.flag.load(Ordering::Relaxed) != old_flag {
                        return rec.ret.load(Ordering::Relaxed) ^ self.pool.seed_at(round as usize);
                    }
                }
            }
            // Otherwise try to become the combiner.
            if self.shared.lock.load(Ordering::Relaxed) == 0
                && self
                    .shared
                    .lock
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                let mine = self.combine(h);
                self.shared.lock.store(0, Ordering::Release);
                if let Some(raw) = mine {
                    return raw;
                }
                // Someone served us just before our tenure; decode on the
                // next loop turn (the response is already published).
                continue;
            }
            backoff.snooze();
        }
    }

    /// Scan the publication list while holding the combiner lock; returns
    /// our own result if our own record was still pending when scanned.
    fn combine(&self, h: usize) -> Option<u64> {
        let shared = &self.shared;
        let mut mine = None;
        for _ in 0..SCAN_PASSES {
            let mut served = 0u32;
            for (i, rec) in shared.records.iter().enumerate() {
                let req = rec.req.load(Ordering::Relaxed);
                if req == 0 {
                    continue;
                }
                // Algorithm 5 line 4: order the request detection before
                // reading op/arg and touching the protected state.
                run_barrier(self.req_barrier);
                let op = OpId((req - 1) as usize);
                let arg = rec.arg.load(Ordering::Relaxed);
                // SAFETY: we hold the combiner lock.
                let raw = (self.ops.get(op))(unsafe { &mut *shared.state.get() }, arg);
                if i == h {
                    mine = Some(raw);
                }
                self.publish(rec, raw, i != h);
                served += 1;
            }
            if served == 0 {
                break;
            }
        }
        mine
    }

    /// Publish one completed request. `notify` is false for our own record
    /// (the result travels by return value).
    fn publish(&self, rec: &PubRecord, raw: u64, notify: bool) {
        match self.mode {
            ResponseMode::Flag => {
                rec.ret.store(raw, Ordering::Relaxed);
                if notify {
                    // Line 7: the post-RMR barrier, then the completion
                    // store (clearing the request word).
                    run_barrier(self.resp_barrier);
                }
                rec.req.store(0, Ordering::Release);
            }
            ResponseMode::Pilot => {
                let round = rec.round.load(Ordering::Relaxed);
                rec.round.store(round + 1, Ordering::Release);
                // Bookkeeping only: Pilot waiters watch `ret`, not `req`.
                rec.req.store(0, Ordering::Relaxed);
                let new = raw ^ self.pool.seed_at(round as usize);
                if notify {
                    let old = rec.ret.load(Ordering::Relaxed);
                    if new != old {
                        rec.ret.store(new, Ordering::Release);
                    } else {
                        let f = rec.flag.load(Ordering::Relaxed) ^ 1;
                        rec.flag.store(f, Ordering::Release);
                    }
                } else {
                    rec.ret.store(new, Ordering::Relaxed);
                }
            }
        }
    }
}

impl<T: Send> Executor<T> for FlatCombining<T> {
    fn execute(&self, handle: usize, id: OpId, arg: u64) -> u64 {
        self.execute_on(handle, id, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_ops() -> (OpTable<u64>, OpId, OpId) {
        let mut t = OpTable::new();
        let inc = t.register(|s, by| {
            *s += by;
            *s
        });
        let get = t.register(|s, _| *s);
        (t, inc, get)
    }

    #[test]
    fn single_thread_sequence() {
        let (table, inc, get) = counter_ops();
        let lock = FlatCombining::new(1, 0u64, table);
        for i in 1..=50 {
            assert_eq!(lock.execute_on(0, inc, 1), i);
        }
        assert_eq!(lock.execute_on(0, get, 0), 50);
    }

    fn hammer(mode: ResponseMode, threads: usize, per: u64) {
        let (table, inc, get) = counter_ops();
        let lock = match mode {
            ResponseMode::Flag => FlatCombining::new(threads, 0u64, table),
            ResponseMode::Pilot => FlatCombining::new_pilot(threads, 0u64, table),
        };
        std::thread::scope(|s| {
            for h in 0..threads {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..per {
                        lock.execute_on(h, inc, 1);
                    }
                });
            }
        });
        assert_eq!(lock.execute_on(0, get, 0), threads as u64 * per);
    }

    #[test]
    fn contended_flag_mode_is_exact() {
        hammer(ResponseMode::Flag, 4, 3_000);
    }

    #[test]
    fn contended_pilot_mode_is_exact() {
        hammer(ResponseMode::Pilot, 4, 3_000);
    }

    #[test]
    fn pilot_mode_with_constant_returns() {
        let mut table = OpTable::new();
        let seven = table.register(|_s: &mut u64, _| 7);
        let lock = FlatCombining::new_pilot(2, 0u64, table);
        std::thread::scope(|s| {
            for h in 0..2 {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        assert_eq!(lock.execute_on(h, seven, 0), 7);
                    }
                });
            }
        });
    }

    #[test]
    fn results_are_request_specific() {
        let mut table = OpTable::new();
        let add = table.register(|s: &mut u64, by| {
            *s += by;
            *s
        });
        let lock = FlatCombining::new(3, 0u64, table);
        std::thread::scope(|s| {
            for h in 0..3 {
                let lock = &lock;
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..2_000 {
                        let r = lock.execute_on(h, add, 1);
                        assert!(r > last, "running total must strictly grow for this thread");
                        last = r;
                    }
                });
            }
        });
    }
}
