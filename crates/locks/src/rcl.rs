//! RCL-style remote core locking (Lozi et al.): a dedicated server core
//! where the *request word itself* is the completion channel.
//!
//! Like FFWD, a server thread owns the protected state and sweeps
//! per-client slots. The RCL twist is the slot protocol: a client posts
//! `(op + 1) << 1` (even, non-zero) into its request word and spins on
//! that same word — one line round-trip per operation instead of two.
//!
//! * **Flag mode** (Algorithm 5 shape): the server stores `ret` to the
//!   response word, runs the response barrier, then *clears the request
//!   word*; the cleared word is the completion flag.
//! * **Pilot mode** (Algorithm 6 shape): the server stores
//!   `((ret ^ hash) << 1) | 1` — odd — straight into the request word. An
//!   odd value can never equal the even request the client wrote, so the
//!   single store is notification and payload at once and no response
//!   barrier or fallback flag is needed (returns are limited to 63 bits).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::utils::{Backoff, CachePadded};

use armbar_barriers::Barrier;
use armbar_pilot::HashPool;

use crate::exec::{Executor, OpId, OpTable};
use crate::ffwd::ResponseMode;
use crate::ticket::run_barrier;

/// Pilot responses ride in the request word above the 1-bit tag, so the
/// payload and the hash it is shuffled with live in 63 bits.
const PILOT_MASK: u64 = (1 << 63) - 1;

/// One client's slot: the dual-role request word on its own line, the
/// argument next to it, and the flag-mode response word on a second line.
struct RclSlot {
    /// `(op + 1) << 1` while a request is pending; 0 (flag mode) or an
    /// odd packed response (pilot mode) once served.
    req: CachePadded<AtomicU64>,
    arg: AtomicU64,
    /// Flag-mode response word (unused in pilot mode).
    ret: CachePadded<AtomicU64>,
}

struct Shared<T> {
    slots: Vec<RclSlot>,
    stop: AtomicBool,
    state: std::cell::UnsafeCell<T>,
}

// SAFETY: `state` is touched exclusively by the server thread; clients only
// exchange request/response words through atomics.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

/// The RCL lock. Construct with [`Rcl::new`] (flag responses) or
/// [`Rcl::new_pilot`], then [`Rcl::start_server`].
pub struct Rcl<T> {
    shared: Arc<Shared<T>>,
    ops: Arc<OpTable<T>>,
    mode: ResponseMode,
    /// Barrier between detecting a request and reading/executing it.
    pub req_barrier: Barrier,
    /// Barrier between the critical section and clearing the request word
    /// (flag mode only).
    pub resp_barrier: Barrier,
    /// Seed schedule shared by server and clients (Pilot mode).
    pool: HashPool,
}

/// A client handle: everything one thread needs to submit requests.
pub struct RclClient<T> {
    shared: Arc<Shared<T>>,
    mode: ResponseMode,
    id: usize,
    pool: HashPool,
}

impl<T: Send + 'static> Rcl<T> {
    /// Flag-response RCL with the paper's best barrier pair.
    #[must_use]
    pub fn new(max_clients: usize, state: T, ops: OpTable<T>) -> Rcl<T> {
        Rcl::with_barriers(
            max_clients,
            state,
            ops,
            ResponseMode::Flag,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Pilot-response RCL: the packed store into the request word replaces
    /// both the response barrier and the completion store.
    #[must_use]
    pub fn new_pilot(max_clients: usize, state: T, ops: OpTable<T>) -> Rcl<T> {
        Rcl::with_barriers(
            max_clients,
            state,
            ops,
            ResponseMode::Pilot,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `max_clients == 0`.
    #[must_use]
    pub fn with_barriers(
        max_clients: usize,
        state: T,
        ops: OpTable<T>,
        mode: ResponseMode,
        req_barrier: Barrier,
        resp_barrier: Barrier,
    ) -> Rcl<T> {
        assert!(max_clients > 0);
        Rcl {
            shared: Arc::new(Shared {
                slots: (0..max_clients)
                    .map(|_| RclSlot {
                        req: CachePadded::new(AtomicU64::new(0)),
                        arg: AtomicU64::new(0),
                        ret: CachePadded::new(AtomicU64::new(0)),
                    })
                    .collect(),
                stop: AtomicBool::new(false),
                state: std::cell::UnsafeCell::new(state),
            }),
            ops: Arc::new(ops),
            mode,
            req_barrier,
            resp_barrier,
            pool: HashPool::default_pool(),
        }
    }

    /// Obtain the client handle for slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn client(&self, id: usize) -> RclClient<T> {
        assert!(id < self.shared.slots.len(), "client id out of range");
        RclClient {
            shared: Arc::clone(&self.shared),
            mode: self.mode,
            id,
            pool: self.pool.clone(),
        }
    }

    /// Spawn the dedicated server thread. Stop it with [`Rcl::shutdown`].
    #[must_use]
    pub fn start_server(&self) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let ops = Arc::clone(&self.ops);
        let mode = self.mode;
        let req_barrier = self.req_barrier;
        let resp_barrier = self.resp_barrier;
        let mut pools: Vec<HashPool> = (0..shared.slots.len()).map(|_| self.pool.clone()).collect();
        std::thread::spawn(move || {
            let backoff = Backoff::new();
            loop {
                let mut served = 0u32;
                for (i, slot) in shared.slots.iter().enumerate() {
                    // A pending request is even and non-zero; anything else
                    // is an empty slot or our own earlier response.
                    let req = slot.req.load(Ordering::Relaxed);
                    if req == 0 || req & 1 == 1 {
                        continue;
                    }
                    // Order the request detection before op/arg and the CS.
                    run_barrier(req_barrier);
                    let op = OpId(((req >> 1) - 1) as usize);
                    let arg = slot.arg.load(Ordering::Relaxed);
                    // SAFETY: only the server thread touches `state`.
                    let raw = (ops.get(op))(unsafe { &mut *shared.state.get() }, arg);
                    match mode {
                        ResponseMode::Flag => {
                            slot.ret.store(raw, Ordering::Relaxed);
                            // Post-RMR barrier, then the completion store:
                            // clearing the word the client spins on.
                            run_barrier(resp_barrier);
                            slot.req.store(0, Ordering::Relaxed);
                        }
                        ResponseMode::Pilot => {
                            debug_assert!(
                                raw <= PILOT_MASK,
                                "pilot returns are limited to 63 bits"
                            );
                            let hash = pools[i].next_seed() & PILOT_MASK;
                            slot.req.store(((raw ^ hash) << 1) | 1, Ordering::Relaxed);
                        }
                    }
                    served += 1;
                }
                if served == 0 {
                    if shared.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    backoff.snooze();
                } else {
                    backoff.reset();
                }
            }
        })
    }

    /// Ask the server loop to exit once it drains outstanding requests.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }
}

impl<T> RclClient<T> {
    /// Submit one critical section and wait for its result.
    pub fn execute(&mut self, op: OpId, arg: u64) -> u64 {
        let slot = &self.shared.slots[self.id];
        slot.arg.store(arg, Ordering::Relaxed);
        // Publish the request: the request-word store must not overtake
        // the argument store.
        run_barrier(Barrier::DmbSt);
        let posted = (op.0 as u64 + 1) << 1;
        slot.req.store(posted, Ordering::Relaxed);
        // Await completion on the same word.
        let backoff = Backoff::new();
        match self.mode {
            ResponseMode::Flag => {
                while slot.req.load(Ordering::Relaxed) != 0 {
                    backoff.snooze();
                }
                // Order the completion load before the ret load.
                run_barrier(Barrier::DmbLd);
                slot.ret.load(Ordering::Relaxed)
            }
            ResponseMode::Pilot => loop {
                let v = slot.req.load(Ordering::Relaxed);
                if v & 1 == 1 {
                    return (v >> 1) ^ (self.pool.next_seed() & PILOT_MASK);
                }
                backoff.snooze();
            },
        }
    }
}

/// A sharable pool of client handles implementing [`Executor`], one per
/// pre-registered thread.
pub struct RclExecutor<T> {
    clients: Vec<std::sync::Mutex<RclClient<T>>>,
}

impl<T: Send + 'static> RclExecutor<T> {
    /// Wrap `lock`, creating handles `0..max_clients`.
    #[must_use]
    pub fn new(lock: &Rcl<T>, max_clients: usize) -> RclExecutor<T> {
        RclExecutor {
            clients: (0..max_clients)
                .map(|i| std::sync::Mutex::new(lock.client(i)))
                .collect(),
        }
    }
}

impl<T: Send + 'static> Executor<T> for RclExecutor<T> {
    fn execute(&self, handle: usize, id: OpId, arg: u64) -> u64 {
        // Each handle is used by exactly one thread; the Mutex is
        // uncontended and only satisfies the `&self` signature.
        self.clients[handle]
            .lock()
            .expect("client poisoned")
            .execute(id, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_ops() -> (OpTable<u64>, OpId, OpId) {
        let mut t = OpTable::new();
        let inc = t.register(|s, by| {
            *s += by;
            *s
        });
        let get = t.register(|s, _| *s);
        (t, inc, get)
    }

    fn exercise(mode: ResponseMode) {
        let (table, inc, get) = counter_ops();
        let lock = match mode {
            ResponseMode::Flag => Rcl::new(5, 0u64, table),
            ResponseMode::Pilot => Rcl::new_pilot(5, 0u64, table),
        };
        let server = lock.start_server();
        const PER: u64 = 3_000;
        std::thread::scope(|s| {
            for c in 0..4 {
                let mut client = lock.client(c);
                s.spawn(move || {
                    for _ in 0..PER {
                        client.execute(inc, 1);
                    }
                });
            }
        });
        let mut checker = lock.client(4);
        assert_eq!(checker.execute(get, 0), 4 * PER);
        lock.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn flag_mode_counts_exactly() {
        exercise(ResponseMode::Flag);
    }

    #[test]
    fn pilot_mode_counts_exactly() {
        exercise(ResponseMode::Pilot);
    }

    #[test]
    fn pilot_mode_handles_identical_returns() {
        // Constant returns can't confuse the odd/even protocol: the
        // response word is always odd, every request always even.
        let mut table = OpTable::new();
        let seven = table.register(|_s: &mut u64, _| 7);
        let lock = Rcl::new_pilot(1, 0u64, table);
        let server = lock.start_server();
        let mut client = lock.client(0);
        for _ in 0..500 {
            assert_eq!(client.execute(seven, 0), 7);
        }
        lock.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn distinct_clients_get_distinct_answers() {
        let (table, inc, _) = counter_ops();
        let lock = Rcl::new(2, 0u64, table);
        let server = lock.start_server();
        let mut a = lock.client(0);
        let mut b = lock.client(1);
        let r1 = a.execute(inc, 10);
        let r2 = b.execute(inc, 1);
        assert_eq!((r1, r2), (10, 11));
        lock.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn executor_wrapper_works() {
        let (table, inc, get) = counter_ops();
        let lock = Rcl::new(4, 0u64, table);
        let server = lock.start_server();
        let exec = RclExecutor::new(&lock, 3);
        std::thread::scope(|s| {
            for h in 0..3 {
                let exec = &exec;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        exec.execute(h, inc, 1);
                    }
                });
            }
        });
        let mut c = lock.client(3);
        assert_eq!(c.execute(get, 0), 3_000);
        lock.shutdown();
        server.join().unwrap();
    }
}
