//! The common critical-section interface.
//!
//! Delegation servers cannot execute arbitrary closures shipped through
//! shared memory, so critical sections are registered once in an
//! [`OpTable`] as plain `fn(&mut T, u64) -> u64` and referred to by
//! [`OpId`]. In-place locks use the same table so that a benchmark can swap
//! lock families without touching workload code.

use std::fmt;

/// Index of a registered critical-section function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(pub usize);

/// A registry of critical-section functions over protected state `T`.
pub struct OpTable<T> {
    ops: Vec<fn(&mut T, u64) -> u64>,
}

impl<T> fmt::Debug for OpTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OpTable({} ops)", self.ops.len())
    }
}

impl<T> OpTable<T> {
    /// An empty table.
    #[must_use]
    pub fn new() -> OpTable<T> {
        OpTable { ops: Vec::new() }
    }

    /// Register a critical section; returns its id.
    pub fn register(&mut self, op: fn(&mut T, u64) -> u64) -> OpId {
        self.ops.push(op);
        OpId(self.ops.len() - 1)
    }

    /// Look up an op.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn get(&self, id: OpId) -> fn(&mut T, u64) -> u64 {
        self.ops[id.0]
    }

    /// Number of registered ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl<T> Default for OpTable<T> {
    fn default() -> Self {
        OpTable::new()
    }
}

/// Anything that can run registered critical sections with mutual exclusion.
///
/// `handle` identifies the calling thread (delegation locks need a
/// pre-assigned client slot; in-place locks ignore it).
pub trait Executor<T>: Sync {
    /// Execute op `id` with `arg` under mutual exclusion; returns the op's
    /// result.
    fn execute(&self, handle: usize, id: OpId, arg: u64) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_dispatch() {
        let mut t: OpTable<u64> = OpTable::new();
        let inc = t.register(|s, by| {
            *s += by;
            *s
        });
        let get = t.register(|s, _| *s);
        assert_eq!(t.len(), 2);
        let mut state = 0u64;
        assert_eq!(t.get(inc)(&mut state, 5), 5);
        assert_eq!(t.get(inc)(&mut state, 2), 7);
        assert_eq!(t.get(get)(&mut state, 0), 7);
    }

    #[test]
    fn empty_table() {
        let t: OpTable<()> = OpTable::default();
        assert!(t.is_empty());
    }
}
