//! FFWD-style dedicated-server delegation lock (Roghanchi et al. [42]),
//! with the paper's Pilot response path as a variant.
//!
//! A dedicated server thread owns the protected state and executes every
//! critical section. Each client has a padded request/response slot; the
//! hand-off is Algorithm 5:
//!
//! ```text
//! server:  1-3  detect a flipped request flag
//!          4    Barrier                  (request barrier)
//!          6    ret = criticalSection(arg)
//!          7    Barrier                  (response barrier — after the CS's
//!                                         stores, i.e. strictly after RMRs)
//!          8    flip response flag
//! ```
//!
//! The response barrier is the expensive one; Algorithm 6 (Pilot) replaces
//! lines 7-8 by publishing `ret ^ hash` as the notification itself, with the
//! flag fallback for collisions. The server also batches: it scans all
//! client slots per sweep, so one barrier covers several responses — the
//! store-buffer-friendliness the paper credits for FFWD's resilience.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::utils::{Backoff, CachePadded};

use armbar_barriers::Barrier;
use armbar_pilot::HashPool;

use crate::exec::{Executor, OpId, OpTable};
use crate::ticket::run_barrier;

/// How the server notifies clients of completed requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseMode {
    /// Algorithm 5: write `ret`, barrier, flip the response flag.
    Flag,
    /// Algorithm 6 (Pilot): publish `ret ^ hash` as the notification.
    Pilot,
}

/// One client's communication slot. Request and response live on separate
/// padded lines so the server's response stores do not fight the client's
/// request stores.
struct ClientSlot {
    /// Request: flag (flip = new request), op id, argument.
    req_flag: CachePadded<AtomicU64>,
    op: AtomicU64,
    arg: AtomicU64,
    /// Response: payload word and fallback flag share a line (Pilot touches
    /// only this line on the common path).
    ret: CachePadded<AtomicU64>,
    resp_flag: AtomicU64,
}

struct Shared<T> {
    slots: Vec<ClientSlot>,
    stop: AtomicBool,
    state: std::cell::UnsafeCell<T>,
}

// SAFETY: `state` is touched exclusively by the server thread; clients only
// exchange request/response words through atomics.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

/// The FFWD delegation lock. Construct with [`Ffwd::new`] (flag responses)
/// or [`Ffwd::new_pilot`], then [`Ffwd::start_server`].
pub struct Ffwd<T> {
    shared: Arc<Shared<T>>,
    ops: Arc<OpTable<T>>,
    mode: ResponseMode,
    /// Barrier between detecting a request and reading/executing it
    /// (Algorithm 5 line 4).
    pub req_barrier: Barrier,
    /// Barrier between the critical section and the response flag
    /// (Algorithm 5 line 7); unused on the Pilot path.
    pub resp_barrier: Barrier,
    /// Seed schedule shared by server and clients (Pilot mode).
    pool: HashPool,
}

/// A client handle: everything one thread needs to submit requests.
pub struct FfwdClient<T> {
    shared: Arc<Shared<T>>,
    mode: ResponseMode,
    id: usize,
    /// Pilot decode state (client side of Algorithm 6).
    old_ret: u64,
    old_flag: u64,
    pool: HashPool,
}

impl<T: Send + 'static> Ffwd<T> {
    /// Flag-response FFWD with the paper's best barrier pair
    /// (`LDAR`-strength request barrier, `DMB st` response barrier).
    #[must_use]
    pub fn new(max_clients: usize, state: T, ops: OpTable<T>) -> Ffwd<T> {
        Ffwd::with_barriers(
            max_clients,
            state,
            ops,
            ResponseMode::Flag,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Pilot-response FFWD (Algorithm 6).
    #[must_use]
    pub fn new_pilot(max_clients: usize, state: T, ops: OpTable<T>) -> Ffwd<T> {
        Ffwd::with_barriers(
            max_clients,
            state,
            ops,
            ResponseMode::Pilot,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `max_clients == 0`.
    #[must_use]
    pub fn with_barriers(
        max_clients: usize,
        state: T,
        ops: OpTable<T>,
        mode: ResponseMode,
        req_barrier: Barrier,
        resp_barrier: Barrier,
    ) -> Ffwd<T> {
        assert!(max_clients > 0);
        let shared = Arc::new(Shared {
            slots: (0..max_clients)
                .map(|_| ClientSlot {
                    req_flag: CachePadded::new(AtomicU64::new(0)),
                    op: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                    ret: CachePadded::new(AtomicU64::new(0)),
                    resp_flag: AtomicU64::new(0),
                })
                .collect(),
            stop: AtomicBool::new(false),
            state: std::cell::UnsafeCell::new(state),
        });
        Ffwd {
            shared,
            ops: Arc::new(ops),
            mode,
            req_barrier,
            resp_barrier,
            pool: HashPool::default_pool(),
        }
    }

    /// Obtain the client handle for slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn client(&self, id: usize) -> FfwdClient<T> {
        assert!(id < self.shared.slots.len(), "client id out of range");
        FfwdClient {
            shared: Arc::clone(&self.shared),
            mode: self.mode,
            id,
            old_ret: 0,
            old_flag: 0,
            pool: self.pool.clone(),
        }
    }

    /// Spawn the dedicated server thread. Stop it with [`Ffwd::shutdown`].
    #[must_use]
    pub fn start_server(&self) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let ops = Arc::clone(&self.ops);
        let mode = self.mode;
        let req_barrier = self.req_barrier;
        let resp_barrier = self.resp_barrier;
        let mut pools: Vec<HashPool> = (0..shared.slots.len()).map(|_| self.pool.clone()).collect();
        std::thread::spawn(move || {
            let n = shared.slots.len();
            let mut seen_req = vec![0u64; n];
            let mut old_ret = vec![0u64; n];
            let mut local_flag = vec![0u64; n];
            let backoff = Backoff::new();
            loop {
                let mut served = 0u32;
                for i in 0..n {
                    let slot = &shared.slots[i];
                    // Lines 1-3: new request?
                    let rf = slot.req_flag.load(Ordering::Relaxed);
                    if rf == seen_req[i] {
                        continue;
                    }
                    seen_req[i] = rf;
                    // Line 4.
                    run_barrier(req_barrier);
                    let op = OpId(slot.op.load(Ordering::Relaxed) as usize);
                    let arg = slot.arg.load(Ordering::Relaxed);
                    // Line 6: the critical section.
                    // SAFETY: only the server thread touches `state`.
                    let raw = (ops.get(op))(unsafe { &mut *shared.state.get() }, arg);
                    match mode {
                        ResponseMode::Flag => {
                            slot.ret.store(raw, Ordering::Relaxed);
                            // Line 7: the post-RMR barrier.
                            run_barrier(resp_barrier);
                            // Line 8.
                            let f = slot.resp_flag.load(Ordering::Relaxed) ^ 1;
                            slot.resp_flag.store(f, Ordering::Relaxed);
                        }
                        ResponseMode::Pilot => {
                            // Algorithm 6, lines 6-13.
                            let hash = pools[i].next_seed();
                            let new = raw ^ hash;
                            if new != old_ret[i] {
                                slot.ret.store(new, Ordering::Relaxed);
                            } else {
                                local_flag[i] ^= 1;
                                slot.resp_flag.store(local_flag[i], Ordering::Relaxed);
                            }
                            old_ret[i] = new;
                        }
                    }
                    served += 1;
                }
                if served == 0 {
                    if shared.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    backoff.snooze();
                } else {
                    backoff.reset();
                }
            }
        })
    }

    /// Ask the server loop to exit once it drains outstanding requests.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }
}

impl<T> FfwdClient<T> {
    /// Submit one critical section and wait for its result.
    pub fn execute(&mut self, op: OpId, arg: u64) -> u64 {
        let slot = &self.shared.slots[self.id];
        slot.op.store(op.0 as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        // Publish the request: the flag flip must not overtake op/arg.
        run_barrier(Barrier::DmbSt);
        let rf = slot.req_flag.load(Ordering::Relaxed) ^ 1;
        slot.req_flag.store(rf, Ordering::Relaxed);
        // Await the response.
        let backoff = Backoff::new();
        match self.mode {
            ResponseMode::Flag => {
                loop {
                    let f = slot.resp_flag.load(Ordering::Relaxed);
                    if f != self.old_flag {
                        self.old_flag = f;
                        break;
                    }
                    backoff.snooze();
                }
                // Order the flag load before the ret load.
                run_barrier(Barrier::DmbLd);
                slot.ret.load(Ordering::Relaxed)
            }
            ResponseMode::Pilot => {
                // Algorithm 4 on the response word.
                loop {
                    let data = slot.ret.load(Ordering::Relaxed);
                    if data != self.old_ret {
                        self.old_ret = data;
                        break;
                    }
                    let f = slot.resp_flag.load(Ordering::Relaxed);
                    if f != self.old_flag {
                        self.old_flag = f;
                        break;
                    }
                    backoff.snooze();
                }
                self.old_ret ^ self.pool.next_seed()
            }
        }
    }
}

/// A sharable pool of client handles implementing [`Executor`], one per
/// pre-registered thread.
pub struct FfwdExecutor<T> {
    clients: Vec<std::sync::Mutex<FfwdClient<T>>>,
}

impl<T: Send + 'static> FfwdExecutor<T> {
    /// Wrap `lock`, creating handles `0..max_clients`.
    #[must_use]
    pub fn new(lock: &Ffwd<T>, max_clients: usize) -> FfwdExecutor<T> {
        FfwdExecutor {
            clients: (0..max_clients)
                .map(|i| std::sync::Mutex::new(lock.client(i)))
                .collect(),
        }
    }
}

impl<T: Send + 'static> Executor<T> for FfwdExecutor<T> {
    fn execute(&self, handle: usize, id: OpId, arg: u64) -> u64 {
        // Each handle is used by exactly one thread; the Mutex is
        // uncontended and only satisfies the `&self` signature.
        self.clients[handle]
            .lock()
            .expect("client poisoned")
            .execute(id, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_ops() -> (OpTable<u64>, OpId, OpId) {
        let mut t = OpTable::new();
        let inc = t.register(|s, by| {
            *s += by;
            *s
        });
        let get = t.register(|s, _| *s);
        (t, inc, get)
    }

    fn exercise(mode: ResponseMode) {
        // Slot 4 stays untouched by the workers so the checker's fresh
        // client state matches it (client decode state is per-slot and a
        // slot must not be re-claimed by a second client).
        let (table, inc, get) = counter_ops();
        let lock = match mode {
            ResponseMode::Flag => Ffwd::new(5, 0u64, table),
            ResponseMode::Pilot => Ffwd::new_pilot(5, 0u64, table),
        };
        let server = lock.start_server();
        const PER: u64 = 3_000;
        std::thread::scope(|s| {
            for c in 0..4 {
                let mut client = lock.client(c);
                s.spawn(move || {
                    for _ in 0..PER {
                        client.execute(inc, 1);
                    }
                });
            }
        });
        let mut checker = lock.client(4);
        assert_eq!(checker.execute(get, 0), 4 * PER);
        lock.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn flag_mode_counts_exactly() {
        exercise(ResponseMode::Flag);
    }

    #[test]
    fn pilot_mode_counts_exactly() {
        exercise(ResponseMode::Pilot);
    }

    #[test]
    fn pilot_mode_handles_identical_returns() {
        // An op that always returns the same value maximizes collisions:
        // the shuffle must avoid most, and the flag fallback must cover the
        // engineered rest. Correctness = every call returns 7.
        let mut table = OpTable::new();
        let seven = table.register(|_s: &mut u64, _| 7);
        let lock = Ffwd::new_pilot(1, 0u64, table);
        let server = lock.start_server();
        let mut client = lock.client(0);
        for _ in 0..500 {
            assert_eq!(client.execute(seven, 0), 7);
        }
        lock.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn distinct_clients_get_distinct_answers() {
        let (table, inc, _) = counter_ops();
        let lock = Ffwd::new(2, 0u64, table);
        let server = lock.start_server();
        let mut a = lock.client(0);
        let mut b = lock.client(1);
        let r1 = a.execute(inc, 10);
        let r2 = b.execute(inc, 1);
        assert_eq!((r1, r2), (10, 11));
        lock.shutdown();
        server.join().unwrap();
    }

    #[test]
    fn executor_wrapper_works() {
        let (table, inc, get) = counter_ops();
        let lock = Ffwd::new(4, 0u64, table);
        let server = lock.start_server();
        let exec = FfwdExecutor::new(&lock, 3);
        std::thread::scope(|s| {
            for h in 0..3 {
                let exec = &exec;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        exec.execute(h, inc, 1);
                    }
                });
            }
        });
        let mut c = lock.client(3);
        assert_eq!(c.execute(get, 0), 3_000);
        lock.shutdown();
        server.join().unwrap();
    }
}
