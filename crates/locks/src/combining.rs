//! Migratory-server delegation lock of the CC-Synch/DSM-Synch combining
//! family (Fatourou & Kallimanis [14]; `DSynch` in the paper's figures).
//!
//! Threads append their requests to a queue with one atomic swap; whoever
//! lands at the head becomes the *combiner* and executes a bounded run of
//! queued critical sections before handing the role on. There is no
//! dedicated core — the server migrates, which is the flexibility the paper
//! credits this family with.
//!
//! Nodes live in a fixed pool and are addressed by index (+1, with 0 as
//! null), so the whole queue is safe Rust over atomics. Each thread owns
//! one node at a time and *adopts its predecessor's node* after enqueueing —
//! the classic CC-Synch recycling trick.
//!
//! The Pilot variant removes the completion-flag store that strictly
//! follows the critical section (Algorithm 6): the combiner publishes
//! `ret ^ hash` into the waiter's node as the notification itself, with a
//! per-node fallback flag. Waiter and combiner agree on the hash index via
//! a node-local round counter that only ever changes while the node is
//! quiescent for its waiter.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::{Backoff, CachePadded};

use armbar_barriers::Barrier;
use armbar_pilot::HashPool;

use crate::exec::{Executor, OpId, OpTable};
use crate::ffwd::ResponseMode;
use crate::ticket::run_barrier;

/// Maximum critical sections one combiner executes before handing off.
const COMBINE_BOUND: usize = 64;

const NIL: usize = 0;

struct Node {
    /// Request: op id + 1 (0 = no request yet) and argument.
    op: CachePadded<AtomicU64>,
    arg: AtomicU64,
    /// Response word (raw, or `ret ^ hash` in Pilot mode).
    ret: CachePadded<AtomicU64>,
    /// Pilot fallback flag.
    flag: AtomicU64,
    /// 1 while the waiter must keep spinning (flag mode).
    wait: CachePadded<AtomicU64>,
    /// 1 when the request was executed by a combiner (vs. becoming the next
    /// combiner).
    completed: AtomicU64,
    /// Successor node index + 1.
    next: CachePadded<AtomicUsize>,
    /// Pilot round counter of this node (hash schedule position).
    round: AtomicU64,
}

impl Node {
    fn new() -> Node {
        Node {
            op: CachePadded::new(AtomicU64::new(0)),
            arg: AtomicU64::new(0),
            ret: CachePadded::new(AtomicU64::new(0)),
            flag: AtomicU64::new(0),
            wait: CachePadded::new(AtomicU64::new(0)),
            completed: AtomicU64::new(0),
            next: CachePadded::new(AtomicUsize::new(NIL)),
            round: AtomicU64::new(0),
        }
    }
}

struct Shared<T> {
    nodes: Vec<Node>,
    tail: CachePadded<AtomicUsize>,
    state: std::cell::UnsafeCell<T>,
}

// SAFETY: `state` is only touched by the current combiner; combiner
// succession is serialized by the queue (swap on `tail` + wait/next
// hand-offs with acquire/release ordering).
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

/// The combining lock. Per-thread handles come from
/// [`CombiningLock::handle`].
pub struct CombiningLock<T> {
    shared: Arc<Shared<T>>,
    ops: Arc<OpTable<T>>,
    mode: ResponseMode,
    /// Barrier after detecting a request, before executing it.
    pub req_barrier: Barrier,
    /// Barrier after a critical section, before the completion flag
    /// (flag mode only — Pilot removes it).
    pub resp_barrier: Barrier,
    pool: HashPool,
    /// Owned node index (+1) of each handle; `handles[h]` is exchanged on
    /// every operation.
    handles: Vec<CachePadded<AtomicUsize>>,
}

impl<T: Send> CombiningLock<T> {
    /// Flag-completion combining lock for up to `max_threads` handles.
    #[must_use]
    pub fn new(max_threads: usize, state: T, ops: OpTable<T>) -> CombiningLock<T> {
        CombiningLock::with_barriers(
            max_threads,
            state,
            ops,
            ResponseMode::Flag,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Pilot-completion combining lock (Algorithm 6 applied to the
    /// migratory server).
    #[must_use]
    pub fn new_pilot(max_threads: usize, state: T, ops: OpTable<T>) -> CombiningLock<T> {
        CombiningLock::with_barriers(
            max_threads,
            state,
            ops,
            ResponseMode::Pilot,
            Barrier::Ldar,
            Barrier::DmbSt,
        )
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads == 0`.
    #[must_use]
    pub fn with_barriers(
        max_threads: usize,
        state: T,
        ops: OpTable<T>,
        mode: ResponseMode,
        req_barrier: Barrier,
        resp_barrier: Barrier,
    ) -> CombiningLock<T> {
        assert!(max_threads > 0);
        // One node per thread plus the initial dummy at the tail.
        let nodes: Vec<Node> = (0..=max_threads).map(|_| Node::new()).collect();
        let dummy = max_threads; // index of the initial tail node
        CombiningLock {
            shared: Arc::new(Shared {
                nodes,
                tail: CachePadded::new(AtomicUsize::new(dummy + 1)),
                state: std::cell::UnsafeCell::new(state),
            }),
            ops: Arc::new(ops),
            mode,
            req_barrier,
            resp_barrier,
            pool: HashPool::default_pool(),
            handles: (0..max_threads)
                .map(|h| CachePadded::new(AtomicUsize::new(h + 1)))
                .collect(),
        }
    }

    /// Submit one critical section from handle `h` and wait for the result.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn execute_on(&self, h: usize, op: OpId, arg: u64) -> u64 {
        let shared = &self.shared;
        let my = self.handles[h].load(Ordering::Relaxed);
        debug_assert_ne!(my, NIL);
        let my_node = &shared.nodes[my - 1];
        // Fresh enqueue node: nobody can see it until the swap publishes it.
        my_node.next.store(NIL, Ordering::Relaxed);
        my_node.wait.store(1, Ordering::Relaxed);
        my_node.completed.store(0, Ordering::Relaxed);
        my_node.op.store(0, Ordering::Relaxed);

        // Publish and adopt the predecessor's node.
        let cur = shared.tail.swap(my, Ordering::AcqRel);
        debug_assert_ne!(cur, NIL);
        let cur_node = &shared.nodes[cur - 1];
        self.handles[h].store(cur, Ordering::Relaxed);

        // Pilot decode state must be sampled before the combiner can serve
        // this node (i.e. before the `next` link goes up).
        let old_ret = cur_node.ret.load(Ordering::Relaxed);
        let old_flag = cur_node.flag.load(Ordering::Relaxed);
        let round = cur_node.round.load(Ordering::Acquire);

        // Write the request into the adopted node, then link it.
        cur_node.arg.store(arg, Ordering::Relaxed);
        cur_node.op.store(op.0 as u64 + 1, Ordering::Relaxed);
        cur_node.next.store(my, Ordering::Release);

        // Wait for service or for the combiner role.
        let backoff = Backoff::new();
        match self.mode {
            ResponseMode::Flag => {
                while cur_node.wait.load(Ordering::Acquire) == 1 {
                    backoff.snooze();
                }
                if cur_node.completed.load(Ordering::Relaxed) == 1 {
                    return cur_node.ret.load(Ordering::Relaxed);
                }
            }
            ResponseMode::Pilot => {
                loop {
                    // Served? The response word (or fallback flag) changes.
                    if cur_node.ret.load(Ordering::Relaxed) != old_ret
                        || cur_node.flag.load(Ordering::Relaxed) != old_flag
                    {
                        return cur_node.ret.load(Ordering::Relaxed)
                            ^ self.pool.seed_at(round as usize);
                    }
                    // Combiner role? `wait` drops without completion.
                    if cur_node.wait.load(Ordering::Acquire) == 0 {
                        debug_assert_eq!(cur_node.completed.load(Ordering::Relaxed), 0);
                        break;
                    }
                    backoff.snooze();
                }
            }
        }
        // We are the combiner; our own request executes first.
        self.combine(cur)
    }

    /// Execute queued requests starting at node index (+1) `first`; returns
    /// the result of `first`'s request (ours).
    ///
    /// Canonical CC-Synch sweep: a node is served only when its `next` link
    /// is up (the link's release/acquire pair publishes the request); the
    /// final link-less node is never served — it is the new dummy, and
    /// dropping its `wait` hands the combiner role to whoever adopts it.
    fn combine(&self, first: usize) -> u64 {
        let shared = &self.shared;
        run_barrier(self.req_barrier);
        let mut my_ret = 0u64;
        let mut tmp = first;
        let mut served = 0usize;
        loop {
            let node = &shared.nodes[tmp - 1];
            let next = node.next.load(Ordering::Acquire);
            if next == NIL || served == COMBINE_BOUND {
                // Hand off: `tmp` is the new dummy (no request published)
                // or the bounded-handoff point (its owner combines next and
                // serves itself first).
                debug_assert_ne!(tmp, first, "our own node always has a successor link");
                node.wait.store(0, Ordering::Release);
                return my_ret;
            }
            // `next != NIL` (Acquire) publishes op/arg written before the
            // link (Release).
            let op_plus1 = node.op.load(Ordering::Relaxed);
            debug_assert_ne!(op_plus1, 0, "linked nodes carry a posted request");
            let op = OpId((op_plus1 - 1) as usize);
            let arg = node.arg.load(Ordering::Relaxed);
            // SAFETY: only the (unique) combiner reaches this point.
            let raw = (self.ops.get(op))(unsafe { &mut *shared.state.get() }, arg);
            if tmp == first {
                my_ret = raw;
            }
            self.publish(tmp, raw, tmp != first);
            served += 1;
            tmp = next;
        }
    }

    /// Publish a completed request's result to node `idx` (+1). `notify`
    /// is false for our own node (no one is waiting on it).
    fn publish(&self, idx: usize, raw: u64, notify: bool) {
        let node = &self.shared.nodes[idx - 1];
        match self.mode {
            ResponseMode::Flag => {
                node.ret.store(raw, Ordering::Relaxed);
                if notify {
                    // The paper's expensive pattern: barrier strictly after
                    // the critical section's stores, then the flag.
                    run_barrier(self.resp_barrier);
                    node.completed.store(1, Ordering::Relaxed);
                    node.wait.store(0, Ordering::Release);
                }
            }
            ResponseMode::Pilot => {
                let round = node.round.load(Ordering::Relaxed);
                node.round.store(round + 1, Ordering::Release);
                if notify {
                    let old = node.ret.load(Ordering::Relaxed);
                    let new = raw ^ self.pool.seed_at(round as usize);
                    if new != old {
                        node.ret.store(new, Ordering::Release);
                    } else {
                        let f = node.flag.load(Ordering::Relaxed) ^ 1;
                        node.flag.store(f, Ordering::Release);
                    }
                    node.completed.store(1, Ordering::Relaxed);
                } else {
                    // Our own result travels by return value; still keep the
                    // stored word fresh so future rounds' old-value sampling
                    // stays coherent.
                    node.ret
                        .store(raw ^ self.pool.seed_at(round as usize), Ordering::Relaxed);
                }
            }
        }
    }
}

impl<T: Send> Executor<T> for CombiningLock<T> {
    fn execute(&self, handle: usize, id: OpId, arg: u64) -> u64 {
        self.execute_on(handle, id, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_ops() -> (OpTable<u64>, OpId, OpId) {
        let mut t = OpTable::new();
        let inc = t.register(|s, by| {
            *s += by;
            *s
        });
        let get = t.register(|s, _| *s);
        (t, inc, get)
    }

    #[test]
    fn single_thread_sequence() {
        let (table, inc, get) = counter_ops();
        let lock = CombiningLock::new(1, 0u64, table);
        for i in 1..=50 {
            assert_eq!(lock.execute_on(0, inc, 1), i);
        }
        assert_eq!(lock.execute_on(0, get, 0), 50);
    }

    fn hammer(mode: ResponseMode, threads: usize, per: u64) {
        let (table, inc, get) = counter_ops();
        let lock = match mode {
            ResponseMode::Flag => CombiningLock::new(threads, 0u64, table),
            ResponseMode::Pilot => CombiningLock::new_pilot(threads, 0u64, table),
        };
        std::thread::scope(|s| {
            for h in 0..threads {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..per {
                        lock.execute_on(h, inc, 1);
                    }
                });
            }
        });
        assert_eq!(lock.execute_on(0, get, 0), threads as u64 * per);
    }

    #[test]
    fn contended_flag_mode_is_exact() {
        hammer(ResponseMode::Flag, 4, 3_000);
    }

    #[test]
    fn contended_pilot_mode_is_exact() {
        hammer(ResponseMode::Pilot, 4, 3_000);
    }

    #[test]
    fn pilot_mode_with_constant_returns() {
        let mut table = OpTable::new();
        let seven = table.register(|_s: &mut u64, _| 7);
        let lock = CombiningLock::new_pilot(2, 0u64, table);
        std::thread::scope(|s| {
            for h in 0..2 {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        assert_eq!(lock.execute_on(h, seven, 0), 7);
                    }
                });
            }
        });
    }

    #[test]
    fn results_are_request_specific() {
        // Each thread adds its own stamp; the returned running total must
        // reflect its own addition (monotonically includes its stamp).
        let mut table = OpTable::new();
        let add = table.register(|s: &mut u64, by| {
            *s += by;
            *s
        });
        let lock = CombiningLock::new(3, 0u64, table);
        std::thread::scope(|s| {
            for h in 0..3 {
                let lock = &lock;
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..2_000 {
                        let r = lock.execute_on(h, add, 1);
                        assert!(r > last, "running total must strictly grow for this thread");
                        last = r;
                    }
                });
            }
        });
    }
}
