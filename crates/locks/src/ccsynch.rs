//! CC-Synch (Fatourou & Kallimanis): queue-based combining with node
//! recycling and a single packed status word per node.
//!
//! Unlike the publication-list design (`flatcombining`), waiters form an
//! explicit FIFO: each thread swaps its spare node into the shared tail,
//! adopts the previous tail as *its* request node, fills it in, links it,
//! and spins on that node's status word alone. The thread that finds
//! itself at the head becomes the combiner, walks the list serving up to
//! `COMBINE_BOUND` requests, then hands the combiner role to the first
//! unserved node by storing [`COMBINER`] into its status.
//!
//! This is a deliberately *naive* port on the barrier axis: it ships with
//! `DMB ISH` for both the request and response barriers — the placement a
//! straight x86→ARM translation produces — so it is the suite's worked
//! example of what `armbar-lint` should flag (Observation 6: the request
//! barrier can weaken to an acquire load, the response barrier to
//! `DMB ISHST`). Use [`CcSynch::with_barriers`] for the tuned pairs.
//!
//! Status word protocol: [`WAIT`] while pending, [`COMBINER`] for a role
//! hand-off. Flag mode completes with status [`DONE`] after storing `ret`;
//! Pilot mode packs the shuffled return value into the status word itself
//! (`(ret ^ hash) << 2 | 3`), so one store both notifies and carries the
//! payload — return values are limited to 62 bits in that mode.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::{Backoff, CachePadded};

use armbar_barriers::Barrier;
use armbar_pilot::HashPool;

use crate::exec::{Executor, OpId, OpTable};
use crate::ffwd::ResponseMode;
use crate::ticket::run_barrier;

/// Status: request completed (flag mode); `ret` is valid.
pub const DONE: u64 = 0;
/// Status: request pending; the owner spins on this value.
pub const WAIT: u64 = 1;
/// Status: the owner has been handed the combiner role.
pub const COMBINER: u64 = 2;

/// Requests one combiner serves before handing off — bounds tail latency
/// for the thread stuck combining.
const COMBINE_BOUND: u32 = 64;

/// Null node index (indices into the pool are `1..`).
const NIL: usize = 0;

/// Pilot responses ride in the status word above the 2-bit tag, so both
/// the payload and the hash it is shuffled with live in 62 bits.
const PILOT_MASK: u64 = (1 << 62) - 1;

struct Node {
    /// `op + 1` (0 = no request; the tail dummy carries none).
    op: AtomicU64,
    arg: AtomicU64,
    /// Flag-mode response word.
    ret: CachePadded<AtomicU64>,
    /// The spin word: [`WAIT`] / [`COMBINER`] / [`DONE`] or a packed
    /// Pilot response (`(ret ^ hash) << 2 | 3`).
    status: CachePadded<AtomicU64>,
    /// Successor node index, [`NIL`] while unlinked.
    next: CachePadded<AtomicUsize>,
    /// Pilot hash-schedule position of this node.
    round: AtomicU64,
}

struct Shared<T> {
    nodes: Vec<Node>,
    /// Index of the current tail dummy.
    tail: CachePadded<AtomicUsize>,
    /// Spare node owned by each handle, adopted from the old tail on
    /// every enqueue (classic CC-Synch recycling).
    handles: Vec<CachePadded<AtomicUsize>>,
    state: std::cell::UnsafeCell<T>,
}

// SAFETY: `state` is only touched by the unique combiner.
unsafe impl<T: Send> Sync for Shared<T> {}
unsafe impl<T: Send> Send for Shared<T> {}

/// The CC-Synch combining lock.
pub struct CcSynch<T> {
    shared: Arc<Shared<T>>,
    ops: Arc<OpTable<T>>,
    mode: ResponseMode,
    /// Barrier between observing a linked request and executing it.
    pub req_barrier: Barrier,
    /// Barrier between the critical section and the completion store.
    pub resp_barrier: Barrier,
    pool: HashPool,
}

impl<T: Send> CcSynch<T> {
    /// Flag-completion CC-Synch with the naive full-fence pair a direct
    /// port ships with (see the module docs; `armbar-lint` weakens both).
    #[must_use]
    pub fn new(max_threads: usize, state: T, ops: OpTable<T>) -> CcSynch<T> {
        CcSynch::with_barriers(
            max_threads,
            state,
            ops,
            ResponseMode::Flag,
            Barrier::DmbFull,
            Barrier::DmbFull,
        )
    }

    /// Pilot-completion CC-Synch (response packed into the status word).
    #[must_use]
    pub fn new_pilot(max_threads: usize, state: T, ops: OpTable<T>) -> CcSynch<T> {
        CcSynch::with_barriers(
            max_threads,
            state,
            ops,
            ResponseMode::Pilot,
            Barrier::DmbFull,
            Barrier::DmbFull,
        )
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads == 0`.
    #[must_use]
    pub fn with_barriers(
        max_threads: usize,
        state: T,
        ops: OpTable<T>,
        mode: ResponseMode,
        req_barrier: Barrier,
        resp_barrier: Barrier,
    ) -> CcSynch<T> {
        assert!(max_threads > 0);
        // One node per thread plus the initial dummy; index 0 is NIL.
        let nodes: Vec<Node> = (0..=max_threads)
            .map(|_| Node {
                op: AtomicU64::new(0),
                arg: AtomicU64::new(0),
                ret: CachePadded::new(AtomicU64::new(0)),
                status: CachePadded::new(AtomicU64::new(WAIT)),
                next: CachePadded::new(AtomicUsize::new(NIL)),
                round: AtomicU64::new(0),
            })
            .collect();
        // Node `max_threads + 1` is the initial dummy at the tail; its
        // status is COMBINER so the first enqueuer combines immediately.
        nodes[max_threads].status.store(COMBINER, Ordering::Relaxed);
        CcSynch {
            shared: Arc::new(Shared {
                nodes,
                tail: CachePadded::new(AtomicUsize::new(max_threads + 1)),
                handles: (0..max_threads)
                    .map(|h| CachePadded::new(AtomicUsize::new(h + 1)))
                    .collect(),
                state: std::cell::UnsafeCell::new(state),
            }),
            ops: Arc::new(ops),
            mode,
            req_barrier,
            resp_barrier,
            pool: HashPool::default_pool(),
        }
    }

    fn node(&self, idx: usize) -> &Node {
        &self.shared.nodes[idx - 1]
    }

    /// Submit one critical section from handle `h` and wait for the result.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn execute_on(&self, h: usize, op: OpId, arg: u64) -> u64 {
        let shared = &self.shared;
        // Reset our spare node before exposing it as the new tail dummy.
        let my = shared.handles[h].load(Ordering::Relaxed);
        self.node(my).status.store(WAIT, Ordering::Relaxed);
        self.node(my).next.store(NIL, Ordering::Relaxed);
        // Swap it in and adopt the old tail as our request node.
        let cur = shared.tail.swap(my, Ordering::AcqRel);
        shared.handles[h].store(cur, Ordering::Relaxed);
        let node = self.node(cur);
        // Pilot decode state must be sampled before the request is linked.
        let round = node.round.load(Ordering::Acquire);
        let old_status = node.status.load(Ordering::Relaxed);
        node.op.store(op.0 as u64 + 1, Ordering::Relaxed);
        node.arg.store(arg, Ordering::Relaxed);
        // Linking publishes the request to the current combiner.
        node.next.store(my, Ordering::Release);

        let backoff = Backoff::new();
        loop {
            let s = node.status.load(Ordering::Acquire);
            match self.mode {
                ResponseMode::Flag => {
                    if s == DONE {
                        run_barrier(Barrier::DmbLd);
                        return node.ret.load(Ordering::Relaxed);
                    }
                }
                ResponseMode::Pilot => {
                    if s != old_status && s != COMBINER {
                        debug_assert_eq!(s & 3, 3, "packed pilot responses carry tag 3");
                        return (s >> 2) ^ (self.pool.seed_at(round as usize) & PILOT_MASK);
                    }
                }
            }
            if s == COMBINER {
                return self.combine(cur);
            }
            backoff.snooze();
        }
    }

    /// Serve the queue starting from our own node `first`, then hand the
    /// combiner role to the first unserved node. Returns our own result.
    fn combine(&self, first: usize) -> u64 {
        let mut my_ret = 0u64;
        let mut served = 0u32;
        let mut cur = first;
        loop {
            let node = self.node(cur);
            let next = node.next.load(Ordering::Acquire);
            if next == NIL || served == COMBINE_BOUND {
                // `cur` is the tail dummy (no request) or an unserved
                // request whose owner inherits the combiner role.
                node.status.store(COMBINER, Ordering::Release);
                debug_assert!(served > 0, "combiner always serves its own request");
                return my_ret;
            }
            // Request barrier: order the link detection before reading
            // op/arg and entering the critical section.
            run_barrier(self.req_barrier);
            let op = OpId((node.op.load(Ordering::Relaxed) - 1) as usize);
            let arg = node.arg.load(Ordering::Relaxed);
            // SAFETY: status-word hand-off makes the combiner unique.
            let raw = (self.ops.get(op))(unsafe { &mut *self.shared.state.get() }, arg);
            if cur == first {
                my_ret = raw;
                // Our own result travels by return value; only the pilot
                // schedule position needs to stay coherent for the node's
                // next owner.
                if self.mode == ResponseMode::Pilot {
                    let round = node.round.load(Ordering::Relaxed);
                    node.round.store(round + 1, Ordering::Release);
                }
            } else {
                self.publish(node, raw);
            }
            served += 1;
            cur = next;
        }
    }

    /// Publish one completed request to a waiting owner.
    fn publish(&self, node: &Node, raw: u64) {
        match self.mode {
            ResponseMode::Flag => {
                node.ret.store(raw, Ordering::Relaxed);
                // Response barrier between the CS / ret stores and the
                // completion store the owner spins on.
                run_barrier(self.resp_barrier);
                node.status.store(DONE, Ordering::Release);
            }
            ResponseMode::Pilot => {
                let round = node.round.load(Ordering::Relaxed);
                node.round.store(round + 1, Ordering::Release);
                // One store is both payload and notification: tag 3 can
                // collide with neither WAIT (1) nor COMBINER (2) nor the
                // sampled pre-link status.
                debug_assert!(raw <= PILOT_MASK, "pilot returns are limited to 62 bits");
                let packed = ((raw ^ (self.pool.seed_at(round as usize) & PILOT_MASK)) << 2) | 3;
                node.status.store(packed, Ordering::Release);
            }
        }
    }
}

impl<T: Send> Executor<T> for CcSynch<T> {
    fn execute(&self, handle: usize, id: OpId, arg: u64) -> u64 {
        self.execute_on(handle, id, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_ops() -> (OpTable<u64>, OpId, OpId) {
        let mut t = OpTable::new();
        let inc = t.register(|s, by| {
            *s += by;
            *s
        });
        let get = t.register(|s, _| *s);
        (t, inc, get)
    }

    #[test]
    fn single_thread_sequence() {
        let (table, inc, get) = counter_ops();
        let lock = CcSynch::new(1, 0u64, table);
        for i in 1..=50 {
            assert_eq!(lock.execute_on(0, inc, 1), i);
        }
        assert_eq!(lock.execute_on(0, get, 0), 50);
    }

    fn hammer(mode: ResponseMode, threads: usize, per: u64) {
        let (table, inc, get) = counter_ops();
        let lock = match mode {
            ResponseMode::Flag => CcSynch::new(threads, 0u64, table),
            ResponseMode::Pilot => CcSynch::new_pilot(threads, 0u64, table),
        };
        std::thread::scope(|s| {
            for h in 0..threads {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..per {
                        lock.execute_on(h, inc, 1);
                    }
                });
            }
        });
        assert_eq!(lock.execute_on(0, get, 0), threads as u64 * per);
    }

    #[test]
    fn contended_flag_mode_is_exact() {
        hammer(ResponseMode::Flag, 4, 3_000);
    }

    #[test]
    fn contended_pilot_mode_is_exact() {
        hammer(ResponseMode::Pilot, 4, 3_000);
    }

    #[test]
    fn tuned_barrier_pair_is_exact() {
        let (table, inc, get) = counter_ops();
        let lock = CcSynch::with_barriers(
            4,
            0u64,
            table,
            ResponseMode::Flag,
            Barrier::Ldar,
            Barrier::DmbSt,
        );
        std::thread::scope(|s| {
            for h in 0..4 {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..2_000 {
                        lock.execute_on(h, inc, 1);
                    }
                });
            }
        });
        assert_eq!(lock.execute_on(0, get, 0), 8_000);
    }

    #[test]
    fn pilot_mode_with_constant_returns() {
        let mut table = OpTable::new();
        let seven = table.register(|_s: &mut u64, _| 7);
        let lock = CcSynch::new_pilot(2, 0u64, table);
        std::thread::scope(|s| {
            for h in 0..2 {
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        assert_eq!(lock.execute_on(h, seven, 0), 7);
                    }
                });
            }
        });
    }

    #[test]
    fn results_are_request_specific() {
        let mut table = OpTable::new();
        let add = table.register(|s: &mut u64, by| {
            *s += by;
            *s
        });
        let lock = CcSynch::new(3, 0u64, table);
        std::thread::scope(|s| {
            for h in 0..3 {
                let lock = &lock;
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..2_000 {
                        let r = lock.execute_on(h, add, 1);
                        assert!(r > last, "running total must strictly grow for this thread");
                        last = r;
                    }
                });
            }
        });
    }
}
