//! In-place and delegation locks with configurable barriers (paper §5).
//!
//! Mutex locks split into two families (§5.1):
//!
//! * **In-place locks** — competitors spin on shared state and execute their
//!   critical sections themselves: [`ticket::TicketLock`] (Linux-kernel
//!   style) and [`mcs::McsLock`]. Barriers guard both the lock and unlock
//!   procedures; Figure 7(a) varies the *unlock* barrier because it is the
//!   one that ends up strictly after the critical section's remote memory
//!   references.
//! * **Delegation locks** — a server executes every critical section. Two
//!   are dedicated-server designs: [`ffwd::Ffwd`] (FFWD [42]) and
//!   [`rcl::Rcl`] (remote core locking, where the request word doubles as
//!   the completion channel). Three elect the server among the waiters:
//!   [`combining::CombiningLock`] (migratory server of the
//!   CC-Synch/DSM-Synch family [14]; the experiments label it `DSynch`),
//!   [`ccsynch::CcSynch`] (textbook CC-Synch with node recycling and a
//!   packed status word, shipped with deliberately naive full fences), and
//!   [`flatcombining::FlatCombining`] (publication list + combiner lock).
//!   Barriers order request/response hand-offs (Algorithm 5, lines 4 and 7);
//!   the response-side barrier follows the critical section's stores — the
//!   expensive pattern — and each design's Pilot variant (`new_pilot`)
//!   removes it per Algorithm 6.
//!
//! Critical sections are registered up front as plain functions
//! (`fn(&mut T, u64) -> u64`) so delegation servers can run them without
//! allocation; the [`exec::Executor`] trait gives in-place and delegation
//! locks one interface, which the data-structure benchmarks build on.

#![warn(missing_docs)]

pub mod ccsynch;
pub mod combining;
pub mod exec;
pub mod ffwd;
pub mod flatcombining;
pub mod mcs;
pub mod rcl;
pub mod ticket;

pub use ccsynch::CcSynch;
pub use combining::CombiningLock;
pub use exec::{Executor, OpId, OpTable};
pub use ffwd::Ffwd;
pub use flatcombining::FlatCombining;
pub use mcs::McsLock;
pub use rcl::Rcl;
pub use ticket::TicketLock;
