//! In-place and delegation locks with configurable barriers (paper §5).
//!
//! Mutex locks split into two families (§5.1):
//!
//! * **In-place locks** — competitors spin on shared state and execute their
//!   critical sections themselves: [`ticket::TicketLock`] (Linux-kernel
//!   style) and [`mcs::McsLock`]. Barriers guard both the lock and unlock
//!   procedures; Figure 7(a) varies the *unlock* barrier because it is the
//!   one that ends up strictly after the critical section's remote memory
//!   references.
//! * **Delegation locks** — a server executes every critical section:
//!   [`ffwd::Ffwd`] (dedicated-server, FFWD [42]) and
//!   [`combining::CombiningLock`] (migratory server of the
//!   CC-Synch/DSM-Synch family [14]; the experiments label it `DSynch`).
//!   Barriers order request/response hand-offs (Algorithm 5, lines 4 and 7);
//!   the response-side barrier follows the critical section's stores — the
//!   expensive pattern — and the Pilot variants
//!   ([`ffwd::Ffwd::new_pilot`], [`combining::CombiningLock::new_pilot`])
//!   remove it per Algorithm 6.
//!
//! Critical sections are registered up front as plain functions
//! (`fn(&mut T, u64) -> u64`) so delegation servers can run them without
//! allocation; the [`exec::Executor`] trait gives in-place and delegation
//! locks one interface, which the data-structure benchmarks build on.

#![warn(missing_docs)]

pub mod combining;
pub mod exec;
pub mod ffwd;
pub mod mcs;
pub mod ticket;

pub use combining::CombiningLock;
pub use exec::{Executor, OpId, OpTable};
pub use ffwd::Ffwd;
pub use mcs::McsLock;
pub use ticket::TicketLock;
