//! Concurrency stress tests: every lock family must linearize arbitrary
//! mixes of register-style operations — the final state and every returned
//! value must be explainable by *some* total order, which for the
//! commutative counter ops below reduces to exact sums and strictly
//! monotone per-thread observations.

use proptest::prelude::*;

use armbar_locks::{CombiningLock, Executor, Ffwd, McsLock, OpTable, TicketLock};

fn ops_table() -> (OpTable<u64>, armbar_locks::OpId, armbar_locks::OpId) {
    let mut t = OpTable::new();
    let add = t.register(|s, by| {
        *s += by;
        *s
    });
    let get = t.register(|s, _| *s);
    (t, add, get)
}

/// Drive `per_thread` adds from each of `threads` workers through any
/// executor; assert exactness and per-thread monotonicity.
fn hammer<E: Executor<u64>>(lock: &E, threads: usize, per_thread: u64, add: armbar_locks::OpId) {
    std::thread::scope(|s| {
        for h in 0..threads {
            let lock = &lock;
            s.spawn(move || {
                let mut last = 0u64;
                for _ in 0..per_thread {
                    let r = lock.execute(h, add, 1);
                    assert!(r > last, "running totals must strictly grow per thread");
                    last = r;
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ticket_lock_linearizes(threads in 2usize..5, per in 200u64..800) {
        let (t, add, get) = ops_table();
        let lock = TicketLock::new(0u64, t);
        hammer(&lock, threads, per, add);
        prop_assert_eq!(lock.execute(0, get, 0), threads as u64 * per);
    }

    #[test]
    fn mcs_lock_linearizes(threads in 2usize..5, per in 200u64..800) {
        let (t, add, get) = ops_table();
        let lock = McsLock::new(threads, 0u64, t);
        hammer(&lock, threads, per, add);
        prop_assert_eq!(lock.execute(0, get, 0), threads as u64 * per);
    }

    #[test]
    fn combining_lock_linearizes(threads in 2usize..5, per in 200u64..800, pilot in any::<bool>()) {
        let (t, add, get) = ops_table();
        if pilot {
            let lock = CombiningLock::new_pilot(threads, 0u64, t);
            hammer(&lock, threads, per, add);
            prop_assert_eq!(lock.execute(0, get, 0), threads as u64 * per);
        } else {
            let lock = CombiningLock::new(threads, 0u64, t);
            hammer(&lock, threads, per, add);
            prop_assert_eq!(lock.execute(0, get, 0), threads as u64 * per);
        }
    }

    #[test]
    fn ffwd_linearizes(threads in 2usize..5, per in 100u64..400, pilot in any::<bool>()) {
        let (t, add, get) = ops_table();
        let lock = if pilot {
            Ffwd::new_pilot(threads + 1, 0u64, t)
        } else {
            Ffwd::new(threads + 1, 0u64, t)
        };
        let server = lock.start_server();
        std::thread::scope(|s| {
            for h in 0..threads {
                let mut client = lock.client(h);
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..per {
                        let r = client.execute(add, 1);
                        assert!(r > last);
                        last = r;
                    }
                });
            }
        });
        let mut checker = lock.client(threads);
        prop_assert_eq!(checker.execute(get, 0), threads as u64 * per);
        lock.shutdown();
        server.join().unwrap();
    }
}

/// Mixed-structure argument passing: results must be request-specific even
/// when every thread uses a different addend.
#[test]
fn distinct_addends_sum_exactly() {
    let (t, add, get) = ops_table();
    let lock = CombiningLock::new(4, 0u64, t);
    std::thread::scope(|s| {
        for h in 0..4usize {
            let lock = &lock;
            s.spawn(move || {
                for _ in 0..1_000 {
                    lock.execute(h, add, h as u64 + 1);
                }
            });
        }
    });
    // 1000 * (1+2+3+4)
    assert_eq!(lock.execute(0, get, 0), 10_000);
}
