//! Floorplan problem instances.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One orientation/implementation alternative of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Width in grid units.
    pub w: u32,
    /// Height in grid units.
    pub h: u32,
}

impl Shape {
    /// Area of the shape.
    #[must_use]
    pub fn area(self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }
}

/// A cell to place: one of its shape alternatives must be chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The alternatives (rotations / implementations).
    pub shapes: Vec<Shape>,
}

impl Cell {
    /// Smallest area over alternatives (used by the lower bound).
    #[must_use]
    pub fn min_area(&self) -> u64 {
        self.shapes.iter().map(|s| s.area()).min().unwrap_or(0)
    }
}

/// A full instance: cells in placement order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// The cells.
    pub cells: Vec<Cell>,
}

impl Problem {
    /// Number of cells.
    #[must_use]
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Sum of minimal cell areas — a lower bound on any floorplan's area.
    #[must_use]
    pub fn area_lower_bound(&self) -> u64 {
        self.cells.iter().map(Cell::min_area).sum()
    }
}

/// Deterministic instances mirroring BOTS' `input.5` / `input.15` /
/// `input.20` (same cell counts; sizes drawn from a fixed-seed generator;
/// each cell gets its rotation as a second alternative).
#[must_use]
pub fn bots_input(cells: usize) -> Problem {
    let mut rng = SmallRng::seed_from_u64(0xF100 + cells as u64);
    let cells = (0..cells)
        .map(|_| {
            let w = rng.gen_range(1..=4u32);
            let h = rng.gen_range(1..=4u32);
            let mut shapes = vec![Shape { w, h }];
            if w != h {
                shapes.push(Shape { w: h, h: w });
            }
            Cell { shapes }
        })
        .collect();
    Problem { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_deterministic() {
        assert_eq!(bots_input(15), bots_input(15));
        assert_ne!(bots_input(15), bots_input(20));
    }

    #[test]
    fn instance_sizes_match_names() {
        for n in [5usize, 15, 20] {
            assert_eq!(bots_input(n).size(), n);
        }
    }

    #[test]
    fn rotations_are_present_for_non_square_cells() {
        let p = bots_input(20);
        for c in &p.cells {
            match c.shapes.len() {
                1 => assert_eq!(c.shapes[0].w, c.shapes[0].h),
                2 => {
                    assert_eq!(c.shapes[0].w, c.shapes[1].h);
                    assert_eq!(c.shapes[0].h, c.shapes[1].w);
                }
                n => panic!("unexpected alternative count {n}"),
            }
        }
    }

    #[test]
    fn lower_bound_is_positive_and_sane() {
        let p = bots_input(5);
        let lb = p.area_lower_bound();
        assert!(lb > 0);
        assert!(lb <= p.cells.iter().map(|c| c.shapes[0].area()).sum());
    }
}
