//! Branch-and-bound placement.
//!
//! Cells are placed in order at *corner* candidate positions (origin, or
//! against the right/top edges of already placed cells), each in one of its
//! shape alternatives; a partial placement is pruned when its bounding-box
//! area plus the unplaced cells' minimal areas cannot beat the incumbent.
//!
//! The incumbent bound is the only shared state. [`SharedBound`] exposes it
//! through two registered critical sections (read / try-improve), so any
//! in-place or delegation lock from `armbar-locks` can carry it — that is
//! the pluggable piece Figure 8(d) varies.

use armbar_locks::{Executor, OpId, OpTable};

use crate::problem::{Problem, Shape};

/// A placed rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Placed {
    x: u32,
    y: u32,
    shape: Shape,
}

/// The shared incumbent (lowest area found).
#[derive(Debug)]
pub struct SharedBound {
    /// Current best area (`u64::MAX` until a solution exists).
    pub best: u64,
    /// Improvements applied (diagnostics).
    pub updates: u64,
}

impl SharedBound {
    /// Fresh bound.
    #[must_use]
    pub fn new() -> SharedBound {
        SharedBound {
            best: u64::MAX,
            updates: 0,
        }
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

/// Registered critical sections over [`SharedBound`].
#[derive(Debug, Clone, Copy)]
pub struct BoundOps {
    /// `read() -> best`.
    pub read: OpId,
    /// `try_improve(candidate) -> new best` (min of old and candidate).
    pub try_improve: OpId,
}

impl BoundOps {
    /// Install the ops into `table`.
    pub fn register(table: &mut OpTable<SharedBound>) -> BoundOps {
        BoundOps {
            read: table.register(|b, _| b.best),
            try_improve: table.register(|b, candidate| {
                if candidate < b.best {
                    b.best = candidate;
                    b.updates += 1;
                }
                b.best
            }),
        }
    }
}

/// A complete placement's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Bounding-box area of the best floorplan.
    pub area: u64,
    /// Search nodes expanded.
    pub nodes: u64,
}

fn bbox(placed: &[Placed]) -> (u32, u32) {
    let mut w = 0;
    let mut h = 0;
    for p in placed {
        w = w.max(p.x + p.shape.w);
        h = h.max(p.y + p.shape.h);
    }
    (w, h)
}

fn overlaps(placed: &[Placed], x: u32, y: u32, s: Shape) -> bool {
    placed
        .iter()
        .any(|p| x < p.x + p.shape.w && p.x < x + s.w && y < p.y + p.shape.h && p.y < y + s.h)
}

/// Candidate positions: the origin plus the top-left and bottom-right
/// corners of each placed cell (classic corner-point packing).
fn candidates(placed: &[Placed]) -> Vec<(u32, u32)> {
    if placed.is_empty() {
        return vec![(0, 0)];
    }
    let mut out = Vec::with_capacity(placed.len() * 2);
    for p in placed {
        out.push((p.x + p.shape.w, p.y));
        out.push((p.x, p.y + p.shape.h));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Remaining minimal area from cell `depth` on (suffix sums).
fn suffix_min_areas(problem: &Problem) -> Vec<u64> {
    let mut suffix = vec![0u64; problem.size() + 1];
    for i in (0..problem.size()).rev() {
        suffix[i] = suffix[i + 1] + problem.cells[i].min_area();
    }
    suffix
}

struct SearchCtx<'a, F: FnMut() -> u64, G: FnMut(u64) -> u64> {
    problem: &'a Problem,
    suffix: &'a [u64],
    read_best: F,
    improve: G,
    nodes: u64,
    /// Re-read the shared bound every this many nodes (caching it between
    /// reads models a worker's local knowledge going briefly stale).
    reread_period: u64,
    cached_best: u64,
}

impl<F: FnMut() -> u64, G: FnMut(u64) -> u64> SearchCtx<'_, F, G> {
    fn dfs(&mut self, placed: &mut Vec<Placed>, depth: usize) {
        self.nodes += 1;
        if self.nodes.is_multiple_of(self.reread_period) {
            self.cached_best = (self.read_best)();
        }
        let (w, h) = bbox(placed);
        let area_now = u64::from(w) * u64::from(h);
        // Bound 1: the bounding box only ever grows.
        if area_now >= self.cached_best {
            return;
        }
        if depth == self.problem.size() {
            let new_best = (self.improve)(area_now);
            self.cached_best = self.cached_best.min(new_best);
            return;
        }
        // Bound 2: the final box must hold every cell's area.
        let placed_area: u64 = placed.iter().map(|p| p.shape.area()).sum();
        let lower = area_now.max(placed_area + self.suffix[depth]);
        if lower >= self.cached_best {
            return;
        }
        let cands = candidates(placed);
        for &(x, y) in &cands {
            for &s in &self.problem.cells[depth].shapes {
                if overlaps(placed, x, y, s) {
                    continue;
                }
                placed.push(Placed { x, y, shape: s });
                self.dfs(placed, depth + 1);
                placed.pop();
            }
        }
    }
}

/// Solve sequentially (reference).
#[must_use]
pub fn solve_sequential(problem: &Problem) -> Solution {
    let suffix = suffix_min_areas(problem);
    let mut best = u64::MAX;
    let mut ctx = SearchCtx {
        problem,
        suffix: &suffix,
        read_best: || u64::MAX,
        improve: |_| 0,
        nodes: 0,
        reread_period: u64::MAX,
        cached_best: u64::MAX,
    };
    // Sequential mode keeps the bound in a local; wire the closures to it
    // via a small state machine instead (no locks involved).
    let mut placed = Vec::with_capacity(problem.size());
    seq_dfs(problem, &suffix, &mut placed, 0, &mut best, &mut ctx.nodes);
    Solution {
        area: best,
        nodes: ctx.nodes,
    }
}

fn seq_dfs(
    problem: &Problem,
    suffix: &[u64],
    placed: &mut Vec<Placed>,
    depth: usize,
    best: &mut u64,
    nodes: &mut u64,
) {
    *nodes += 1;
    let (w, h) = bbox(placed);
    let area_now = u64::from(w) * u64::from(h);
    if area_now >= *best {
        return;
    }
    if depth == problem.size() {
        *best = (*best).min(area_now);
        return;
    }
    let lower = area_now.max(placed.iter().map(|p| p.shape.area()).sum::<u64>() + suffix[depth]);
    if lower >= *best {
        return;
    }
    for (x, y) in candidates(placed) {
        for &s in &problem.cells[depth].shapes {
            if overlaps(placed, x, y, s) {
                continue;
            }
            placed.push(Placed { x, y, shape: s });
            seq_dfs(problem, suffix, placed, depth + 1, best, nodes);
            placed.pop();
        }
    }
}

/// Solve with `threads` workers sharing the bound through `executor`.
/// Tasks are the first cell's `(position, shape)` choices.
///
/// Returns the solution plus per-run lock-operation count.
#[must_use]
pub fn solve_parallel<E: Executor<SharedBound>>(
    problem: &Problem,
    threads: usize,
    executor: &E,
    ops: BoundOps,
    reread_period: u64,
) -> Solution {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    assert!(threads > 0);
    let suffix = suffix_min_areas(problem);
    // First-level tasks: shapes of cell 0 at the origin (positions are all
    // equivalent for the first cell), split further by cell 1's choices.
    let mut tasks: Vec<Vec<Placed>> = Vec::new();
    if problem.size() == 0 {
        return Solution { area: 0, nodes: 1 };
    }
    for &s0 in &problem.cells[0].shapes {
        let first = Placed {
            x: 0,
            y: 0,
            shape: s0,
        };
        if problem.size() == 1 {
            tasks.push(vec![first]);
            continue;
        }
        for (x, y) in candidates(&[first]) {
            for &s1 in &problem.cells[1].shapes {
                if !overlaps(&[first], x, y, s1) {
                    tasks.push(vec![first, Placed { x, y, shape: s1 }]);
                }
            }
        }
    }
    let next_task = AtomicUsize::new(0);
    let total_nodes = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let tasks = &tasks;
            let next_task = &next_task;
            let total_nodes = &total_nodes;
            let suffix = &suffix;
            scope.spawn(move || {
                let mut ctx = SearchCtx {
                    problem,
                    suffix,
                    read_best: || executor.execute(t, ops.read, 0),
                    improve: |cand| executor.execute(t, ops.try_improve, cand),
                    nodes: 0,
                    reread_period,
                    cached_best: u64::MAX,
                };
                loop {
                    let i = next_task.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let mut placed = tasks[i].clone();
                    let depth = placed.len();
                    ctx.cached_best = (ctx.read_best)();
                    ctx.dfs(&mut placed, depth);
                }
                total_nodes.fetch_add(ctx.nodes, Ordering::Relaxed);
            });
        }
    });
    let area = executor.execute(0, ops.read, 0);
    Solution {
        area,
        nodes: total_nodes.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{bots_input, Cell};
    use armbar_locks::TicketLock;

    #[test]
    fn trivial_single_square() {
        let p = Problem {
            cells: vec![Cell {
                shapes: vec![Shape { w: 2, h: 2 }],
            }],
        };
        let s = solve_sequential(&p);
        assert_eq!(s.area, 4);
    }

    #[test]
    fn two_cells_pack_optimally() {
        // Two 1x2 dominoes: best is a 2x2 square (area 4), not 1x4? Both
        // give area 4; either way optimal area is 4.
        let p = Problem {
            cells: vec![
                Cell {
                    shapes: vec![Shape { w: 1, h: 2 }, Shape { w: 2, h: 1 }],
                },
                Cell {
                    shapes: vec![Shape { w: 1, h: 2 }, Shape { w: 2, h: 1 }],
                },
            ],
        };
        assert_eq!(solve_sequential(&p).area, 4);
    }

    #[test]
    fn optimal_area_is_at_least_total_cell_area() {
        let p = bots_input(5);
        let s = solve_sequential(&p);
        assert!(s.area >= p.area_lower_bound());
        assert!(s.nodes > 0);
    }

    #[test]
    fn parallel_matches_sequential_on_small_inputs() {
        for n in [3usize, 5] {
            let p = bots_input(n);
            let seq = solve_sequential(&p);
            let mut table = OpTable::new();
            let ops = BoundOps::register(&mut table);
            let lock = TicketLock::new(SharedBound::new(), table);
            let par = solve_parallel(&p, 3, &lock, ops, 64);
            assert_eq!(par.area, seq.area, "n={n}");
        }
    }

    #[test]
    fn stale_bound_cache_does_not_change_the_answer() {
        let p = bots_input(5);
        let seq = solve_sequential(&p);
        for period in [1u64, 16, 1024] {
            let mut table = OpTable::new();
            let ops = BoundOps::register(&mut table);
            let lock = TicketLock::new(SharedBound::new(), table);
            let par = solve_parallel(&p, 2, &lock, ops, period);
            assert_eq!(par.area, seq.area, "period={period}");
        }
    }
}
