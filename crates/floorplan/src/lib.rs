//! BOTS-style floorplanner (Figure 8(d)): branch-and-bound placement of
//! `N` cells minimizing the bounding-box area, with the incumbent best
//! bound shared through a pluggable lock.
//!
//! The BOTS benchmark "computes the optimal floorplan distribution of a
//! number of cells"; its only cross-task shared state is the best solution
//! found so far, read at every node for pruning and written on every
//! improvement. That makes it a *low-contention* lock workload — which is
//! exactly why the paper sees only a few percent from Pilot here (the lock
//! is not the bottleneck), and this reproduction checks that shape.
//!
//! Structure:
//! * [`problem`] — cells with alternative shapes, deterministic instances
//!   (the paper's `input.5` / `input.15` / `input.20`).
//! * [`solver`] — sequential and task-parallel branch-and-bound; the
//!   parallel solver splits the first placement level into tasks consumed
//!   by worker threads, sharing the bound through any
//!   [`Executor`](armbar_locks::Executor).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod problem;
pub mod solver;

pub use problem::{bots_input, Cell, Problem, Shape};
pub use solver::{solve_parallel, solve_sequential, BoundOps, SharedBound, Solution};
