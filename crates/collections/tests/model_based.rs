//! Model-based property tests: every structure must behave exactly like
//! its obvious std reference model under arbitrary operation sequences,
//! both sequentially and through a lock executor.

use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};

use armbar_collections::{
    hashtable::LockedHashTable, ListOps, QueueOps, SeqQueue, SeqStack, SortedList, StackOps,
    NOT_FOUND,
};
use armbar_locks::{Executor, OpTable, TicketLock};

#[derive(Debug, Clone, Copy)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

fn gen_set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0u64..50).prop_map(SetOp::Insert),
        (0u64..50).prop_map(SetOp::Remove),
        (0u64..50).prop_map(SetOp::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sorted_list_matches_btreeset(ops in prop::collection::vec(gen_set_op(), 0..200)) {
        let mut list = SortedList::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(k) => prop_assert_eq!(list.insert(k), model.insert(k)),
                SetOp::Remove(k) => prop_assert_eq!(list.remove(k), model.remove(&k)),
                SetOp::Contains(k) => prop_assert_eq!(list.contains(k), model.contains(&k)),
            }
            prop_assert_eq!(list.len(), model.len());
        }
        let keys = list.keys();
        prop_assert_eq!(keys, model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(any::<Option<u64>>(), 0..200)) {
        // Some(v) = enqueue v, None = dequeue.
        let mut table = OpTable::new();
        let qops = QueueOps::register(&mut table);
        let mut q = SeqQueue::new();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let len = table.get(qops.enqueue)(&mut q, v);
                    model.push_back(v);
                    prop_assert_eq!(len as usize, model.len());
                }
                None => {
                    let got = table.get(qops.dequeue)(&mut q, 0);
                    match model.pop_front() {
                        Some(v) => prop_assert_eq!(got, v),
                        None => prop_assert_eq!(got, NOT_FOUND),
                    }
                }
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }

    #[test]
    fn stack_matches_vec(ops in prop::collection::vec(any::<Option<u64>>(), 0..200)) {
        let mut table = OpTable::new();
        let sops = StackOps::register(&mut table);
        let mut st = SeqStack::new();
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    table.get(sops.push)(&mut st, v);
                    model.push(v);
                }
                None => {
                    let got = table.get(sops.pop)(&mut st, 0);
                    match model.pop() {
                        Some(v) => prop_assert_eq!(got, v),
                        None => prop_assert_eq!(got, NOT_FOUND),
                    }
                }
            }
        }
        prop_assert_eq!(st.len(), model.len());
    }

    #[test]
    fn hash_table_matches_btreeset_through_a_lock(
        ops in prop::collection::vec(gen_set_op(), 0..150),
        buckets in 1usize..10,
    ) {
        let table: LockedHashTable<TicketLock<SortedList>> =
            LockedHashTable::new(buckets, 0, |_b, list, t| TicketLock::new(list, t));
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(k) => prop_assert_eq!(table.insert(0, k), model.insert(k)),
                SetOp::Remove(k) => prop_assert_eq!(table.remove(0, k), model.remove(&k)),
                SetOp::Contains(k) => prop_assert_eq!(table.contains(0, k), model.contains(&k)),
            }
        }
        prop_assert_eq!(table.len(0), model.len() as u64);
    }

    /// The same op sequence executed through a delegation-style OpTable
    /// yields the same answers as calling the structure directly.
    #[test]
    fn optable_dispatch_is_transparent(ops in prop::collection::vec(gen_set_op(), 0..100)) {
        let mut table = OpTable::new();
        let lops = ListOps::register(&mut table);
        let mut direct = SortedList::new();
        let lock = TicketLock::new(SortedList::new(), table);
        for op in ops {
            match op {
                SetOp::Insert(k) => {
                    let via = lock.execute(0, lops.insert, k);
                    prop_assert_eq!(via == 1, direct.insert(k));
                }
                SetOp::Remove(k) => {
                    let via = lock.execute(0, lops.remove, k);
                    prop_assert_eq!(via != NOT_FOUND, direct.remove(k));
                }
                SetOp::Contains(k) => {
                    let via = lock.execute(0, lops.contains, k);
                    prop_assert_eq!(via == 1, direct.contains(k));
                }
            }
        }
    }
}
