//! Hash table of per-bucket sorted lists, one lock per bucket
//! (Figure 8(c)).
//!
//! Each bucket owns a [`SortedList`] behind its own
//! [`Executor`](armbar_locks::Executor); a key hashes to a bucket and the
//! operation is delegated to that bucket's lock. More buckets → fewer
//! threads per lock → less combining opportunity, which is exactly the
//! trend Figure 8(c) sweeps.

use armbar_locks::{Executor, OpTable};

use crate::list::{ListOps, SortedList};
use crate::NOT_FOUND;

/// A hash table whose buckets are `E`-protected sorted lists.
pub struct LockedHashTable<E> {
    buckets: Vec<E>,
    ops: ListOps,
}

impl<E: Executor<SortedList>> LockedHashTable<E> {
    /// Build a table of `bucket_count` buckets. `make_bucket` receives the
    /// bucket index, a preloaded list, and the bucket's op table, and wraps
    /// them in the chosen lock. `preload` members are spread uniformly over
    /// the buckets (the paper preloads 512).
    pub fn new(
        bucket_count: usize,
        preload: usize,
        make_bucket: impl Fn(usize, SortedList, OpTable<SortedList>) -> E,
    ) -> LockedHashTable<E> {
        assert!(bucket_count > 0);
        let mut proto_table = OpTable::new();
        let ops = ListOps::register(&mut proto_table);
        drop(proto_table);
        let buckets = (0..bucket_count)
            .map(|b| {
                let mut table = OpTable::new();
                let _ops = ListOps::register(&mut table);
                let mut list = SortedList::new();
                // Key k lands in bucket (k % bucket_count); preload keys
                // 0..preload land uniformly.
                let mut k = b as u64;
                while (k as usize) < preload {
                    let _ = list.insert(k);
                    k += bucket_count as u64;
                }
                make_bucket(b, list, table)
            })
            .collect();
        LockedHashTable { buckets, ops }
    }

    fn bucket_of(&self, key: u64) -> usize {
        (key % self.buckets.len() as u64) as usize
    }

    /// Number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Insert `key`; `true` if newly inserted.
    pub fn insert(&self, handle: usize, key: u64) -> bool {
        let b = self.bucket_of(key);
        self.buckets[b].execute(handle, self.ops.insert, key) == 1
    }

    /// Remove `key`; `true` if it was present.
    pub fn remove(&self, handle: usize, key: u64) -> bool {
        let b = self.bucket_of(key);
        self.buckets[b].execute(handle, self.ops.remove, key) != NOT_FOUND
    }

    /// Membership query.
    pub fn contains(&self, handle: usize, key: u64) -> bool {
        let b = self.bucket_of(key);
        self.buckets[b].execute(handle, self.ops.contains, key) == 1
    }

    /// Total members across buckets.
    pub fn len(&self, handle: usize) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.execute(handle, self.ops.len, 0))
            .sum()
    }

    /// Whether every bucket is empty.
    pub fn is_empty(&self, handle: usize) -> bool {
        self.len(handle) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_locks::TicketLock;

    fn ticket_table(buckets: usize, preload: usize) -> LockedHashTable<TicketLock<SortedList>> {
        LockedHashTable::new(buckets, preload, |_b, list, table| {
            TicketLock::new(list, table)
        })
    }

    #[test]
    fn preload_spreads_uniformly() {
        let t = ticket_table(8, 512);
        assert_eq!(t.len(0), 512);
        for k in 0..512 {
            assert!(t.contains(0, k), "preloaded key {k} missing");
        }
        assert!(!t.contains(0, 513));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let t = ticket_table(4, 0);
        assert!(t.insert(0, 77));
        assert!(!t.insert(0, 77));
        assert!(t.contains(0, 77));
        assert!(t.remove(0, 77));
        assert!(!t.remove(0, 77));
        assert!(t.is_empty(0));
    }

    #[test]
    fn concurrent_mixed_workload_preserves_size() {
        let t = ticket_table(16, 512);
        const THREADS: usize = 4;
        std::thread::scope(|s| {
            for h in 0..THREADS {
                let t = &t;
                s.spawn(move || {
                    // Private keys above the preload range.
                    let my = |i: u64| 1000 + h as u64 + THREADS as u64 * i;
                    for i in 0..500u64 {
                        for q in 0..10 {
                            t.contains(h, (i + q) % 512);
                        }
                        assert!(t.insert(h, my(i)));
                        assert!(t.remove(h, my(i)));
                    }
                });
            }
        });
        assert_eq!(t.len(0), 512);
    }

    #[test]
    fn single_bucket_degenerates_to_global_lock() {
        let t = ticket_table(1, 10);
        assert_eq!(t.bucket_count(), 1);
        assert_eq!(t.len(0), 10);
        assert!(t.insert(0, 1000));
        assert_eq!(t.len(0), 11);
    }
}
