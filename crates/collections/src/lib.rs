//! Lock-protected workload data structures (paper §5.4, Figure 8).
//!
//! The paper evaluates delegation locks on four structures: a queue and a
//! stack under a global lock, a Synchrobench-style sorted linked list, and
//! a hash table of per-bucket lists each with its own lock. The structures
//! themselves are *sequential* — mutual exclusion comes from whichever
//! [`Executor`](armbar_locks::Executor) wraps them (ticket, MCS, FFWD,
//! DSynch, with or without Pilot) — so swapping lock families never touches
//! workload code.
//!
//! Every structure ships with a `register` helper that installs its
//! critical sections into an [`OpTable`](armbar_locks::OpTable), returning
//! the op ids the drivers use.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hashtable;
pub mod list;
pub mod queue;
pub mod stack;
pub mod workload;

pub use hashtable::LockedHashTable;
pub use list::{ListOps, SortedList};
pub use queue::{QueueOps, SeqQueue};
pub use stack::{SeqStack, StackOps};
pub use workload::MixedWorkload;

/// Sentinel returned by remove/dequeue/pop when the structure was empty or
/// the key was absent (critical sections return `u64`).
pub const NOT_FOUND: u64 = u64::MAX;
