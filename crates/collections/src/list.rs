//! Sorted singly-linked list (Synchrobench-style [16], Figure 8(b)).
//!
//! A real pointer-chasing list, not a sorted `Vec`: the critical-section
//! length grows with the element count, which is what makes Figure 8(b)'s
//! preload sweep interesting — longer critical sections touch more remote
//! lines before the unlock/response barrier.

use armbar_locks::{OpId, OpTable};

use crate::NOT_FOUND;

struct ListNode {
    key: u64,
    next: Option<Box<ListNode>>,
}

/// The sequential sorted list the lock protects.
#[derive(Default)]
pub struct SortedList {
    head: Option<Box<ListNode>>,
    len: usize,
}

impl std::fmt::Debug for SortedList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SortedList(len={})", self.len)
    }
}

impl SortedList {
    /// Empty list.
    #[must_use]
    pub fn new() -> SortedList {
        SortedList::default()
    }

    /// Preload keys `0, step, 2*step, …` until `count` members are present.
    #[must_use]
    pub fn preloaded(count: usize, step: u64) -> SortedList {
        let mut l = SortedList::new();
        for i in (0..count as u64).rev() {
            // Insert in descending order: each insert is O(1) at the head.
            let _ = l.insert(i * step);
        }
        l
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `key` keeping sorted order; `false` if already present.
    pub fn insert(&mut self, key: u64) -> bool {
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                None => {
                    *cursor = Some(Box::new(ListNode { key, next: None }));
                    self.len += 1;
                    return true;
                }
                Some(node) if node.key == key => return false,
                Some(node) if node.key > key => {
                    let rest = cursor.take();
                    *cursor = Some(Box::new(ListNode { key, next: rest }));
                    self.len += 1;
                    return true;
                }
                Some(node) => {
                    // SAFETY-free reborrow dance: move the cursor forward.
                    cursor = &mut node.next;
                }
            }
        }
    }

    /// Remove `key`; `false` if absent.
    pub fn remove(&mut self, key: u64) -> bool {
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                None => return false,
                Some(node) if node.key == key => {
                    let next = node.next.take();
                    *cursor = next;
                    self.len -= 1;
                    return true;
                }
                Some(node) if node.key > key => return false,
                Some(node) => cursor = &mut node.next,
            }
        }
    }

    /// Membership query.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            if node.key == key {
                return true;
            }
            if node.key > key {
                return false;
            }
            cur = node.next.as_deref();
        }
        false
    }

    /// All keys, in order (tests).
    #[must_use]
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head.as_deref();
        while let Some(node) = cur {
            out.push(node.key);
            cur = node.next.as_deref();
        }
        out
    }
}

impl Drop for SortedList {
    fn drop(&mut self) {
        // Iterative teardown: a long list must not recurse the default
        // `Box` drop chain into a stack overflow.
        let mut cur = self.head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
    }
}

/// Registered op ids for [`SortedList`].
#[derive(Debug, Clone, Copy)]
pub struct ListOps {
    /// `insert(key) -> 1` if inserted, `0` if present.
    pub insert: OpId,
    /// `remove(key) -> 1` if removed, [`NOT_FOUND`] if absent.
    pub remove: OpId,
    /// `contains(key) -> 1/0`.
    pub contains: OpId,
    /// `len() -> members`.
    pub len: OpId,
}

impl ListOps {
    /// Install the list's critical sections into `table`.
    pub fn register(table: &mut OpTable<SortedList>) -> ListOps {
        ListOps {
            insert: table.register(|l, k| u64::from(l.insert(k))),
            remove: table.register(|l, k| if l.remove(k) { 1 } else { NOT_FOUND }),
            contains: table.register(|l, k| u64::from(l.contains(k))),
            len: table.register(|l, _| l.len() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_locks::Ffwd;

    #[test]
    fn sorted_insert_remove_contains() {
        let mut l = SortedList::new();
        assert!(l.insert(5));
        assert!(l.insert(1));
        assert!(l.insert(9));
        assert!(!l.insert(5), "duplicate rejected");
        assert_eq!(l.keys(), vec![1, 5, 9]);
        assert!(l.contains(5));
        assert!(!l.contains(4));
        assert!(l.remove(5));
        assert!(!l.remove(5));
        assert_eq!(l.keys(), vec![1, 9]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn preload_produces_exactly_count_sorted_members() {
        let l = SortedList::preloaded(50, 10);
        assert_eq!(l.len(), 50);
        let keys = l.keys();
        assert_eq!(keys.len(), 50);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys[0], 0);
        assert_eq!(keys[49], 490);
    }

    #[test]
    fn long_list_drops_without_overflow() {
        let l = SortedList::preloaded(200_000, 1);
        drop(l);
    }

    #[test]
    fn delegated_list_workload_preserves_size() {
        // The paper's mix: after every 10 queries, insert 1 then remove 1.
        let mut table = OpTable::new();
        let ops = ListOps::register(&mut table);
        let mut preloaded = SortedList::preloaded(50, 2);
        let _ = &mut preloaded;
        const THREADS: usize = 3;
        let lock = Ffwd::new(THREADS + 1, preloaded, table);
        let server = lock.start_server();
        std::thread::scope(|s| {
            for h in 0..THREADS {
                let mut client = lock.client(h);
                s.spawn(move || {
                    // Odd keys are thread-private (preload used even keys),
                    // so insert/remove pairs always succeed.
                    let my_key = |i: u64| 1 + 2 * (h as u64) + 1000 * i;
                    for i in 0..300u64 {
                        for q in 0..10 {
                            client.execute(ops.contains, q * 2);
                        }
                        assert_eq!(client.execute(ops.insert, my_key(i)), 1);
                        assert_eq!(client.execute(ops.remove, my_key(i)), 1);
                    }
                });
            }
        });
        let mut checker = lock.client(THREADS);
        assert_eq!(checker.execute(ops.len, 0), 50, "net size unchanged");
        lock.shutdown();
        server.join().unwrap();
    }
}
