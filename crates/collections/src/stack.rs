//! LIFO stack under a global lock (Figure 8(a)).

use armbar_locks::{OpId, OpTable};

use crate::NOT_FOUND;

/// The sequential stack the lock protects.
#[derive(Debug, Default)]
pub struct SeqStack {
    items: Vec<u64>,
    /// Total pushes.
    pub pushed: u64,
    /// Total successful pops.
    pub popped: u64,
}

impl SeqStack {
    /// Empty stack.
    #[must_use]
    pub fn new() -> SeqStack {
        SeqStack::default()
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Registered op ids for [`SeqStack`].
#[derive(Debug, Clone, Copy)]
pub struct StackOps {
    /// `push(v) -> new depth`.
    pub push: OpId,
    /// `pop() -> value` (or [`NOT_FOUND`]).
    pub pop: OpId,
    /// `len() -> current depth`.
    pub len: OpId,
}

impl StackOps {
    /// Install the stack's critical sections into `table`.
    pub fn register(table: &mut OpTable<SeqStack>) -> StackOps {
        StackOps {
            push: table.register(|st, v| {
                st.items.push(v);
                st.pushed += 1;
                st.items.len() as u64
            }),
            pop: table.register(|st, _| match st.items.pop() {
                Some(v) => {
                    st.popped += 1;
                    v
                }
                None => NOT_FOUND,
            }),
            len: table.register(|st, _| st.items.len() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armbar_locks::{CombiningLock, Executor};

    #[test]
    fn lifo_order_through_ops() {
        let mut table = OpTable::new();
        let ops = StackOps::register(&mut table);
        let mut st = SeqStack::new();
        table.get(ops.push)(&mut st, 1);
        table.get(ops.push)(&mut st, 2);
        assert_eq!(table.get(ops.pop)(&mut st, 0), 2);
        assert_eq!(table.get(ops.pop)(&mut st, 0), 1);
        assert_eq!(table.get(ops.pop)(&mut st, 0), NOT_FOUND);
    }

    #[test]
    fn concurrent_push_pop_pairs_balance_under_combining_lock() {
        let mut table = OpTable::new();
        let ops = StackOps::register(&mut table);
        const THREADS: usize = 4;
        let lock = CombiningLock::new(THREADS, SeqStack::new(), table);
        std::thread::scope(|s| {
            for h in 0..THREADS {
                let lock = &lock;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        lock.execute(h, ops.push, i);
                        assert_ne!(lock.execute(h, ops.pop, 0), NOT_FOUND);
                    }
                });
            }
        });
        assert_eq!(lock.execute(0, ops.len, 0), 0);
    }
}
